"""Encrypt with the full first-order masked AES-128.

Demonstrates the complete cipher of De Meyer et al. at value level: shared
round keys, share-wise linear layers, and the multiplicative-masking S-box
(Kronecker zero-mapping, B->M conversion, local inversion, M->B
conversion, affine transform).  Checked against the FIPS-197 vector.

Run:  python examples/masked_aes_encrypt.py
"""

import random
import time

from repro.aes.cipher import aes128_encrypt_block
from repro.core.aes_masked import MaskedAes128
from repro.masking.shares import BooleanSharing


def main() -> None:
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")

    rng = random.Random(2025)
    masked = MaskedAes128(key, rng)

    print("FIPS-197 Appendix C vector:")
    print(f"  plaintext : {plaintext.hex()}")
    print(f"  key       : {key.hex()}")

    ciphertext = masked.encrypt_block(plaintext)
    reference = aes128_encrypt_block(plaintext, key)
    print(f"  masked    : {ciphertext.hex()}")
    print(f"  reference : {reference.hex()}")
    print(f"  match     : {ciphertext == reference}")

    # Show that the internal representation really is shared: encrypt the
    # same block twice and compare the ciphertext *shares*.
    shares = [BooleanSharing.share(b, 2, rng) for b in plaintext]
    run1 = masked.encrypt_shared(shares)
    shares = [BooleanSharing.share(b, 2, rng) for b in plaintext]
    run2 = masked.encrypt_shared(shares)
    same_value = [a.value == b.value for a, b in zip(run1, run2)]
    same_shares = [a.shares == b.shares for a, b in zip(run1, run2)]
    print(f"\n  identical recombined bytes across runs: {all(same_value)}")
    print(f"  identical share tuples across runs:     {any(same_shares)} "
          "(expected: False -- fresh masks every run)")
    print(f"  first output byte shares, run 1: "
          f"({run1[0].shares[0]:#04x}, {run1[0].shares[1]:#04x})")
    print(f"  first output byte shares, run 2: "
          f"({run2[0].shares[0]:#04x}, {run2[0].shares[1]:#04x})")

    n_blocks = 20
    start = time.perf_counter()
    for i in range(n_blocks):
        masked.encrypt_block(bytes([i]) * 16)
    elapsed = time.perf_counter() - start
    print(f"\n  throughput: {n_blocks / elapsed:.1f} masked blocks/s "
          "(value-level model, not the hardware netlist)")


if __name__ == "__main__":
    main()
