"""Attack-side demo: CPA against unprotected vs masked S-box traces.

Synthesizes power traces (Hamming-weight model + Gaussian noise) for
(a) an unprotected ``SBox(pt xor key)`` circuit and (b) the multiplicative-
masked S-box, then runs correlation power analysis on both.  The key falls
out of the unprotected traces within a few hundred measurements; the
masked design resists.

Run:  python examples/dpa_attack.py  [n_traces] [noise_sigma]
"""

import sys

import numpy as np

from repro.aes.sbox_circuit import build_keyed_sbox
from repro.core.optimizations import RandomnessScheme
from repro.core.sbox import build_masked_sbox
from repro.leakage.traces import random_nonzero_byte, random_words
from repro.netlist.simulate import pack_lanes
from repro.sca.cpa import cpa_attack
from repro.sca.power import PowerModel, TraceSynthesizer

KEY = 0xC3


def attack_unprotected(n_traces: int, sigma: float):
    netlist = build_keyed_sbox()
    pt_nets = [netlist.net(f"pt[{i}]") for i in range(8)]
    key_nets = [netlist.net(f"key[{i}]") for i in range(8)]
    rng = np.random.default_rng(0)
    plaintexts = rng.integers(0, 256, size=n_traces)

    def stimulus(cycle):
        values = {}
        for i in range(8):
            values[pt_nets[i]] = pack_lanes(
                ((plaintexts >> i) & 1).astype(np.uint8)
            )
            values[key_nets[i]] = pack_lanes(
                np.full(n_traces, (KEY >> i) & 1, dtype=np.uint8)
            )
        return values

    synthesizer = TraceSynthesizer(
        netlist, PowerModel.HAMMING_WEIGHT, noise_sigma=sigma
    )
    traces = synthesizer.synthesize(stimulus, n_traces, 4, rng)
    return cpa_attack(traces, plaintexts, KEY)


def attack_masked(n_traces: int, sigma: float):
    design = build_masked_sbox(RandomnessScheme.FULL)
    dut = design.dut
    n_words = (n_traces + 63) // 64
    rng = np.random.default_rng(1)
    plaintexts = rng.integers(0, 256, size=n_traces)

    def stimulus(cycle):
        values = {}
        for i in range(8):
            mask = random_words(rng, n_words)
            values[dut.share_buses[0][i]] = mask
            values[dut.share_buses[1][i]] = mask ^ pack_lanes(
                (((plaintexts ^ KEY) >> i) & 1).astype(np.uint8)
            )
        for net in dut.mask_bits:
            values[net] = random_words(rng, n_words)
        planes = random_nonzero_byte(rng, n_words)
        for net, plane in zip(dut.nonzero_byte_buses[0], planes):
            values[net] = plane
        for net in dut.uniform_byte_buses[0]:
            values[net] = random_words(rng, n_words)
        return values

    synthesizer = TraceSynthesizer(
        design.netlist, PowerModel.HAMMING_WEIGHT, noise_sigma=sigma
    )
    traces = synthesizer.synthesize(stimulus, n_traces, 8, rng)
    return cpa_attack(traces, plaintexts, KEY)


def main() -> None:
    n_traces = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    sigma = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    print(f"CPA with {n_traces} traces, noise sigma = {sigma}, "
          f"true key byte = 0x{KEY:02X}\n")

    print("Unprotected SBox(pt xor key):")
    print(" ", attack_unprotected(n_traces, sigma).format_summary())

    print("\nMultiplicative-masked S-box (FULL Kronecker wiring):")
    print(" ", attack_masked(n_traces, sigma).format_summary())

    print(
        "\nFirst-order masking defeats first-order CPA; whether the masking"
        "\nitself is flawlessly implemented is what the probing-model"
        "\nevaluations (examples/find_the_flaw.py) are for."
    )


if __name__ == "__main__":
    main()
