"""Reproduce Section III: evaluate the complete masked S-box and localize
the first-order leak of the Eq. (6) randomness optimization.

Workflow (mirrors the paper):
 1. build the full masked AES S-box of Fig. 2 with the Eq. (6) wiring;
 2. run a PROLEAD-style fixed-vs-random test (fixed input 0x00) under the
    glitch-extended probing model;
 3. print the report: the leaking probes are exactly the G7 nodes marked
    with red stars in the paper's Fig. 3;
 4. derive the root cause symbolically (Eq. (7) / Eq. (8)).

Run:  python examples/find_the_flaw.py  [n_simulations]
"""

import sys

from repro.analysis.rootcause import (
    eq8_cancellation_witness,
    kronecker_layer_equations,
)
from repro.core.optimizations import RandomnessScheme
from repro.core.sbox import build_masked_sbox
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel


def main() -> None:
    n_simulations = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000

    print("Building the masked AES S-box (Fig. 2) with Eq. (6) wiring...")
    design = build_masked_sbox(RandomnessScheme.DEMEYER_EQ6)
    print(f"  {design.netlist}")
    print(f"  fresh mask bits/cycle: {design.dut.n_fresh_mask_bits} "
          "(plus R and R' mask bytes for the conversions)")

    print(f"\nFixed-vs-random evaluation, {n_simulations} simulations, "
          "glitch-extended model, fixed input 0x00...")
    evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=0)
    report = evaluator.evaluate(
        fixed_secret=0x00, n_simulations=n_simulations
    )
    print(report.format_summary(top=8))

    leaking = {r.probe_names for r in report.leaking_results}
    print(f"\nLeaking probes all inside G7: "
          f"{all('g7' in name for name in leaking)}")

    print("\nRoot cause (Section III): the per-share tree equations are")
    equations = kronecker_layer_equations(RandomnessScheme.DEMEYER_EQ6)
    for label in ("y0^0", "y2^0"):
        print(f"  {label} = {equations[label]}")
    cancelled, residue = eq8_cancellation_witness(
        RandomnessScheme.DEMEYER_EQ6
    )
    print(f"\nWith r1 = r3 the masks cancel from y0^0 xor y2^0 "
          f"(cancelled={cancelled}):")
    print(f"  y0^0 xor y2^0 = {residue}")
    print(
        "\nThis is the paper's Eq. (8): when the unmasked bits x1 and x5 "
        "are both 0 the two layer-1 shares coincide, which a single "
        "glitch-extended probe on G7 observes."
    )


if __name__ == "__main__":
    main()
