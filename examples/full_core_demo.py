"""Drive the complete gate-level masked AES-128 core.

Builds the ~21k-cell core (16 pipelined multiplicative-masking S-boxes,
share-wise linear layers, shared round-key port), encrypts the FIPS-197
vector through the netlist simulator, and runs a reduced whole-cipher
leakage evaluation that exposes the Eq. (6) flaw at cipher level.

Run:  python examples/full_core_demo.py
"""

import random
import time

import numpy as np

from repro.aes.cipher import aes128_encrypt_block
from repro.core.aes_core import (
    ENCRYPTION_CYCLES,
    AesCoreHarness,
    build_masked_aes_core,
)
from repro.core.optimizations import RandomnessScheme
from repro.leakage.model import ProbingModel
from repro.leakage.periodic import PeriodicLeakageEvaluator
from repro.netlist.stats import netlist_stats


def main() -> None:
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")

    print("Building the masked AES-128 core (Eq. (6) Kronecker wiring)...")
    core = build_masked_aes_core(RandomnessScheme.DEMEYER_EQ6)
    stats = netlist_stats(core.netlist)
    print(f"  {stats.n_cells} cells, {stats.n_registers} registers, "
          f"{stats.area_ge/1000:.1f} kGE, {ENCRYPTION_CYCLES} cycles/block")

    harness = AesCoreHarness(core)
    start = time.perf_counter()
    ciphertext = harness.encrypt(plaintext, key, random.Random(0))
    elapsed = time.perf_counter() - start
    print(f"\n  gate-level masked encryption: {ciphertext.hex()} "
          f"({elapsed:.1f}s scalar simulation)")
    print(f"  FIPS-197 reference:           "
          f"{aes128_encrypt_block(plaintext, key).hex()}")

    print("\nWhole-cipher leakage check (probing S-box 0 during round 1,")
    print("fixed plaintext chosen so every round-1 S-box input is 0x00)...")
    probe_nets = [
        c.output for c in core.netlist.cells if c.name.startswith("sb0.")
    ]
    evaluator = PeriodicLeakageEvaluator(
        core.netlist,
        ENCRYPTION_CYCLES,
        ProbingModel.GLITCH,
        probe_nets=probe_nets,
    )
    n_lanes = 4_000
    n_words = (n_lanes + 63) // 64
    report = evaluator.evaluate(
        harness.bitsliced_stimulus(
            np.random.default_rng(1), n_words, key, key
        ),
        harness.bitsliced_stimulus(
            np.random.default_rng(2), n_words, key, None
        ),
        n_lanes,
        phases=[3, 4, 5],
        n_periods=2,
        design_name="masked AES-128 core (Eq. 6)",
    )
    print(report.format_summary(top=5))
    print(
        "\nThe first-order flaw of the Kronecker randomness optimization is "
        "visible straight through the complete cipher."
    )


if __name__ == "__main__":
    main()
