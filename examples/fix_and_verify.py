"""Reproduce Section IV: apply the paper's optimization and verify it.

 1. the Eq. (9) wiring (4 fresh bits) passes an *exact* sweep of every
    glitch-extended probe of the Kronecker delta;
 2. the r5 = r6 counter-example of Section IV fails the same sweep;
 3. under the glitch+transition-extended model, Eq. (9) breaks -- and the
    four 6-fresh-bit solutions (r7 = r_i) survive, as the paper found
    "by means of trial and error".

Run:  python examples/fix_and_verify.py  [n_simulations]
"""

import sys

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme, scheme_fresh_bits
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.model import ProbingModel


def exact_glitch_sweep(scheme: RandomnessScheme) -> None:
    design = build_kronecker_delta(scheme)
    analyzer = ExactAnalyzer(design.dut, max_enum_bits=23)
    report = analyzer.analyze()
    verdict = "SECURE" if report.passed else "INSECURE"
    print(
        f"  {scheme.value:<28} fresh={scheme_fresh_bits(scheme)}  "
        f"exact sweep over {len(report.results)} probe classes: {verdict}"
    )
    for result in report.leaking_results[:3]:
        print(f"      leak at {result.probe_names}")


def transition_check(scheme: RandomnessScheme, n_simulations: int) -> None:
    design = build_kronecker_delta(scheme)
    evaluator = LeakageEvaluator(
        design.dut, ProbingModel.GLITCH_TRANSITION, seed=0
    )
    report = evaluator.evaluate(
        fixed_secret=0x00, n_simulations=n_simulations
    )
    verdict = "PASS" if report.passed else "FAIL"
    print(
        f"  {scheme.value:<28} fresh={scheme_fresh_bits(scheme)}  "
        f"max -log10(p) = {report.max_mlog10p:8.1f}  {verdict}"
    )


def main() -> None:
    n_simulations = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000

    print("Exact verification under the glitch-extended model:")
    exact_glitch_sweep(RandomnessScheme.PROPOSED_EQ9)
    exact_glitch_sweep(RandomnessScheme.SECOND_LAYER_R5R6)

    print(
        f"\nGlitch+transition-extended model "
        f"({n_simulations} simulations, fixed input 0x00):"
    )
    for scheme in (
        RandomnessScheme.PROPOSED_EQ9,
        RandomnessScheme.DEMEYER_EQ6,
        RandomnessScheme.FULL,
        RandomnessScheme.TRANSITION_R7_EQ_R1,
        RandomnessScheme.TRANSITION_R7_EQ_R2,
        RandomnessScheme.TRANSITION_R7_EQ_R3,
        RandomnessScheme.TRANSITION_R7_EQ_R4,
    ):
        transition_check(scheme, n_simulations)

    print(
        "\nConclusion (Section IV): Eq. (9) is only secure in the "
        "glitch-extended model; once transitions are considered, cross-"
        "stage reuse breaks, and only r7 = r_i (6 fresh bits) survives."
    )


if __name__ == "__main__":
    main()
