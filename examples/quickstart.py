"""Quickstart: find the paper's flaw in two minutes.

Builds the masked Kronecker delta function of De Meyer et al. (CHES 2018)
with two randomness wirings -- seven fresh bits, and their Eq. (6)
optimization reusing bits -- and asks the exact leakage analyzer for a
verdict on the probe the paper calls v1.

Run:  python examples/quickstart.py
"""

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.leakage.exact import ExactAnalyzer


def analyze(scheme: RandomnessScheme) -> None:
    design = build_kronecker_delta(scheme)
    print(f"\n--- scheme: {scheme.value}")
    print(f"    fresh mask bits/cycle: {design.fresh_mask_bits}")

    analyzer = ExactAnalyzer(design.dut)
    probe_class = analyzer.probe_class_for_net(design.v_nodes["v1"])
    print(
        "    glitch-extended probe v1 observes:",
        ", ".join(probe_class.support_names(design.netlist)),
    )
    result = analyzer.analyze_probe_class(probe_class)
    verdict = "LEAKS" if result.leaking else "secure"
    print(
        f"    exact verdict: {verdict} "
        f"(TV fixed-vs-random = {result.tv_fixed_vs_random:.4f}, "
        f"{result.n_distinct_distributions} distinct per-secret "
        f"distributions over 2^{result.n_random_bits} randomness values)"
    )


def main() -> None:
    print("Masked Kronecker delta function (paper Fig. 3), first order.")
    analyze(RandomnessScheme.FULL)          # the safe baseline
    analyze(RandomnessScheme.DEMEYER_EQ6)   # the flawed optimization
    analyze(RandomnessScheme.PROPOSED_EQ9)  # the paper's fix
    print(
        "\nConclusion: the Eq. (6) randomness reuse of De Meyer et al. "
        "makes the v1 observation depend on unmasked data; the paper's "
        "Eq. (9) wiring restores first-order glitch security with 4 fresh "
        "bits."
    )


if __name__ == "__main__":
    main()
