"""Export the masked designs as structural Verilog and report area.

The paper synthesizes its Verilog with Yosys to a NanGate45 netlist before
feeding PROLEAD; this example walks the reverse direction -- our netlists
out to gate-level Verilog -- and prints the Yosys-``stat``-style report.

Run:  python examples/export_verilog.py [output_directory]
"""

import pathlib
import sys

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.core.sbox import build_masked_sbox
from repro.netlist.stats import netlist_stats
from repro.netlist.verilog import to_verilog


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "verilog_out")
    out_dir.mkdir(parents=True, exist_ok=True)

    designs = {
        "kronecker_full.v": build_kronecker_delta(
            RandomnessScheme.FULL
        ).netlist,
        "kronecker_eq6.v": build_kronecker_delta(
            RandomnessScheme.DEMEYER_EQ6
        ).netlist,
        "masked_sbox_eq9.v": build_masked_sbox(
            RandomnessScheme.PROPOSED_EQ9
        ).netlist,
    }

    for filename, netlist in designs.items():
        path = out_dir / filename
        path.write_text(to_verilog(netlist))
        stats = netlist_stats(netlist)
        print(stats.format_table())
        print(f"  -> wrote {path} ({path.stat().st_size} bytes)\n")


if __name__ == "__main__":
    main()
