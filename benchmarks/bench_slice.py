"""Cone-slicing benchmark emitting ``BENCH_slice.json``.

Two measurements, both gated on **bit-identity** between sliced and full
simulation:

* **E11 whole-core workload** -- the complete masked AES-128 core
  (~21k cells) with probes on S-box 0 under the Eq. (6) Kronecker wiring,
  evaluated by the periodic fixed-vs-random test.  The probes' sequential
  fan-in cone covers roughly a sixteenth of the core, so slicing should
  deliver a matching wall-clock speedup at identical reports.
* **Adaptive mid-campaign re-slice** -- the E3 masked S-box campaign under
  an adaptive schedule tuned so the null probes are pruned after the first
  chunk while the strongly-leaking ``g7`` probes stay undecided: the union
  support cone collapses, the campaign re-slices, and the chunks after the
  re-slice run on a far smaller program.  The record captures per-chunk
  seconds before/after the re-slice plus the sliced-vs-full wall clock.

Usage (CI's ``slice-smoke`` job runs this at the default 6000 lanes and
gates at ``--require-speedup 1.5``; the committed record is generated
locally at the same gate.  The gate dropped from 4.0 when the unsliced
baseline moved from the interpreting ``bitsliced`` engine to the
registry default ``compiled`` engine -- the sliced wall clock is
unchanged, the full leg simply got ~3x faster, so the *ratio* shrank
while both legs improved)::

    PYTHONPATH=src python benchmarks/bench_slice.py \
        --lanes 6000 --require-speedup 1.5 --out BENCH_slice.json

Exit codes: 0 success, 1 sliced/full mismatch (a correctness bug), 2
speedup below ``--require-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.aes_core import (
    ENCRYPTION_CYCLES,
    AesCoreHarness,
    build_masked_aes_core,
)
from repro.core.optimizations import RandomnessScheme
from repro.leakage.adaptive import AdaptiveConfig
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.leakage.periodic import PeriodicLeakageEvaluator

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PHASES = (3, 4, 5, 6)


def bench_e11(lanes: int) -> dict:
    """Sliced vs full periodic evaluation of the masked AES-128 core."""
    core = build_masked_aes_core(RandomnessScheme.DEMEYER_EQ6)
    harness = AesCoreHarness(core)
    probe_nets = [
        c.output for c in core.netlist.cells if c.name.startswith("sb0.")
    ]
    n_words = (lanes + 63) // 64

    def run(slice_cones: bool):
        evaluator = PeriodicLeakageEvaluator(
            core.netlist,
            ENCRYPTION_CYCLES,
            ProbingModel.GLITCH,
            probe_nets=probe_nets,
            slice_cones=slice_cones,
            control_schedule=(
                harness.control_net_schedule() if slice_cones else None
            ),
        )
        stim_fixed = harness.bitsliced_stimulus(
            np.random.default_rng(11), n_words, KEY, KEY
        )
        stim_random = harness.bitsliced_stimulus(
            np.random.default_rng(12), n_words, KEY, None
        )
        start = time.perf_counter()
        report = evaluator.evaluate(
            stim_fixed,
            stim_random,
            lanes,
            phases=PHASES,
            n_periods=2,
            design_name="masked_aes_core_demeyer_eq6",
        )
        return evaluator, report, time.perf_counter() - start

    evaluator, sliced_report, sliced_seconds = run(True)
    full_evaluator, full_report, full_seconds = run(False)
    bit_identical = sliced_report.to_dict() == full_report.to_dict()

    # Simulated traces per second: both groups, all lanes, per run.
    sims = 2 * lanes
    return {
        "design": "masked_aes_core/demeyer_eq6",
        "probe_scope": "sb0.* cell outputs",
        "lanes": lanes,
        "n_cells": len(core.netlist.cells),
        "sliced_seconds": round(sliced_seconds, 3),
        "full_seconds": round(full_seconds, 3),
        "speedup": round(full_seconds / sliced_seconds, 2),
        "sims_per_second_sliced": round(sims / sliced_seconds, 1),
        "sims_per_second_full": round(sims / full_seconds, 1),
        "bit_identical": bit_identical,
        "verdict": "PASS" if sliced_report.passed else "FAIL",
        "max_mlog10p": round(sliced_report.max_mlog10p, 2),
        "slice": evaluator.last_slice_info,
        "full_engine": (full_evaluator.last_slice_info or {}).get("engine"),
    }


def bench_adaptive_reslice(n_simulations: int, chunk_size: int) -> dict:
    """Adaptive campaign whose pruning forces a mid-campaign re-slice."""
    from repro.core.sbox import build_masked_sbox
    from repro.core.optimizations import RandomnessScheme as RS

    dut = build_masked_sbox(RS.DEMEYER_EQ6).dut
    # Nulls decide after one chunk (min_null_samples=1) while the leaking
    # g7 probes stay undecided behind the very high decide bar -- after
    # chunk 1 only the g7 cones remain active and the program re-slices.
    adaptive = AdaptiveConfig(
        decide_threshold=50.0, decide_chunks=1, min_null_samples=1
    )

    def run(slice_cones: bool):
        chunk_seconds: list = []
        reslices: list = []
        last = [0.0]

        def hook(event, payload):
            if event == "chunk_done":
                chunk_seconds.append(payload["elapsed"] - last[0])
                last[0] = payload["elapsed"]
            elif event == "program_sliced":
                reslices.append(
                    {"at_chunk": len(chunk_seconds), **payload}
                )

        evaluator = LeakageEvaluator(
            dut, ProbingModel.GLITCH, seed=7, slice_cones=slice_cones
        )
        config = CampaignConfig(
            n_simulations=n_simulations,
            chunk_size=chunk_size,
            adaptive=adaptive,
        )
        campaign = EvaluationCampaign(evaluator, config, hook=hook)
        start = time.perf_counter()
        report = campaign.run()
        return report, time.perf_counter() - start, chunk_seconds, reslices

    sliced_report, sliced_seconds, chunks, reslices = run(True)
    full_report, full_seconds, _, _ = run(False)
    bit_identical = sliced_report.to_dict() == full_report.to_dict()

    mid = [r for r in reslices if r.get("resliced")]
    boundary = mid[0]["at_chunk"] if mid else len(chunks)
    pre = chunks[:boundary] or [float("nan")]
    post = chunks[boundary:] or [float("nan")]
    pre_mean = sum(pre) / len(pre)
    post_mean = sum(post) / len(post)
    return {
        "design": "sbox/demeyer_eq6",
        "n_simulations": n_simulations,
        "chunk_size": chunk_size,
        "resliced": bool(mid),
        "reslice": (
            {
                "at_chunk": mid[0]["at_chunk"],
                "cell_ratio": mid[0]["cell_ratio"],
                "dispatch_ratio": mid[0]["dispatch_ratio"],
                "state_ratio": mid[0]["state_ratio"],
            }
            if mid
            else None
        ),
        "pre_reslice_chunk_seconds": round(pre_mean, 4),
        "post_reslice_chunk_seconds": round(post_mean, 4),
        "chunk_speedup_after_reslice": round(pre_mean / post_mean, 2),
        "sliced_seconds": round(sliced_seconds, 3),
        "full_seconds": round(full_seconds, 3),
        "speedup": round(full_seconds / sliced_seconds, 2),
        "bit_identical": bit_identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lanes", type=int, default=6_000,
                        help="Monte-Carlo lanes for the E11 workload")
    parser.add_argument("--adaptive-sims", type=int, default=40_960,
                        help="per-group samples for the adaptive campaign")
    parser.add_argument("--chunk-size", type=int, default=8_192)
    parser.add_argument("--require-speedup", type=float, default=0.0,
                        help="fail (exit 2) if the E11 sliced/full "
                             "wall-clock ratio is below this")
    parser.add_argument("--out", default="BENCH_slice.json")
    args = parser.parse_args()

    print(f"[1/2] E11 whole-core workload ({args.lanes} lanes)...")
    e11 = bench_e11(args.lanes)
    print(
        f"      sliced {e11['sliced_seconds']}s vs full "
        f"{e11['full_seconds']}s -> {e11['speedup']}x "
        f"(cell-cycle ratio {e11['slice']['cell_cycle_ratio']}x, "
        f"bit_identical={e11['bit_identical']})"
    )

    print("[2/2] adaptive mid-campaign re-slice (sbox/eq6)...")
    adaptive = bench_adaptive_reslice(args.adaptive_sims, args.chunk_size)
    print(
        f"      re-slice at chunk {adaptive['reslice']['at_chunk'] if adaptive['reslice'] else '-'}: "
        f"chunks {adaptive['pre_reslice_chunk_seconds']}s -> "
        f"{adaptive['post_reslice_chunk_seconds']}s "
        f"({adaptive['chunk_speedup_after_reslice']}x); campaign "
        f"{adaptive['full_seconds']}s -> {adaptive['sliced_seconds']}s "
        f"(bit_identical={adaptive['bit_identical']})"
    )

    record = {
        "benchmark": "cone_slicing",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "e11": e11,
        "adaptive_reslice": adaptive,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    if not (e11["bit_identical"] and adaptive["bit_identical"]):
        print("FAIL: sliced and full runs disagree (correctness bug)")
        return 1
    if e11["speedup"] < args.require_speedup:
        print(
            f"FAIL: E11 speedup {e11['speedup']}x below required "
            f"{args.require_speedup}x"
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
