"""E9 -- Detection confidence vs simulation count (Section III methodology).

The paper runs 4 million simulations "to ensure a comprehensive evaluation
... allowing for a robust statistical analysis".  This bench regenerates the
underlying curve: the -log10(p) of the leaking G7 probes under Eq. (6)
grows linearly with the sample count, while a secure design's worst score
stays flat at noise level.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import RandomnessScheme
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

SWEEP = (5_000, 20_000, 80_000, 320_000)


def worst_score(design, n_simulations, seed=9):
    evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=seed)
    report = evaluator.evaluate(
        fixed_secret=0, n_simulations=n_simulations
    )
    return report.max_mlog10p


def test_e9_confidence_vs_simulations(benchmark, designs):
    eq6 = designs("kronecker", RandomnessScheme.DEMEYER_EQ6)
    full = designs("kronecker", RandomnessScheme.FULL)

    rows = []
    leaky_scores = []
    secure_scores = []
    for n in SWEEP:
        leaky = worst_score(eq6, n)
        secure = worst_score(full, n)
        leaky_scores.append(leaky)
        secure_scores.append(secure)
        rows.append([n, f"{leaky:.1f}", f"{secure:.2f}"])
    print_table(
        "E9: worst -log10(p) vs number of simulations (glitch model)",
        ["simulations", "Eq.(6) leaky design", "FULL secure design"],
        rows,
    )

    # Shape: the leaky curve grows monotonically and crosses the threshold
    # early; the secure curve never crosses it.
    assert leaky_scores == sorted(leaky_scores)
    assert leaky_scores[0] > 5.0  # detectable already at 5k simulations
    assert all(score < 5.0 for score in secure_scores)

    benchmark.pedantic(
        worst_score, args=(eq6, SWEEP[1]), rounds=1, iterations=1
    )
