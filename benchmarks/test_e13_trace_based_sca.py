"""E13 (extension) -- trace-based SCA vs the probing-model evaluation.

Connects the paper's simulation-based findings to classic trace-based SCA:

1. **CPA** (the DPA of reference [1]) recovers the key byte from an
   unprotected S-box's power traces and fails against the masked design --
   the masking does its job against the standard attack.
2. **TVLA** (reference [19]): first-order fixed-vs-random t-tests on total
   power *do not* distinguish the flawed Eq. (6) wiring from the secure
   FULL wiring -- the flaw lives in joint value distributions, not in mean
   power.  Second-order (variance) TVLA flags *both*, as it must for any
   first-order masking.  Detecting and localizing the Eq. (6) flaw takes a
   probing-model evaluation tool -- which is the paper's title, one more
   time.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.aes.sbox_circuit import build_keyed_sbox
from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.leakage.traces import constant_words, random_words
from repro.netlist.simulate import pack_lanes
from repro.sca.cpa import cpa_attack
from repro.sca.power import PowerModel, TraceSynthesizer
from repro.sca.tvla import tvla_fixed_vs_random, welch_t_test

KEY = 0x6B
N_CPA = 2_000
N_TVLA = 30_000


def cpa_on_unprotected():
    netlist = build_keyed_sbox()
    pt_nets = [netlist.net(f"pt[{i}]") for i in range(8)]
    key_nets = [netlist.net(f"key[{i}]") for i in range(8)]
    rng = np.random.default_rng(13)
    plaintexts = rng.integers(0, 256, size=N_CPA)

    def stimulus(cycle):
        values = {}
        for i in range(8):
            values[pt_nets[i]] = pack_lanes(
                ((plaintexts >> i) & 1).astype(np.uint8)
            )
            values[key_nets[i]] = pack_lanes(
                np.full(N_CPA, (KEY >> i) & 1, dtype=np.uint8)
            )
        return values

    synth = TraceSynthesizer(
        netlist, PowerModel.HAMMING_WEIGHT, noise_sigma=2.0
    )
    traces = synth.synthesize(stimulus, N_CPA, 4, rng)
    return cpa_attack(traces, plaintexts, KEY)


def cpa_on_masked():
    from repro.core.sbox import build_masked_sbox
    from repro.leakage.traces import random_nonzero_byte

    design = build_masked_sbox(RandomnessScheme.FULL)
    dut = design.dut
    n_words = (N_CPA + 63) // 64
    rng = np.random.default_rng(14)
    plaintexts = rng.integers(0, 256, size=N_CPA)

    def stimulus(cycle):
        values = {}
        for i in range(8):
            mask = random_words(rng, n_words)
            values[dut.share_buses[0][i]] = mask
            values[dut.share_buses[1][i]] = mask ^ pack_lanes(
                (((plaintexts ^ KEY) >> i) & 1).astype(np.uint8)
            )
        for net in dut.mask_bits:
            values[net] = random_words(rng, n_words)
        planes = random_nonzero_byte(rng, n_words)
        for net, plane in zip(dut.nonzero_byte_buses[0], planes):
            values[net] = plane
        for net in dut.uniform_byte_buses[0]:
            values[net] = random_words(rng, n_words)
        return values

    synth = TraceSynthesizer(
        design.netlist, PowerModel.HAMMING_WEIGHT, noise_sigma=2.0
    )
    traces = synth.synthesize(stimulus, N_CPA, 8, rng)
    return cpa_attack(traces, plaintexts, KEY)


def kronecker_traces(scheme, fixed, seed):
    design = build_kronecker_delta(scheme)
    dut = design.dut
    n_words = (N_TVLA + 63) // 64
    rng = np.random.default_rng(seed)

    def stimulus(cycle):
        values = {}
        for i in range(8):
            mask = random_words(rng, n_words)
            values[dut.share_buses[0][i]] = mask
            if fixed is None:
                values[dut.share_buses[1][i]] = random_words(rng, n_words)
            else:
                values[dut.share_buses[1][i]] = mask ^ constant_words(
                    (fixed >> i) & 1, n_words
                )
        for net in dut.mask_bits:
            values[net] = random_words(rng, n_words)
        return values

    synth = TraceSynthesizer(
        design.netlist, PowerModel.HAMMING_DISTANCE, noise_sigma=0.5
    )
    return synth.synthesize(stimulus, N_TVLA, 8, rng)


def test_e13_trace_based_sca(benchmark):
    unprotected = benchmark.pedantic(
        cpa_on_unprotected, rounds=1, iterations=1
    )
    masked = cpa_on_masked()
    print_table(
        "E13a: CPA key recovery (HW power model, sigma=2)",
        ["target", "traces", "key rank", "outcome"],
        [
            ["unprotected keyed S-box", N_CPA, unprotected.key_rank,
             "KEY RECOVERED" if unprotected.succeeded else "failed"],
            ["masked S-box (FULL)", N_CPA, masked.key_rank,
             "KEY RECOVERED" if masked.succeeded else "attack failed"],
        ],
    )
    assert unprotected.succeeded
    assert not masked.succeeded

    rows = []
    for scheme in (RandomnessScheme.DEMEYER_EQ6, RandomnessScheme.FULL):
        fixed_traces = kronecker_traces(scheme, 0x00, seed=21)
        random_traces = kronecker_traces(scheme, None, seed=22)
        first = tvla_fixed_vs_random(fixed_traces, random_traces)
        centered_f = (fixed_traces - fixed_traces.mean(axis=0)) ** 2
        centered_r = (random_traces - random_traces.mean(axis=0)) ** 2
        second = float(np.abs(welch_t_test(centered_f, centered_r)).max())
        rows.append(
            [
                scheme.value,
                f"{first.max_abs_t:.2f}",
                "FAIL" if first.leaking else "pass",
                f"{second:.2f}",
                "FAIL" if second > 4.5 else "pass",
            ]
        )
    print_table(
        "E13b: TVLA on total power, Kronecker delta "
        f"({N_TVLA} traces/group)",
        ["scheme", "1st-order max|t|", "verdict", "2nd-order max|t|",
         "verdict"],
        rows,
    )
    # 1st-order TVLA is blind to the Eq. (6) flaw (both schemes pass);
    # 2nd-order TVLA flags both (inherent to 1st-order masking).  Only the
    # probing-model evaluation separates them -- the paper's point.
    eq6_row, full_row = rows
    assert eq6_row[2] == "pass" and full_row[2] == "pass"
    assert eq6_row[4] == "FAIL" and full_row[4] == "FAIL"
