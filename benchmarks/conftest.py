"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one table/figure/claim of the paper's evaluation
(see DESIGN.md section 5) and prints it; pytest-benchmark times the core
computation.  Built designs are cached per session.
"""

import pytest

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme, SecondOrderScheme
from repro.core.sbox import build_masked_sbox


def print_table(title, headers, rows):
    """Render a fixed-width table to stdout (shown with pytest -s)."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def designs():
    """Session cache of built designs keyed by configuration."""
    cache = {}

    def get(kind, scheme=None, **kwargs):
        key = (kind, scheme, tuple(sorted(kwargs.items())))
        if key not in cache:
            if kind == "kronecker":
                cache[key] = build_kronecker_delta(scheme, **kwargs)
            elif kind == "sbox":
                cache[key] = build_masked_sbox(scheme, **kwargs)
            else:
                raise ValueError(kind)
        return cache[key]

    return get
