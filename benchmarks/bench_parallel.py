"""Serial-vs-parallel campaign benchmark emitting ``BENCH_parallel.json``.

Runs the E3 configuration (masked S-box, Eq. (6) randomness, glitch-extended
probes) as a serial campaign and again with a worker pool, asserts the two
produce **bit-identical** G-test statistics, and writes a machine-readable
JSON record of wall-clock times and simulations-per-second so the repo's
performance trajectory has a baseline.  Also times one chunk under every
registered simulation engine.

The parallel leg picks its strategy from the engine: with ``--engine
native`` the campaign stays single-process and hands ``--workers`` to the
fused kernel's internal pthread pool (``parallel_strategy:
in_kernel_threads``) -- on a 1-CPU host this replaces the fork/pickle
process pool whose overhead once produced a 0.801x "speedup".  Other
engines use the historical process pool (``parallel_strategy:
process_pool``, degrading to serial when the pool collapses to one
effective worker).

Usage (CI runs this with ``--require-speedup 2.5`` on a 4-core runner)::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --design sbox --scheme eq6 --simulations 100000 --workers 4 \
        --out BENCH_parallel.json

Exit codes: 0 success, 1 result mismatch (a correctness bug), 2 speedup
below ``--require-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import engines as engine_registry
from repro.cli import _scheme
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.netlist.native import native_available


def _build(design: str, scheme: str):
    if design == "kronecker":
        from repro.core.kronecker import build_kronecker_delta

        return build_kronecker_delta(_scheme(scheme)).dut
    if design == "sbox":
        from repro.core.sbox import build_masked_sbox

        return build_masked_sbox(_scheme(scheme)).dut
    raise SystemExit(f"unknown design {design!r}")


def _run_campaign(dut, args, workers: int, engine: str):
    evaluator = LeakageEvaluator(
        dut, ProbingModel.GLITCH, seed=args.seed, engine=engine
    )
    config = CampaignConfig(
        n_simulations=args.simulations,
        chunk_size=args.chunk_size,
        workers=workers,
    )
    campaign = EvaluationCampaign(evaluator, config)
    start = time.perf_counter()
    report = campaign.run()
    elapsed = time.perf_counter() - start
    return report, elapsed, campaign.effective_workers


def _signature(report):
    """The exact statistics a run must reproduce bit for bit."""
    return [
        (r.probe_names, r.g_statistic, r.dof, r.mlog10p)
        for r in report.results
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="sbox",
                        choices=("sbox", "kronecker"))
    parser.add_argument("--scheme", default="eq6")
    parser.add_argument("--simulations", type=int, default=100_000)
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--workers", type=int,
                        default=max(1, os.cpu_count() or 1))
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--engine", default=engine_registry.DEFAULT_ENGINE,
                        choices=engine_registry.engine_names(),
                        help="engine for the parallel leg (native engages "
                             "in-kernel threads instead of a process pool)")
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail (exit 2) unless parallel/serial speedup "
                             "reaches this factor")
    args = parser.parse_args(argv)

    dut = _build(args.design, args.scheme)
    print(
        f"benchmark: {args.design}/{args.scheme}, "
        f"{args.simulations} simulations, {args.workers} worker(s), "
        f"{os.cpu_count()} cpu(s)"
    )

    # Engine comparison on a reduced budget (all serial): one chunk under
    # every registered engine, skipping native when the toolchain is out.
    engine_budget = min(args.simulations, 20_000)
    engines = {}
    for engine in engine_registry.engine_names():
        if engine == "native" and not native_available():
            print(f"  engine {engine:<10}     skip (toolchain unavailable)")
            continue
        ev = LeakageEvaluator(
            dut, ProbingModel.GLITCH, seed=args.seed, engine=engine
        )
        start = time.perf_counter()
        ev.evaluate(n_simulations=engine_budget)
        engines[engine] = time.perf_counter() - start
        print(f"  engine {engine:<10} {engines[engine]:8.2f}s "
              f"({engine_budget} sims)")

    serial_report, serial_s, _ = _run_campaign(dut, args, 1, "compiled")
    print(f"  serial   (workers=1)            {serial_s:8.2f}s")

    in_kernel = args.engine == "native" and native_available()
    if in_kernel:
        # The native engine parallelises inside one foreign call: the
        # campaign stays single-process and the kernel's pthread pool
        # takes the worker budget, so there is no fork/pickle tax.
        strategy = "in_kernel_threads"
        os.environ["REPRO_NATIVE_THREADS"] = str(args.workers)
        try:
            parallel_report, parallel_s, _ = _run_campaign(
                dut, args, 1, "native"
            )
        finally:
            os.environ.pop("REPRO_NATIVE_THREADS", None)
        effective = args.workers
    else:
        strategy = "process_pool"
        parallel_report, parallel_s, effective = _run_campaign(
            dut, args, args.workers, args.engine
        )
    print(
        f"  parallel (workers={args.workers}, effective={effective}, "
        f"strategy={strategy})            {parallel_s:8.2f}s"
    )

    identical = _signature(serial_report) == _signature(parallel_report)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    # The process-pool campaign degrades to serial when the requested pool
    # collapses to a single effective worker (e.g. a 1-CPU host): the
    # historical 0.801x "speedup" was pure fork/pickle overhead.  Record
    # the degradation so the JSON explains itself, and waive the speedup
    # gate -- ``--engine native`` is the fix on such hosts, keeping the
    # parallelism inside the kernel.
    degraded_serial = strategy == "process_pool" and (
        args.workers > 1 and effective == 1
    )
    record = {
        "benchmark": "E3-parallel-campaign",
        "design": args.design,
        "scheme": args.scheme,
        "n_simulations": args.simulations,
        "workers": args.workers,
        "effective_workers": effective,
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "engine": args.engine,
        "parallel_strategy": strategy,
        "engine_seconds": {
            name: round(secs, 4) for name, secs in engines.items()
        },
        "engine_budget": engine_budget,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "serial_sims_per_second": round(args.simulations / serial_s, 1),
        "parallel_sims_per_second": round(args.simulations / parallel_s, 1),
        "speedup": round(speedup, 3),
        "degraded_serial": degraded_serial,
        "bit_identical": identical,
        "max_mlog10p": serial_report.max_mlog10p,
        "passed": serial_report.passed,
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"  speedup {speedup:.2f}x, bit-identical={identical}, "
        f"wrote {args.out}"
    )

    if not identical:
        print("ERROR: parallel results diverge from serial", file=sys.stderr)
        return 1
    if degraded_serial:
        print(
            "note: requested workers degraded to serial (1 effective "
            "worker on this host); speedup gate waived"
        )
        return 0
    if args.require_speedup and speedup < args.require_speedup:
        print(
            f"ERROR: speedup {speedup:.2f}x below required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
