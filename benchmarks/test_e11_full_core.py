"""E11 (extension) -- leakage evaluation of the complete AES-128 core.

PROLEAD's headline capability is analysing *complete* masked cipher
implementations, not just gadgets; [12] built the full AES encryption.
This bench evaluates our gate-level masked AES-128 core (16 pipelined
S-boxes, ~21k cells): with the Eq. (6) Kronecker wiring the round-1 S-box
leak is visible at cipher level (fixed plaintext chosen so round-1 S-box
inputs are all 0x00); with the transition-secure wiring the core passes.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.aes_core import (
    ENCRYPTION_CYCLES,
    AesCoreHarness,
    build_masked_aes_core,
)
from repro.core.optimizations import RandomnessScheme
from repro.leakage.model import ProbingModel
from repro.leakage.periodic import PeriodicLeakageEvaluator
from repro.netlist.stats import netlist_stats

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
N_LANES = 6_000
PHASES = (3, 4, 5, 6)


def evaluate_core(scheme):
    core = build_masked_aes_core(scheme)
    harness = AesCoreHarness(core)
    probe_nets = [
        c.output for c in core.netlist.cells if c.name.startswith("sb0.")
    ]
    evaluator = PeriodicLeakageEvaluator(
        core.netlist,
        ENCRYPTION_CYCLES,
        ProbingModel.GLITCH,
        probe_nets=probe_nets,
    )
    n_words = (N_LANES + 63) // 64
    stim_fixed = harness.bitsliced_stimulus(
        np.random.default_rng(11), n_words, KEY, KEY
    )
    stim_random = harness.bitsliced_stimulus(
        np.random.default_rng(12), n_words, KEY, None
    )
    report = evaluator.evaluate(
        stim_fixed,
        stim_random,
        N_LANES,
        phases=PHASES,
        n_periods=2,
        design_name=f"masked_aes_core_{scheme.value}",
    )
    return core, report


def test_e11_full_core_leakage(benchmark):
    rows = []
    core_eq6, report_eq6 = evaluate_core(RandomnessScheme.DEMEYER_EQ6)
    core_fix, report_fix = evaluate_core(RandomnessScheme.TRANSITION_R7_EQ_R1)

    stats = netlist_stats(core_eq6.netlist)
    print(
        f"\ncore size: {stats.n_cells} cells, {stats.n_registers} "
        f"registers, {stats.area_ge/1000:.1f} kGE; "
        f"{ENCRYPTION_CYCLES} cycles/block; probes on S-box 0, "
        f"round-1 phases {PHASES}"
    )
    for scheme, report in (
        (RandomnessScheme.DEMEYER_EQ6, report_eq6),
        (RandomnessScheme.TRANSITION_R7_EQ_R1, report_fix),
    ):
        worst = report.worst
        rows.append(
            [
                scheme.value,
                "PASS" if report.passed else "FAIL",
                f"{report.max_mlog10p:.1f}",
                worst.probe_names[:44],
            ]
        )
    print_table(
        "E11: full masked AES-128 core, glitch model, fixed pt = key",
        ["Kronecker scheme", "verdict", "max -log10(p)", "worst probe"],
        rows,
    )

    assert not report_eq6.passed
    assert all("g7" in r.probe_names for r in report_eq6.leaking_results)
    assert report_fix.passed

    # Time one scalar masked encryption on the full core as the benchmark.
    harness = AesCoreHarness(core_fix)
    import random

    benchmark.pedantic(
        harness.encrypt,
        args=(bytes(16), KEY, random.Random(0)),
        rounds=1,
        iterations=1,
    )
