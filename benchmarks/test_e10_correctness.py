"""E10 -- Functional correctness of everything (Section II-C semantics).

The masked S-box netlist equals the AES S-box for all 256 inputs under
random sharings and randomness; the value-level masked AES-128 matches
FIPS-197; throughput of the bitsliced simulator is reported (the substrate
that makes the million-simulation evaluations feasible).
"""

import random
import time

import numpy as np

from benchmarks.conftest import print_table
from repro.aes.cipher import aes128_encrypt_block
from repro.aes.sbox import sbox
from repro.core.aes_masked import MaskedAes128
from repro.core.optimizations import RandomnessScheme
from repro.leakage.traces import StimulusGenerator
from repro.netlist.simulate import BitslicedSimulator, ScalarSimulator


def run_sbox_scalar(design, x, rng):
    dut = design.dut
    sim = ScalarSimulator(design.netlist)
    values = None
    for _ in range(8):
        share0 = rng.randrange(256)
        assignment = {}
        for i in range(8):
            assignment[dut.share_buses[0][i]] = (share0 >> i) & 1
            assignment[dut.share_buses[1][i]] = ((share0 ^ x) >> i) & 1
        for net in dut.mask_bits:
            assignment[net] = rng.randrange(2)
        r = rng.randrange(1, 256)
        r_prime = rng.randrange(256)
        for i in range(8):
            assignment[dut.nonzero_byte_buses[0][i]] = (r >> i) & 1
            assignment[dut.uniform_byte_buses[0][i]] = (r_prime >> i) & 1
        values = sim.step(assignment)
    out = 0
    for i in range(8):
        bit = 0
        for bus in design.output_shares:
            bit ^= values[bus[i]]
        out |= bit << i
    return out


def test_e10_correctness_and_throughput(benchmark, designs):
    design = designs("sbox", RandomnessScheme.FULL)
    rng = random.Random(10)
    mismatches = sum(
        1 for x in range(256) if run_sbox_scalar(design, x, rng) != sbox(x)
    )

    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    masked = MaskedAes128(key, random.Random(11))
    masked_ct = masked.encrypt_block(pt)
    reference_ct = aes128_encrypt_block(pt, key)

    # Bitsliced throughput: simulations per second on the full S-box.
    n_lanes = 1 << 18
    generator = StimulusGenerator(design.dut, n_lanes // 64)
    stim = generator.random(np.random.default_rng(12))
    simulator = BitslicedSimulator(design.netlist, n_lanes)
    start = time.perf_counter()
    simulator.run(stim, 8, record_cycles={7})
    elapsed = time.perf_counter() - start
    sims_per_second = n_lanes * 8 / elapsed

    print_table(
        "E10: functional correctness and simulator throughput",
        ["check", "result"],
        [
            ["masked S-box netlist vs AES S-box (256 inputs)",
             f"{256 - mismatches}/256 match"],
            ["masked AES-128 vs FIPS-197 appendix C",
             "match" if masked_ct == reference_ct else "MISMATCH"],
            ["bitsliced S-box cycle throughput",
             f"{sims_per_second/1e6:.1f} M cycle-lanes/s"],
        ],
    )
    assert mismatches == 0
    assert masked_ct == reference_ct

    benchmark(
        lambda: MaskedAes128(key, random.Random(13)).encrypt_block(pt)
    )
