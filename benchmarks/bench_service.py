"""Sustained service load benchmark emitting ``BENCH_service.json``.

Boots an in-process :class:`~repro.service.http.EvaluationService` with the
distributed fleet enabled (embedded local workers), warms the verdict
cache with a small pool of hot specs, then hammers ``POST /v1/jobs`` from
concurrent client threads with the workload the service is designed for:
mostly re-queries of already-evaluated specs (~90% by default) plus a
trickle of cold ones.  Records per-request latency percentiles, the
accept / cache-hit / 429 split, and a queue-depth trajectory sampled from
``GET /v1/metrics`` while the load runs.

Usage (CI uploads the JSON as an artifact)::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --requests 600 --threads 8 --out BENCH_service.json

Exit codes: 0 success, 1 when any request fails with an unexpected error
(429 backpressure is expected under load, not an error).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

from repro.service import EvaluationService


def _post_job(address: str, spec: dict, timeout: float = 60.0):
    """Returns (status, body_dict); 429 is a regular outcome here."""
    request = urllib.request.Request(
        f"{address}/v1/jobs",
        data=json.dumps(spec).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _get_json(address: str, path: str, timeout: float = 30.0):
    with urllib.request.urlopen(f"{address}{path}", timeout=timeout) as resp:
        return json.loads(resp.read())


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _wait_done(address: str, job_id: str, deadline: float) -> dict:
    record = {"state": "queued"}
    while record["state"] in ("queued", "running"):
        if time.monotonic() > deadline:
            raise SystemExit(f"warmup job {job_id} did not finish in time")
        record = _get_json(address, f"/v1/jobs/{job_id}?wait=5", timeout=30)
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=600,
                        help="total POST /v1/jobs calls across all threads")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--hot-specs", type=int, default=4,
                        help="size of the pre-warmed (cached) spec pool")
    parser.add_argument("--hot-fraction", type=float, default=0.9,
                        help="fraction of requests drawn from the hot pool")
    parser.add_argument("--simulations", type=int, default=6_000)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--runner-threads", type=int, default=2)
    parser.add_argument("--local-workers", type=int, default=2)
    parser.add_argument("--sample-every", type=float, default=0.5,
                        help="seconds between queue-depth samples")
    parser.add_argument("--out", default="BENCH_service.json")
    args = parser.parse_args(argv)

    state_dir = tempfile.mkdtemp(prefix="bench-service-")
    service = EvaluationService(
        state_dir,
        port=0,
        runner_threads=args.runner_threads,
        queue_limit=args.queue_limit,
        fleet=True,
        local_workers=args.local_workers,
    )
    service.start()
    address = service.address
    print(
        f"benchmark: service at {address}, fleet with "
        f"{args.local_workers} local worker(s), "
        f"{args.runner_threads} runner thread(s), "
        f"queue limit {args.queue_limit}"
    )

    def spec_for(seed: int) -> dict:
        return {
            "design": "kronecker",
            "scheme": "eq6",
            "n_simulations": args.simulations,
            "chunk_size": 2_000,
            "seed": seed,
        }

    try:
        # ---- warm phase: populate the verdict cache with the hot pool.
        warm_start = time.perf_counter()
        for seed in range(args.hot_specs):
            status, record = _post_job(address, spec_for(seed))
            if status not in (200, 201):
                raise SystemExit(f"warmup submit failed with {status}")
            _wait_done(address, record["job_id"],
                       time.monotonic() + 300)
        warm_seconds = time.perf_counter() - warm_start
        print(f"  warmed {args.hot_specs} hot specs in {warm_seconds:.2f}s")

        # ---- load phase.
        latencies_ms = []
        status_counts = {}
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(args.threads + 1)
        per_thread = args.requests // args.threads

        def client(thread_index: int) -> None:
            # Deterministic per-thread request mix: every k-th request is
            # cold (unique seed), the rest cycle through the hot pool.
            cold_stride = max(1, round(1 / (1 - args.hot_fraction))) \
                if args.hot_fraction < 1 else 0
            barrier.wait()
            for i in range(per_thread):
                if cold_stride and i % cold_stride == cold_stride - 1:
                    seed = 10_000 + thread_index * per_thread + i
                else:
                    seed = (thread_index + i) % args.hot_specs
                start = time.perf_counter()
                try:
                    status, _ = _post_job(address, spec_for(seed))
                except Exception as exc:  # noqa: BLE001 - recorded verbatim
                    with lock:
                        errors.append(repr(exc))
                    continue
                elapsed_ms = (time.perf_counter() - start) * 1e3
                with lock:
                    latencies_ms.append(elapsed_ms)
                    status_counts[status] = status_counts.get(status, 0) + 1

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(args.threads)
        ]
        for thread in threads:
            thread.start()

        trajectory = []
        stop_sampling = threading.Event()

        def sampler() -> None:
            origin = time.perf_counter()
            while not stop_sampling.is_set():
                try:
                    metrics = _get_json(address, "/v1/metrics")
                except Exception:
                    break
                trajectory.append({
                    "t": round(time.perf_counter() - origin, 3),
                    "queue_depth": metrics["queue"]["depth"],
                    "by_priority": metrics["queue"]["by_priority"],
                    "busy_workers": metrics["busy_workers"],
                    "workers_live": metrics["fleet"]["workers_live"],
                    "pending_items": metrics["fleet"]["pending_items"],
                })
                stop_sampling.wait(args.sample_every)

        sampler_thread = threading.Thread(target=sampler, daemon=True)
        sampler_thread.start()

        barrier.wait()
        load_start = time.perf_counter()
        for thread in threads:
            thread.join()
        load_seconds = time.perf_counter() - load_start
        stop_sampling.set()
        sampler_thread.join(timeout=5)

        metrics = _get_json(address, "/v1/metrics")
        latencies_ms.sort()
        total = len(latencies_ms)
        record = {
            "benchmark": "service-sustained-load",
            "config": {
                "requests": args.requests,
                "threads": args.threads,
                "hot_specs": args.hot_specs,
                "hot_fraction": args.hot_fraction,
                "n_simulations": args.simulations,
                "queue_limit": args.queue_limit,
                "runner_threads": args.runner_threads,
                "local_workers": args.local_workers,
                "cpu_count": os.cpu_count(),
            },
            "totals": {
                "requests": total,
                "seconds": round(load_seconds, 3),
                "throughput_rps": round(total / load_seconds, 1)
                if load_seconds > 0 else None,
                "p50_ms": round(_percentile(latencies_ms, 0.50) or 0, 2),
                "p95_ms": round(_percentile(latencies_ms, 0.95) or 0, 2),
                "p99_ms": round(_percentile(latencies_ms, 0.99) or 0, 2),
                "status_counts": {
                    str(k): v for k, v in sorted(status_counts.items())
                },
                "rejected_429": status_counts.get(429, 0),
                "transport_errors": len(errors),
                "cache_hit_rate": metrics["cache_hit_rate"],
                "warm_seconds": round(warm_seconds, 3),
            },
            "trajectory": trajectory,
            "final_metrics": {
                "jobs": metrics["jobs"],
                "queue": metrics["queue"],
                "fleet": metrics["fleet"],
                "counters": metrics["counters"],
            },
        }
        with open(args.out, "w") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        totals = record["totals"]
        print(
            f"  {totals['requests']} requests in {totals['seconds']}s "
            f"({totals['throughput_rps']} rps), "
            f"p50 {totals['p50_ms']}ms / p95 {totals['p95_ms']}ms / "
            f"p99 {totals['p99_ms']}ms, "
            f"429s {totals['rejected_429']}, "
            f"cache hit rate {totals['cache_hit_rate']}"
        )
        print(f"  wrote {args.out}")
        if errors:
            print(f"ERROR: {len(errors)} transport errors, first: "
                  f"{errors[0]}", file=sys.stderr)
            return 1
        return 0
    finally:
        service.stop()


if __name__ == "__main__":
    raise SystemExit(main())
