"""E4 -- Kronecker delta under the glitch-extended model (Section III).

Exact (SILVER-style) verdicts for the v1..v4 probe classes of every
first-order wiring scheme, plus sampled G-test scores: the Eq. (6)
optimization and its relatives leak; FULL and Eq. (9) do not.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import FIRST_ORDER_SCHEMES, scheme_fresh_bits
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 60_000


def exact_v1(design):
    analyzer = ExactAnalyzer(design.dut)
    pc = analyzer.probe_class_for_net(design.v_nodes["v1"])
    return analyzer.analyze_probe_class(pc)


def test_e4_kronecker_glitch_all_schemes(benchmark, designs):
    rows = []
    sampled_scores = {}
    for scheme in FIRST_ORDER_SCHEMES:
        design = designs("kronecker", scheme)
        result = exact_v1(design)
        evaluator = LeakageEvaluator(
            design.dut, ProbingModel.GLITCH, seed=4
        )
        report = evaluator.evaluate(
            fixed_secret=0, n_simulations=N_SIMULATIONS
        )
        sampled_scores[scheme] = report.max_mlog10p
        rows.append(
            [
                scheme.value,
                scheme_fresh_bits(scheme),
                "LEAK" if result.leaking else "secure",
                f"{result.tv_fixed_vs_random:.4f}",
                f"{report.max_mlog10p:.1f}",
                "FAIL" if not report.passed else "pass",
            ]
        )
        # Shape check against the paper's verdicts.
        assert result.leaking != scheme.expected_glitch_secure
        assert report.passed == scheme.expected_glitch_secure

    print_table(
        "E4: Kronecker delta, glitch-extended model, fixed input 0x00",
        [
            "scheme",
            "fresh bits",
            "exact v1 verdict",
            "exact TV(fixed,rand)",
            "sampled max -log10(p)",
            "sampled verdict",
        ],
        rows,
    )

    # Benchmark the exact analysis of the flawed scheme's v1 probe.
    eq6 = designs("kronecker", FIRST_ORDER_SCHEMES[1])
    benchmark(exact_v1, eq6)
