"""Native fused-kernel benchmark emitting ``BENCH_native.json``.

Measures the ``native`` engine (single fused C kernel, one foreign call
per multi-cycle block, internal pthread pool) against the ``compiled``
engine on the E11 whole-core workload, gated on **bit-identity**:

* **engine dispatch leg** (``lanes=64``, one machine word) -- both engines
  execute the sliced S-box-0 cone of the masked AES-128 core with the
  stimulus pre-staged in each engine's native format (a materialised
  per-cycle dict list for ``compiled``, the dense uint64 block from
  :meth:`NativeSimulator.expand_stimulus` for ``native``).  At one word
  the per-op numpy dispatch dominates, so this leg isolates exactly what
  the fused kernel removes; it carries the ``--require-speedup`` gate.
* **wide leg** (``--lanes``, default 6000) -- the same comparison at
  Monte-Carlo width, where both engines stream real data.
* **full-evaluation leg** -- the complete periodic fixed-vs-random E11
  evaluation through :class:`PeriodicLeakageEvaluator` under each
  engine on the statically sliced cone: the compiled leg is python
  simulation plus python extraction and histogramming, the native leg
  the in-kernel pipeline (stimulus -> simulate -> extract -> histogram
  in C).  The two reports must be byte-identical; a per-stage breakdown
  is printed and recorded so regressions are attributable.  Carries the
  ``--require-full-eval-speedup`` gate.
* **scheduled full-evaluation leg** (informational) -- the same
  evaluation on the scheduled cone, where the native side lowers
  :class:`ScheduledSimulator` onto the scheduled-cone interpreter and
  keeps the pipeline; the compiled scheduled path is already cheap, so
  this leg's speedup is structurally smaller.
* **threads leg** -- the native kernel's in-kernel thread pool at 1 and
  ``min(4, max(2, cpu_count))`` threads, plus the best threaded-native
  configuration against the serial ``compiled`` baseline
  (``parallel_strategy: in_kernel_threads``); that ratio must exceed 1x
  even on a 1-CPU host, where process pools historically degraded to
  0.801x of serial.

Usage (CI's ``native-smoke`` job gates at ``--require-speedup 8.0``,
leaving headroom for slower runners; the committed record is generated
locally with ``--require-speedup 10``)::

    PYTHONPATH=src python benchmarks/bench_native.py \
        --lanes 6000 --require-speedup 10 --out BENCH_native.json

Exit codes: 0 success, 1 cross-engine mismatch (a correctness bug), 2
speedup below ``--require-speedup`` or threaded-native not beating the
serial compiled baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.aes_core import (
    ENCRYPTION_CYCLES,
    AesCoreHarness,
    build_masked_aes_core,
)
from repro.core.optimizations import RandomnessScheme
from repro.leakage.model import ProbingModel
from repro.leakage.periodic import PeriodicLeakageEvaluator
from repro.netlist.compile import CompiledSimulator
from repro.netlist.native import (
    NativeSimulator,
    native_default_threads,
    native_kernel_cache_info,
    native_unavailable_reason,
)

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PHASES = (3, 4, 5, 6)

#: Engine-leg block shape: 40 cycles with 8 recorded, the footprint of a
#: periodic evaluation window without the surrounding statistics.
LEG_CYCLES = 40
LEG_RECORD = tuple(range(2, LEG_CYCLES, 5))


def _setup():
    core = build_masked_aes_core(RandomnessScheme.DEMEYER_EQ6)
    harness = AesCoreHarness(core)
    probes = [
        c.output for c in core.netlist.cells if c.name.startswith("sb0.")
    ]
    return core, harness, probes


def _trace_words(trace) -> list:
    """Byte-exact signature of every recorded word in a trace."""
    return [
        sorted((net, words.tobytes()) for net, words in cycle.items())
        for cycle in trace.values
    ]


def _best_of(fn, repeats: int):
    """Return ``(last_result, best_seconds)`` over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_engine_leg(core, harness, probes, lanes: int, repeats: int) -> dict:
    """Compiled vs native on the sliced cone, stimulus pre-staged."""
    n_words = (lanes + 63) // 64
    stim = harness.bitsliced_stimulus(
        np.random.default_rng(21), n_words, KEY, KEY
    )
    staged = [dict(stim(cycle)) for cycle in range(LEG_CYCLES)]

    compiled = CompiledSimulator(core.netlist, lanes, keep_nets=probes)
    native = NativeSimulator(
        core.netlist, lanes, keep_nets=probes, record_nets=probes
    )
    dense = native.expand_stimulus(lambda c: staged[c], LEG_CYCLES)

    compiled_trace, compiled_s = _best_of(
        lambda: compiled.run(
            lambda c: staged[c], LEG_CYCLES,
            record_nets=probes, record_cycles=LEG_RECORD,
        ),
        repeats,
    )
    native_trace, native_s = _best_of(
        lambda: native.run(
            dense, LEG_CYCLES,
            record_nets=probes, record_cycles=LEG_RECORD,
        ),
        repeats,
    )
    identical = _trace_words(compiled_trace) == _trace_words(native_trace)
    return {
        "lanes": lanes,
        "n_cycles": LEG_CYCLES,
        "record_cycles": len(LEG_RECORD),
        "n_probes": len(probes),
        "repeats": repeats,
        "compiled_seconds": round(compiled_s, 5),
        "native_seconds": round(native_s, 5),
        "speedup": round(compiled_s / native_s, 2),
        "bit_identical": identical,
    }


def bench_full_eval(
    core, harness, probes, lanes: int, repeats: int = 1,
    scheduled: bool = True,
) -> dict:
    """Whole periodic E11 evaluation under each engine; reports must match.

    ``scheduled=True`` is the production configuration (control-schedule
    cone slicing): the compiled leg runs the python ScheduledSimulator
    plus python extraction/histogramming, the native leg runs the
    scheduled-cone interpreter plus the in-kernel pipeline.
    ``scheduled=False`` compares the statically sliced path, where the
    engine registry picks the simulator.
    """
    n_words = (lanes + 63) // 64

    def run(engine: str):
        evaluator = PeriodicLeakageEvaluator(
            core.netlist,
            ENCRYPTION_CYCLES,
            ProbingModel.GLITCH,
            probe_nets=probes,
            slice_cones=True,
            control_schedule=(
                harness.control_net_schedule() if scheduled else None
            ),
            engine=engine,
        )
        stim_fixed = harness.bitsliced_stimulus(
            np.random.default_rng(11), n_words, KEY, KEY
        )
        stim_random = harness.bitsliced_stimulus(
            np.random.default_rng(12), n_words, KEY, None
        )
        start = time.perf_counter()
        report = evaluator.evaluate(
            stim_fixed,
            stim_random,
            lanes,
            phases=PHASES,
            n_periods=2,
            design_name="masked_aes_core_demeyer_eq6",
        )
        return evaluator, report, time.perf_counter() - start

    # Best-of-N like the engine legs: every repeat builds a fresh
    # evaluator, so the minimum is the steady-state cost with the
    # one-time kernel load amortized out (as a campaign amortizes it
    # across chunks).  Every repeat's report must still match.
    compiled_runs = [run("compiled") for _ in range(max(1, repeats))]
    native_runs = [run("native") for _ in range(max(1, repeats))]
    compiled_ev, compiled_report, compiled_s = min(
        compiled_runs, key=lambda item: item[2]
    )
    evaluator, native_report, native_s = min(
        native_runs, key=lambda item: item[2]
    )
    reference = compiled_report.to_dict()
    identical = all(
        item[1].to_dict() == reference
        for item in compiled_runs + native_runs
    )

    def stages(ev):
        return {
            name: round(seconds, 4)
            for name, seconds in (ev.last_stage_seconds or {}).items()
        }

    return {
        "lanes": lanes,
        "repeats": max(1, repeats),
        "mode": "scheduled" if scheduled else "static",
        "pipeline": bool(
            (evaluator.last_slice_info or {}).get("pipeline")
        ),
        "compiled_seconds": round(compiled_s, 3),
        "native_seconds": round(native_s, 3),
        "speedup": round(compiled_s / native_s, 2),
        "bit_identical": identical,
        "verdict": "PASS" if native_report.passed else "FAIL",
        "max_mlog10p": round(native_report.max_mlog10p, 2),
        "engine_used": (evaluator.last_slice_info or {}).get("engine"),
        "stage_seconds": {
            "compiled": stages(compiled_ev),
            "native": stages(evaluator),
        },
        "degradations": list(evaluator.degradations),
    }


def _print_stage_table(leg: dict) -> None:
    """Per-stage breakdown of a full_eval leg (regression attribution)."""
    stages = leg.get("stage_seconds", {})
    names = ("stimulus", "simulate", "extract", "histogram")
    print(f"      {'stage':<10} {'compiled':>9} {'native':>9}")
    for name in names:
        c = stages.get("compiled", {}).get(name, 0.0)
        n = stages.get("native", {}).get(name, 0.0)
        print(f"      {name:<10} {c:>8.3f}s {n:>8.3f}s")


def bench_threads(core, harness, probes, lanes: int, repeats: int) -> dict:
    """In-kernel thread scaling + threaded-native vs serial compiled."""
    n_words = (lanes + 63) // 64
    stim = harness.bitsliced_stimulus(
        np.random.default_rng(31), n_words, KEY, KEY
    )
    staged = [dict(stim(cycle)) for cycle in range(LEG_CYCLES)]
    cpu = os.cpu_count() or 1
    widths = sorted({1, min(4, max(2, cpu))})

    per_width = {}
    reference = None
    for width in widths:
        native = NativeSimulator(
            core.netlist, lanes, keep_nets=probes,
            record_nets=probes, n_threads=width,
        )
        dense = native.expand_stimulus(lambda c: staged[c], LEG_CYCLES)
        trace, seconds = _best_of(
            lambda: native.run(
                dense, LEG_CYCLES,
                record_nets=probes, record_cycles=LEG_RECORD,
            ),
            repeats,
        )
        words = _trace_words(trace)
        if reference is None:
            reference = words
        per_width[width] = {
            "seconds": round(seconds, 5),
            "bit_identical": words == reference,
        }

    compiled = CompiledSimulator(core.netlist, lanes, keep_nets=probes)
    _, compiled_s = _best_of(
        lambda: compiled.run(
            lambda c: staged[c], LEG_CYCLES,
            record_nets=probes, record_cycles=LEG_RECORD,
        ),
        repeats,
    )
    best_width = min(per_width, key=lambda w: per_width[w]["seconds"])
    best_s = per_width[best_width]["seconds"]
    return {
        "parallel_strategy": "in_kernel_threads",
        "cpu_count": cpu,
        "default_threads": native_default_threads(),
        "lanes": lanes,
        "per_threads": {str(w): v for w, v in per_width.items()},
        "best_threads": best_width,
        "serial_compiled_seconds": round(compiled_s, 5),
        "speedup_vs_serial_compiled": round(compiled_s / best_s, 2),
        "bit_identical": all(
            v["bit_identical"] for v in per_width.values()
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lanes", type=int, default=6_000,
                        help="Monte-Carlo lanes for the wide/threads legs")
    parser.add_argument("--full-eval-lanes", type=int, default=1_000,
                        help="lanes for the full-evaluation legs "
                             "(default matches a typical campaign chunk "
                             "block, where per-cycle python overhead -- "
                             "the cost the pipeline removes -- dominates "
                             "the compiled baseline)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per engine leg (best-of)")
    parser.add_argument("--require-speedup", type=float, default=0.0,
                        help="fail (exit 2) if the dispatch-leg "
                             "native speedup is below this")
    parser.add_argument("--require-full-eval-speedup", type=float,
                        default=0.0,
                        help="fail (exit 2) if the end-to-end full_eval "
                             "leg (static cone + in-kernel pipeline) "
                             "speedup is below this")
    parser.add_argument("--out", default="BENCH_native.json")
    args = parser.parse_args(argv)

    reason = native_unavailable_reason()
    if reason is not None:
        print(f"SKIP: native engine unavailable ({reason})")
        return 0

    core, harness, probes = _setup()
    print(
        f"benchmark: masked_aes_core/demeyer_eq6, "
        f"{len(core.netlist.cells)} cells, {len(probes)} sb0 probes, "
        f"{os.cpu_count()} cpu(s)"
    )

    print("[1/5] engine dispatch leg (lanes=64, pre-staged stimulus)...")
    dispatch = bench_engine_leg(core, harness, probes, 64, args.repeats)
    print(
        f"      compiled {dispatch['compiled_seconds']}s vs native "
        f"{dispatch['native_seconds']}s -> {dispatch['speedup']}x "
        f"(bit_identical={dispatch['bit_identical']})"
    )

    print(f"[2/5] wide leg (lanes={args.lanes})...")
    wide = bench_engine_leg(
        core, harness, probes, args.lanes, max(2, args.repeats // 2)
    )
    print(
        f"      compiled {wide['compiled_seconds']}s vs native "
        f"{wide['native_seconds']}s -> {wide['speedup']}x "
        f"(bit_identical={wide['bit_identical']})"
    )

    print(
        f"[3/5] full periodic E11 evaluation, static cone + "
        f"in-kernel pipeline (lanes={args.full_eval_lanes})..."
    )
    full_repeats = max(2, args.repeats // 2)
    full = bench_full_eval(
        core, harness, probes, args.full_eval_lanes, full_repeats,
        scheduled=False,
    )
    print(
        f"      compiled {full['compiled_seconds']}s vs native "
        f"{full['native_seconds']}s -> {full['speedup']}x "
        f"(bit_identical={full['bit_identical']}, "
        f"engine={full['engine_used']}, pipeline={full['pipeline']})"
    )
    _print_stage_table(full)

    print(
        f"[4/5] full evaluation, scheduled cone + native scheduled "
        f"interpreter (lanes={args.full_eval_lanes}, informational)..."
    )
    full_sched = bench_full_eval(
        core, harness, probes, args.full_eval_lanes, full_repeats
    )
    print(
        f"      compiled {full_sched['compiled_seconds']}s vs native "
        f"{full_sched['native_seconds']}s -> "
        f"{full_sched['speedup']}x "
        f"(bit_identical={full_sched['bit_identical']}, "
        f"pipeline={full_sched['pipeline']})"
    )
    _print_stage_table(full_sched)

    print(f"[5/5] in-kernel threads (lanes={args.lanes})...")
    threads = bench_threads(
        core, harness, probes, args.lanes, max(2, args.repeats // 2)
    )
    print(
        f"      best {threads['best_threads']} thread(s) vs serial "
        f"compiled -> {threads['speedup_vs_serial_compiled']}x "
        f"(strategy={threads['parallel_strategy']})"
    )

    cache = native_kernel_cache_info()._asdict()
    record = {
        "benchmark": "native_fused_kernel",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "design": "masked_aes_core/demeyer_eq6",
        "probe_scope": "sb0.* cell outputs",
        "cpu_count": os.cpu_count(),
        "e11_dispatch": dispatch,
        "e11_wide": wide,
        "full_eval": full,
        "full_eval_scheduled": full_sched,
        "threads": threads,
        "kernel_cache": cache,
    }
    out = os.path.abspath(args.out)
    with open(out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out}")

    identical = (
        dispatch["bit_identical"]
        and wide["bit_identical"]
        and full["bit_identical"]
        and full_sched["bit_identical"]
        and threads["bit_identical"]
    )
    if not identical:
        print("FAIL: native and compiled engines disagree "
              "(correctness bug)", file=sys.stderr)
        return 1
    if dispatch["speedup"] < args.require_speedup:
        print(
            f"FAIL: dispatch-leg speedup {dispatch['speedup']}x below "
            f"required {args.require_speedup}x",
            file=sys.stderr,
        )
        return 2
    if full["speedup"] < args.require_full_eval_speedup:
        print(
            f"FAIL: full_eval speedup {full['speedup']}x below "
            f"required {args.require_full_eval_speedup}x",
            file=sys.stderr,
        )
        return 2
    if threads["speedup_vs_serial_compiled"] <= 1.0:
        print(
            "FAIL: threaded native did not beat the serial compiled "
            "baseline",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
