"""E15 (extension) -- campaign infrastructure: identity, resume, coverage.

1. **Chunk-invariance**: a chunked, checkpointed campaign over the Eq. (6)
   design reproduces the single-pass `evaluate()` verdicts bit-for-bit
   while holding only one block of traces in memory at a time.
2. **Fault-injection coverage**: the evaluator flags every built-in
   mutant of the FULL Kronecker delta and keeps the clean design clean --
   the tool-validation practice the paper's thesis calls for.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import RandomnessScheme
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.faults import run_self_check
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 60_000
CHUNK_SIZE = 8_192


def test_e15a_chunked_campaign_matches_single_pass(benchmark, designs):
    design = designs("kronecker", RandomnessScheme.DEMEYER_EQ6)
    single = LeakageEvaluator(
        design.dut, ProbingModel.GLITCH, seed=12
    ).evaluate(fixed_secret=0, n_simulations=N_SIMULATIONS)

    def chunked():
        campaign = EvaluationCampaign(
            LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=12),
            CampaignConfig(
                n_simulations=N_SIMULATIONS, chunk_size=CHUNK_SIZE
            ),
        )
        return campaign, campaign.run()

    campaign, report = benchmark.pedantic(chunked, rounds=1, iterations=1)
    print_table(
        "E15a: chunked campaign vs single pass (Eq. 6, glitch model)",
        ["run", "chunks", "verdict", "max -log10(p)"],
        [
            ["single pass", 1, "FAIL" if not single.passed else "PASS",
             f"{single.max_mlog10p:.2f}"],
            ["campaign", campaign.progress.chunks_done,
             "FAIL" if not report.passed else "PASS",
             f"{report.max_mlog10p:.2f}"],
        ],
    )
    assert campaign.progress.chunks_done > 1
    assert [r.mlog10p for r in report.results] == [
        r.mlog10p for r in single.results
    ]


def test_e15b_fault_injection_coverage(benchmark):
    matrix = benchmark.pedantic(
        run_self_check,
        kwargs={"n_simulations": 30_000, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print_table(
        "E15b: evaluator self-check coverage matrix",
        ["fault", "expected", "detected", "max -log10(p)", "sims"],
        [
            [
                o.name,
                "leak" if o.expect_leak else "clean",
                "leak" if o.detected_leak else "clean",
                f"{o.max_mlog10p:.2f}",
                o.n_simulations,
            ]
            for o in matrix.outcomes
        ],
    )
    assert matrix.coverage_complete
