"""E8 -- Second-order Kronecker delta (Section IV, final experiment).

The paper evaluated [12]'s second-order design (3 shares) with its 21 -> 13
fresh-bit optimization under glitches and transitions up to second order
(>= 100M simulations) and found no vulnerability.  We reproduce the verdict
at our sample sizes for the full 21-bit wiring and our 13-bit
reconstruction, and show as an ablation that the *naive* 13-bit reuse
leaks -- the exact mapping matters, which is the paper's thesis.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import SecondOrderScheme
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

N_FIRST = 80_000
N_PAIRS = 50_000
MAX_PAIRS = 400
OFFSETS = (0, 1, 2, 3)


def test_e8_second_order_designs(benchmark, designs):
    rows = []
    reports = {}
    for scheme in SecondOrderScheme:
        design = designs("kronecker", scheme, order=2)
        for model in (ProbingModel.GLITCH, ProbingModel.GLITCH_TRANSITION):
            evaluator = LeakageEvaluator(design.dut, model, seed=8)
            first = evaluator.evaluate(
                fixed_secret=0, n_simulations=N_FIRST
            )
            second = evaluator.evaluate_pairs(
                fixed_secret=0,
                n_simulations=N_PAIRS,
                max_pairs=MAX_PAIRS,
                pair_offsets=OFFSETS,
            )
            reports[(scheme, model)] = (first, second)
            rows.append(
                [
                    scheme.value,
                    scheme.fresh_bits,
                    model.value,
                    f"{first.max_mlog10p:.1f}",
                    "PASS" if first.passed else "FAIL",
                    f"{second.max_mlog10p:.1f}",
                    "PASS" if second.passed else "FAIL",
                ]
            )
    print_table(
        "E8: second-order Kronecker delta (3 shares)",
        [
            "scheme",
            "fresh",
            "model",
            "1st-ord max",
            "1st-ord",
            "2nd-ord max",
            "2nd-ord",
        ],
        rows,
    )

    for scheme in (SecondOrderScheme.FULL_21, SecondOrderScheme.OPT_13):
        for model in (ProbingModel.GLITCH, ProbingModel.GLITCH_TRANSITION):
            first, second = reports[(scheme, model)]
            assert first.passed, (scheme, model)
            assert second.passed, (scheme, model)
    # Ablation: the naive mapping fails somewhere.
    naive_outcomes = [
        reports[(SecondOrderScheme.OPT_13_NAIVE, m)]
        for m in (ProbingModel.GLITCH, ProbingModel.GLITCH_TRANSITION)
    ]
    assert any(
        not first.passed or not second.passed
        for first, second in naive_outcomes
    )

    design = designs("kronecker", SecondOrderScheme.FULL_21, order=2)
    evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=8)
    benchmark.pedantic(
        evaluator.evaluate,
        kwargs=dict(fixed_secret=0, n_simulations=20_000),
        rounds=1,
        iterations=1,
    )
