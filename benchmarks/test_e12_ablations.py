"""E12 (extension) -- design-choice ablations the paper's story rests on.

1. **Why the DOM registers matter** (paper Section I / Mangard et al.):
   stripping the DOM-internal registers from the Kronecker tree makes even
   the 7-fresh-bit wiring leak catastrophically under glitch-extended
   probes -- the output cones then cover both shares.
2. **Compact power-model adversary**: a weaker observer that only sees the
   Hamming weight of the extended probe (PROLEAD's compact mode) still
   detects the Eq. (6) flaw, i.e. the leak is visible to plain HW power
   models, not just to full-distribution tests.
"""

from benchmarks.conftest import print_table
from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import RandomnessScheme
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 60_000


def evaluate(design, observation="tuple", seed=12):
    evaluator = LeakageEvaluator(
        design.dut, ProbingModel.GLITCH, seed=seed, observation=observation
    )
    return evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMULATIONS)


def test_e12_register_and_power_model_ablations(benchmark, designs):
    registered = designs("kronecker", RandomnessScheme.FULL)
    unregistered = build_kronecker_delta(
        RandomnessScheme.FULL, registered=False
    )

    report_registered = evaluate(registered)
    report_unregistered = benchmark.pedantic(
        evaluate, args=(unregistered,), rounds=1, iterations=1
    )
    print_table(
        "E12a: DOM registers ablation (FULL wiring, glitch model)",
        ["variant", "registers", "verdict", "max -log10(p)"],
        [
            [
                "pipelined (Fig. 3)",
                sum(1 for _ in registered.netlist.dff_cells()),
                "PASS" if report_registered.passed else "FAIL",
                f"{report_registered.max_mlog10p:.1f}",
            ],
            [
                "combinational (no registers)",
                0,
                "PASS" if report_unregistered.passed else "FAIL",
                f"{report_unregistered.max_mlog10p:.1f}",
            ],
        ],
    )
    assert report_registered.passed
    assert not report_unregistered.passed
    assert report_unregistered.max_mlog10p > 100

    eq6 = designs("kronecker", RandomnessScheme.DEMEYER_EQ6)
    rows = []
    outcomes = {}
    for scheme_label, design in (
        ("demeyer_eq6", eq6),
        ("full_7_fresh", registered),
    ):
        for observation in ("tuple", "hamming"):
            report = evaluate(design, observation)
            outcomes[(scheme_label, observation)] = report
            rows.append(
                [
                    scheme_label,
                    observation,
                    "PASS" if report.passed else "FAIL",
                    f"{report.max_mlog10p:.1f}",
                ]
            )
    print_table(
        "E12b: full-distribution vs Hamming-weight (compact) observer",
        ["scheme", "observation", "verdict", "max -log10(p)"],
        rows,
    )
    assert not outcomes[("demeyer_eq6", "hamming")].passed
    assert outcomes[("full_7_fresh", "hamming")].passed
    # The full-distribution observer is at least as strong as HW.
    assert (
        outcomes[("demeyer_eq6", "tuple")].max_mlog10p
        >= outcomes[("demeyer_eq6", "hamming")].max_mlog10p
    )
