"""E5 -- Root-cause analysis (Section III, Eq. (7) and Eq. (8)).

Regenerates the paper's derivation from the built netlist: the simplified
per-share equations of the tree, the mask cancellation in y0^0 xor y2^0
when r1 = r3, and the exact distribution of the v1 observation conditioned
on the unmasked bits x1, x5.
"""

from benchmarks.conftest import print_table
from repro.analysis.rootcause import (
    eq8_cancellation_witness,
    kronecker_layer_equations,
    v1_distribution_by_secret,
)
from repro.analysis.walsh import depends_on_conditioning, total_variation
from repro.core.optimizations import RandomnessScheme


def test_e5_root_cause_derivations(benchmark):
    equations = benchmark(
        kronecker_layer_equations, RandomnessScheme.FULL
    )
    print("\n=== E5a: recovered Eq. (7) share equations (FULL wiring) ===")
    for label in ("y0^0", "y1^0", "y2^0", "y3^0", "w0^0", "w1^0"):
        text = str(equations[label])
        print(f"  {label} = {text[:95]}")
    # y0^0 must carry exactly the r1 blinding of Eq. (7).
    assert "rand.r1@0" in equations["y0^0"].variables()

    rows = []
    for scheme in (
        RandomnessScheme.FULL,
        RandomnessScheme.FIRST_LAYER_R1R3,
        RandomnessScheme.DEMEYER_EQ6,
    ):
        cancelled, poly = eq8_cancellation_witness(scheme)
        rows.append(
            [scheme.value, "yes" if cancelled else "no", str(poly)[:60]]
        )
    print_table(
        "E5b: Eq. (8) mask cancellation in y0^0 xor y2^0",
        ["scheme", "masks cancel", "residual polynomial"],
        rows,
    )
    assert not eq8_cancellation_witness(RandomnessScheme.FULL)[0]
    assert eq8_cancellation_witness(RandomnessScheme.FIRST_LAYER_R1R3)[0]

    # Exact conditioned distributions at v1 (the paper's leakage argument).
    dists = v1_distribution_by_secret(RandomnessScheme.FIRST_LAYER_R1R3)
    baseline = dists[(1, 1)]
    rows = [
        [
            f"x1={x1}, x5={x5}",
            f"{total_variation(dists[(x1, x5)], baseline):.4f}",
        ]
        for x1 in (0, 1)
        for x5 in (0, 1)
    ]
    print_table(
        "E5c: TV distance of v1 observation vs (x1=1, x5=1) case, r1=r3",
        ["unmasked bits", "TV distance"],
        rows,
    )
    assert depends_on_conditioning(dists)
    secure = v1_distribution_by_secret(RandomnessScheme.FULL)
    assert not depends_on_conditioning(secure)
