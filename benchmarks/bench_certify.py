"""Sharded-vs-serial exact enumeration benchmark emitting ``BENCH_certify.json``.

Runs the full exhaustive sweep of a Kronecker-delta randomness scheme once
with the serial exact analyzer and once with the sharded engine on a worker
pool, asserts the two produce **bit-identical** verdicts (per-probe leak
flags, total-variation distances and distinct-distribution counts), and
records wall-clock times plus the sharded speedup.  Also runs the
compositional certifier over the DOM fixtures and the scheme itself and
records how many gadgets were certified and how (isolated SNI, slice NI,
exact fallback).

Usage (CI runs this with a modest speedup gate on a 4-core runner)::

    PYTHONPATH=src python benchmarks/bench_certify.py \
        --scheme eq6 --workers 4 --out BENCH_certify.json

Exit codes: 0 success, 1 verdict mismatch (a correctness bug), 2 speedup
below ``--require-speedup``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cli import _scheme
from repro.core.kronecker import build_kronecker_delta
from repro.leakage.certify import (
    CompositionalChecker,
    ShardedExactAnalyzer,
    dom_and_design,
    dom_and_pair_design,
)
from repro.leakage.exact import ExactAnalyzer


def _verdicts(report):
    return sorted(
        (
            r.probe_names,
            r.leaking,
            r.tv_fixed_vs_random,
            r.n_distinct_distributions,
        )
        for r in report.results
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheme", default="eq6")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-enum-bits", type=int, default=23)
    parser.add_argument("--shard-lane-bits", type=int, default=16)
    parser.add_argument("--require-speedup", type=float, default=None)
    parser.add_argument("--out", default="BENCH_certify.json")
    args = parser.parse_args(argv)

    design = build_kronecker_delta(_scheme(args.scheme))

    t0 = time.perf_counter()
    serial = ExactAnalyzer(
        design.dut, max_enum_bits=args.max_enum_bits
    ).analyze()
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = ShardedExactAnalyzer(
        design.dut,
        max_enum_bits=args.max_enum_bits,
        shard_lane_bits=args.shard_lane_bits,
    ).analyze(workers=args.workers)
    t_sharded = time.perf_counter() - t0

    if _verdicts(serial) != _verdicts(sharded):
        print("FAIL: sharded verdicts differ from serial", file=sys.stderr)
        return 1
    speedup = t_serial / t_sharded if t_sharded > 0 else float("inf")

    certificates = {}
    certified_gadgets = 0
    for name, dut in (
        ("dom_and", dom_and_design()),
        ("dom_pair_fresh", dom_and_pair_design(False)),
        ("dom_pair_shared", dom_and_pair_design(True)),
        (args.scheme, design.dut),
    ):
        t0 = time.perf_counter()
        report = CompositionalChecker(dut, model="robust").check()
        exact_fallbacks = sum(
            1 for g in report.gadgets if g.exact_confirmed is not None
        )
        share_gadgets = [g for g in report.gadgets if g.kind == "shares"]
        certificates[name] = {
            "certified": report.certified,
            "n_gadgets": len(share_gadgets),
            "n_counterexamples": len(report.counterexamples),
            "n_exact_fallbacks": exact_fallbacks,
            "seconds": round(time.perf_counter() - t0, 3),
        }
        if report.certified:
            certified_gadgets += len(share_gadgets)

    record = {
        "benchmark": "certify",
        "scheme": args.scheme,
        "max_enum_bits": args.max_enum_bits,
        "shard_lane_bits": args.shard_lane_bits,
        "workers": args.workers,
        "n_probe_classes": len(serial.results),
        "n_leaking": len(serial.leaking_results),
        "bit_identical": True,
        "serial_seconds": round(t_serial, 3),
        "sharded_seconds": round(t_sharded, 3),
        "speedup": round(speedup, 3),
        "certified_gadgets": certified_gadgets,
        "certificates": certificates,
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))

    if args.require_speedup is not None and speedup < args.require_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
