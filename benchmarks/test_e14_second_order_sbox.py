"""E14 (extension) -- the complete second-order masked S-box.

The paper's final experiment evaluates [12]'s *second-order masked AES
S-box* (not just the Kronecker delta) with glitches and transitions up to
second order and reports no vulnerability.  This bench runs the same
programme on our 3-share S-box reconstruction (see DESIGN.md): first-order
and probe-pair evaluations under both models, for the 21-fresh-bit and the
13-fresh-bit Kronecker wirings.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import SecondOrderScheme
from repro.core.sbox2 import build_masked_sbox_second_order
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.netlist.stats import netlist_stats

N_FIRST = 80_000
N_PAIRS = 40_000
MAX_PAIRS = 300


def test_e14_second_order_sbox(benchmark):
    rows = []
    outcomes = {}
    for scheme in (SecondOrderScheme.FULL_21, SecondOrderScheme.OPT_13):
        design = build_masked_sbox_second_order(scheme)
        for model in (ProbingModel.GLITCH, ProbingModel.GLITCH_TRANSITION):
            evaluator = LeakageEvaluator(design.dut, model, seed=14)
            first = evaluator.evaluate(
                fixed_secret=0, n_simulations=N_FIRST
            )
            pairs = evaluator.evaluate_pairs(
                fixed_secret=0,
                n_simulations=N_PAIRS,
                max_pairs=MAX_PAIRS,
                pair_offsets=(0, 1, 2),
            )
            outcomes[(scheme, model)] = (first, pairs)
            rows.append(
                [
                    scheme.value,
                    model.value,
                    f"{first.max_mlog10p:.1f}",
                    "PASS" if first.passed else "FAIL",
                    f"{pairs.max_mlog10p:.1f}",
                    "PASS" if pairs.passed else "FAIL",
                ]
            )

    stats = netlist_stats(
        build_masked_sbox_second_order(SecondOrderScheme.FULL_21).netlist
    )
    print(
        f"\n3-share S-box: {stats.n_cells} cells, {stats.n_registers} "
        f"registers, {stats.area_ge/1000:.1f} kGE, latency 7 cycles"
    )
    print_table(
        "E14: second-order masked S-box, fixed input 0x00",
        ["scheme", "model", "1st max", "1st", "2nd max", "2nd"],
        rows,
    )
    for key, (first, pairs) in outcomes.items():
        assert first.passed, key
        assert pairs.passed, key

    design = build_masked_sbox_second_order(SecondOrderScheme.FULL_21)
    evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=14)
    benchmark.pedantic(
        evaluator.evaluate,
        kwargs=dict(fixed_secret=0, n_simulations=20_000),
        rounds=1,
        iterations=1,
    )
