"""E6 -- The paper's proposed optimization (Section IV, Eq. (9)).

Eq. (9) (r1..r4 fresh; r5=r4, r6=r2, r7=r3) is first-order secure under the
glitch-extended model, while the r5=r6 counter-example of Section IV leaks.
Verified exactly (full probe sweep) and with sampled G-tests on the full
S-box.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import RandomnessScheme
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 100_000


def test_e6_proposed_fix(benchmark, designs):
    eq9 = designs("kronecker", RandomnessScheme.PROPOSED_EQ9)
    analyzer = ExactAnalyzer(eq9.dut, max_enum_bits=23)
    exact_report = benchmark.pedantic(
        analyzer.analyze, rounds=1, iterations=1
    )

    counterexample = designs("kronecker", RandomnessScheme.SECOND_LAYER_R5R6)
    counter_analyzer = ExactAnalyzer(counterexample.dut, max_enum_bits=23)
    counter_report = counter_analyzer.analyze()

    sbox_eq9 = designs("sbox", RandomnessScheme.PROPOSED_EQ9)
    sbox_report = LeakageEvaluator(
        sbox_eq9.dut, ProbingModel.GLITCH, seed=6
    ).evaluate(fixed_secret=0x00, n_simulations=N_SIMULATIONS)

    print_table(
        "E6: the Eq. (9) fix under the glitch-extended model",
        ["configuration", "method", "verdict", "leaking probes"],
        [
            [
                "Kronecker + Eq.(9), 4 fresh bits",
                "exact sweep",
                "SECURE" if exact_report.passed else "INSECURE",
                len(exact_report.leaking_results),
            ],
            [
                "Kronecker + r5=r6 (counter-example)",
                "exact sweep",
                "SECURE" if counter_report.passed else "INSECURE",
                len(counter_report.leaking_results),
            ],
            [
                "full S-box + Eq.(9), fixed 0x00",
                f"G-test, {N_SIMULATIONS} sims",
                "PASS" if sbox_report.passed else "FAIL",
                len(sbox_report.leaking_results),
            ],
        ],
    )
    assert exact_report.passed
    assert not counter_report.passed
    assert sbox_report.passed
    # The counter-example's leaks localize to G7, as analyzed in the paper.
    for result in counter_report.leaking_results:
        assert "g7" in result.probe_names
