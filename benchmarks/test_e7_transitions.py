"""E7 -- Glitch- and transition-extended probing (Section IV).

The paper: "none of the optimizations discussed above can maintain security
under glitch- and transition-extended probing models"; by trial and error
four solutions were found (r1..r6 fresh, r7 = r_i for i in 1..4), which
"do not play a significant role in reducing the demand for fresh mask bits".
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import FIRST_ORDER_SCHEMES, scheme_fresh_bits
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 80_000


def evaluate(design, seed=7):
    evaluator = LeakageEvaluator(
        design.dut, ProbingModel.GLITCH_TRANSITION, seed=seed
    )
    return evaluator.evaluate(fixed_secret=0, n_simulations=N_SIMULATIONS)


def test_e7_transition_model_all_schemes(benchmark, designs):
    rows = []
    for scheme in FIRST_ORDER_SCHEMES:
        design = designs("kronecker", scheme)
        report = evaluate(design)
        rows.append(
            [
                scheme.value,
                scheme_fresh_bits(scheme),
                f"{report.max_mlog10p:.1f}",
                "PASS" if report.passed else "FAIL",
                "pass" if scheme.expected_transition_secure else "fail",
            ]
        )
        assert report.passed == scheme.expected_transition_secure, scheme

    print_table(
        "E7: Kronecker delta, glitch+transition-extended model",
        [
            "scheme",
            "fresh bits",
            "max -log10(p)",
            "verdict",
            "paper verdict",
        ],
        rows,
    )

    # Benchmark one transition-model evaluation (the Eq. (9) failure case).
    eq9 = designs("kronecker", FIRST_ORDER_SCHEMES[4])
    benchmark.pedantic(evaluate, args=(eq9,), rounds=1, iterations=1)
