"""E1 -- Architecture report (paper Fig. 1/2/3 and Section II-C).

Regenerates the structural facts the paper states: the S-box is a 5-cycle
pipeline (3 cycles Kronecker + 2 cycles conversions, combinational affine),
the Kronecker delta is a 3-level tree of seven DOM-AND gates, and the
fresh-randomness cost of every wiring scheme (7 / 3 / 4 / 6 bits first
order; 21 / 13 second order).
"""

from benchmarks.conftest import print_table
from repro.core.kronecker import KRONECKER_LATENCY
from repro.core.optimizations import (
    FIRST_ORDER_SCHEMES,
    SecondOrderScheme,
    scheme_fresh_bits,
)
from repro.core.sbox import SBOX_LATENCY
from repro.netlist.stats import netlist_stats


def test_e1_architecture_report(benchmark, designs):
    sbox = designs("sbox", FIRST_ORDER_SCHEMES[0])
    stats = benchmark(netlist_stats, sbox.netlist)

    # --- latency table (Section II-C) -----------------------------------
    assert KRONECKER_LATENCY == 3
    assert SBOX_LATENCY == 5
    print_table(
        "E1a: pipeline latency (cycles)",
        ["module", "latency"],
        [
            ["Kronecker delta (3 DOM layers)", KRONECKER_LATENCY],
            ["masking conversions (B->M, M->B)", 2],
            ["affine transformation", "combinational"],
            ["masked S-box total", SBOX_LATENCY],
        ],
    )

    # --- structure table -------------------------------------------------
    rows = []
    for kind, design in [
        ("masked S-box (FULL)", sbox),
        ("Kronecker delta o1 (FULL)", designs("kronecker", FIRST_ORDER_SCHEMES[0])),
        ("Kronecker delta o2 (21 bits)", designs("kronecker", SecondOrderScheme.FULL_21, order=2)),
    ]:
        s = netlist_stats(design.netlist)
        rows.append(
            [
                kind,
                s.n_cells,
                s.n_registers,
                s.comb_depth,
                f"{s.area_ge:.0f}",
            ]
        )
    print_table(
        "E1b: netlist structure (NanGate45-style areas)",
        ["module", "cells", "registers", "depth", "area [GE]"],
        rows,
    )
    # Fig. 3: 7 DOM gates x 4 registers in the first-order tree.
    kron = designs("kronecker", FIRST_ORDER_SCHEMES[0])
    assert sum(1 for _ in kron.netlist.dff_cells()) == 28

    # --- randomness cost table -------------------------------------------
    rows = [
        [scheme.value, 1, scheme_fresh_bits(scheme)]
        for scheme in FIRST_ORDER_SCHEMES
    ]
    rows += [[s.value, 2, s.fresh_bits] for s in SecondOrderScheme]
    print_table(
        "E1c: fresh mask bits per cycle (Kronecker delta)",
        ["scheme", "order", "fresh bits"],
        rows,
    )
    assert scheme_fresh_bits(FIRST_ORDER_SCHEMES[0]) == 7
    assert SecondOrderScheme.OPT_13.fresh_bits == 13
    assert stats.n_registers == 128
