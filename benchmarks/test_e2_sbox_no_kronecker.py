"""E2 -- S-box without the Kronecker delta (Section III, paragraph 2).

The paper: "When excluding the Kronecker delta function and selecting a
non-zero input as the fixed value of the test, the design passes the
PROLEAD's security assessments."  We additionally fix input 0 to show the
classic zero-value problem the delta exists to solve.
"""

from benchmarks.conftest import print_table
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 100_000


def test_e2_sbox_without_kronecker(benchmark, designs):
    design = designs("sbox", None, include_kronecker=False)
    evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=2)

    report_nonzero = benchmark.pedantic(
        evaluator.evaluate,
        kwargs=dict(fixed_secret=0x53, n_simulations=N_SIMULATIONS),
        rounds=1,
        iterations=1,
    )
    report_zero = evaluator.evaluate(
        fixed_secret=0x00, n_simulations=N_SIMULATIONS
    )

    print_table(
        "E2: masked S-box without Kronecker delta, glitch-extended model",
        ["fixed input", "verdict", "max -log10(p)", "worst probe"],
        [
            [
                "0x53 (non-zero)",
                "PASS" if report_nonzero.passed else "FAIL",
                f"{report_nonzero.max_mlog10p:.2f}",
                report_nonzero.worst.probe_names[:48],
            ],
            [
                "0x00 (zero-value problem)",
                "PASS" if report_zero.passed else "FAIL",
                f"{report_zero.max_mlog10p:.2f}",
                report_zero.worst.probe_names[:48],
            ],
        ],
    )
    # Paper shape: non-zero fixed passes; zero input is catastrophic.
    assert report_nonzero.passed
    assert not report_zero.passed
    assert report_zero.max_mlog10p > 100
