"""Uniform-vs-adaptive campaign benchmark emitting ``BENCH_adaptive.json``.

Two claims back the adaptive per-probe scheduler:

* **E3 speed**: on the masked S-box with Eq. (6) randomness (the known
  leak) at the paper's 100k-simulation budget, deciding probes early and
  pruning them cuts wall-clock by >= ``--require-speedup`` (default 3x)
  while reaching the identical verdict and leaking-probe set;
* **E4 safety**: across the full randomness-scheme table under both
  probing models, the adaptive run never flips a verdict relative to
  the uniform-budget run at the same seed.

Usage (CI runs this single-core; the win comes from pruning, not
parallelism)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py \
        --simulations 100000 --require-speedup 3.0 \
        --out BENCH_adaptive.json

Exit codes: 0 success, 1 verdict/leak-set mismatch (a correctness bug),
2 speedup below ``--require-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.core.kronecker import build_kronecker_delta
from repro.core.optimizations import FIRST_ORDER_SCHEMES
from repro.core.sbox import build_masked_sbox
from repro.leakage.adaptive import AdaptiveConfig
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

CHUNK_SIZE = 8_192


def _timed_campaign(dut, model, n_simulations, seed, adaptive):
    evaluator = LeakageEvaluator(dut, model, seed=seed)
    config = CampaignConfig(
        n_simulations=n_simulations,
        chunk_size=CHUNK_SIZE,
        adaptive=AdaptiveConfig() if adaptive else None,
    )
    campaign = EvaluationCampaign(evaluator, config)
    start = time.perf_counter()
    report = campaign.run()
    return report, time.perf_counter() - start


def _leak_set(report):
    return sorted(r.probe_names for r in report.leaking_results)


def bench_e3(args):
    """Masked S-box, Eq. (6): the speedup + identical-result claim."""
    dut = build_masked_sbox(FIRST_ORDER_SCHEMES[1]).dut
    uniform, t_uniform = _timed_campaign(
        dut, ProbingModel.GLITCH, args.simulations, args.seed, False
    )
    adaptive, t_adaptive = _timed_campaign(
        dut, ProbingModel.GLITCH, args.simulations, args.seed, True
    )
    speedup = t_uniform / t_adaptive if t_adaptive else float("inf")
    identical = (
        adaptive.passed == uniform.passed
        and _leak_set(adaptive) == _leak_set(uniform)
    )
    record = {
        "design": "sbox",
        "scheme": "eq6",
        "n_simulations": args.simulations,
        "uniform_seconds": round(t_uniform, 3),
        "adaptive_seconds": round(t_adaptive, 3),
        "speedup": round(speedup, 2),
        "adaptive_simulations": adaptive.n_simulations,
        "probe_sample_savings": adaptive.adaptive["probe_sample_savings"],
        "verdict": "FAIL" if not uniform.passed else "PASS",
        "leaking_probes": _leak_set(uniform),
        "identical_results": identical,
    }
    print(
        f"E3 sbox/eq6 {args.simulations} sims: "
        f"uniform {t_uniform:.2f}s, adaptive {t_adaptive:.2f}s "
        f"({speedup:.2f}x), identical={identical}"
    )
    return record, identical, speedup


def bench_e4_table(args):
    """Every scheme x both models: adaptive must not flip a verdict."""
    rows = []
    flips = 0
    for scheme in FIRST_ORDER_SCHEMES:
        dut = build_kronecker_delta(scheme).dut
        for model in (ProbingModel.GLITCH, ProbingModel.GLITCH_TRANSITION):
            uniform, t_uniform = _timed_campaign(
                dut, model, args.table_simulations, args.seed, False
            )
            adaptive, t_adaptive = _timed_campaign(
                dut, model, args.table_simulations, args.seed, True
            )
            flipped = adaptive.passed != uniform.passed
            flips += flipped
            rows.append(
                {
                    "scheme": scheme.value,
                    "model": model.value,
                    "uniform_passed": uniform.passed,
                    "adaptive_passed": adaptive.passed,
                    "uniform_seconds": round(t_uniform, 3),
                    "adaptive_seconds": round(t_adaptive, 3),
                    "adaptive_undecided": adaptive.adaptive["undecided"],
                    "probe_sample_savings": adaptive.adaptive[
                        "probe_sample_savings"
                    ],
                    "verdict_flip": flipped,
                }
            )
            marker = "FLIP" if flipped else "ok"
            print(
                f"E4 {scheme.value:28s} {model.value:18s} "
                f"uniform={'PASS' if uniform.passed else 'FAIL'} "
                f"adaptive={'PASS' if adaptive.passed else 'FAIL'} "
                f"[{marker}]"
            )
    return rows, flips


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--simulations", type=int, default=100_000,
                        help="E3 budget (paper: 100k)")
    parser.add_argument("--table-simulations", type=int, default=20_000,
                        help="per-cell budget for the E4 scheme table")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="exit 2 unless E3 speedup >= this factor")
    parser.add_argument("--skip-table", action="store_true",
                        help="run only the E3 speed benchmark")
    parser.add_argument("--out", default="BENCH_adaptive.json")
    args = parser.parse_args(argv)

    e3, identical, speedup = bench_e3(args)
    table, flips = ([], 0) if args.skip_table else bench_e4_table(args)

    payload = {
        "benchmark": "adaptive_scheduler",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "e3": e3,
        "e4_table": table,
        "e4_verdict_flips": flips,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if not identical or flips:
        print("FAIL: adaptive results diverge from uniform results")
        return 1
    if args.require_speedup and speedup < args.require_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.require_speedup}x"
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
