"""E3 -- The paper's central finding (Section III, Fig. 3).

The complete masked S-box with De Meyer et al.'s Eq. (6) randomness
optimization and fixed input 0 fails the glitch-extended fixed-vs-random
test, with every leaking probe inside gate G7 of the Kronecker delta --
the nodes the paper marks v1..v4 with red stars.
"""

from benchmarks.conftest import print_table
from repro.core.optimizations import RandomnessScheme
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel

N_SIMULATIONS = 100_000


def test_e3_sbox_with_eq6_fails_at_g7(benchmark, designs):
    design = designs("sbox", RandomnessScheme.DEMEYER_EQ6)
    evaluator = LeakageEvaluator(design.dut, ProbingModel.GLITCH, seed=3)
    report = benchmark.pedantic(
        evaluator.evaluate,
        kwargs=dict(fixed_secret=0x00, n_simulations=N_SIMULATIONS),
        rounds=1,
        iterations=1,
    )

    ranked = sorted(report.results, key=lambda r: -r.mlog10p)[:8]
    print_table(
        "E3: masked S-box + Eq.(6) optimization, fixed input 0x00",
        ["probe", "-log10(p)", "verdict"],
        [
            [r.probe_names[:52], f"{r.mlog10p:.1f}", "LEAK" if r.leaking else "ok"]
            for r in ranked
        ],
    )
    assert not report.passed
    # Localization claim: the red-star nodes of Fig. 3 live in G7.
    for result in report.leaking_results:
        assert "g7" in result.probe_names
    leak_names = " ".join(r.probe_names for r in report.leaking_results)
    assert "g7.inner0" in leak_names  # v1

    # Counterpart: the FULL wiring passes at the same sample size.
    full = designs("sbox", RandomnessScheme.FULL)
    full_report = LeakageEvaluator(
        full.dut, ProbingModel.GLITCH, seed=3
    ).evaluate(fixed_secret=0x00, n_simulations=N_SIMULATIONS)
    print(
        f"\ncontrol: FULL wiring at the same size -> "
        f"{'PASS' if full_report.passed else 'FAIL'} "
        f"(max -log10(p) = {full_report.max_mlog10p:.2f})"
    )
    assert full_report.passed
