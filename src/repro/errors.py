"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (dangling net, multiple drivers...)."""


class SimulationError(ReproError):
    """Problem while simulating a netlist (missing input, shape mismatch)."""


class FieldError(ReproError):
    """Invalid Galois-field construction or operation."""


class MaskingError(ReproError):
    """Invalid sharing or gadget construction."""


class ExactAnalysisInfeasible(ReproError):
    """The exact leakage analysis would exceed the enumeration budget.

    Callers are expected to fall back to Monte-Carlo sampling.  Carries the
    per-probe cost so reports and telemetry can say *how far* a probe is
    beyond the budget: ``needed_bits`` is the enumeration bits the probe
    requires (``None`` when unknown), ``budget`` the configured limit.
    """

    def __init__(
        self,
        message: str,
        probe: "str | None" = None,
        needed_bits: "int | None" = None,
        budget: "int | None" = None,
    ):
        super().__init__(message)
        self.probe = probe
        self.needed_bits = needed_bits
        self.budget = budget


class CheckpointError(ReproError):
    """A campaign checkpoint could not be read, written, or reused.

    Raised on version mismatches, persistent write failures, and attempts
    to resume a checkpoint written by a differently-configured campaign.
    """


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed its integrity checks (CRC, container, zip).

    Campaigns do not surface this directly on resume: a corrupt generation
    is quarantined and the previous generation (or a fresh start) takes
    over, bit-identically.  The type exists so integrity failures stay
    distinguishable from configuration mismatches, which must *not* fall
    back silently.
    """


class ChaosError(ReproError):
    """The chaos harness observed a robustness-contract violation.

    Raised by :func:`repro.chaos.run_torture` when a fault-injected run
    neither reproduced the golden report bit for bit nor failed with a
    typed error -- i.e. the infrastructure produced a silently wrong (or
    untyped-crashing) result, which is exactly what the harness exists to
    catch.
    """


class ServiceError(ReproError):
    """Evaluation-service failure (bad job spec, full queue, corrupt store).

    The HTTP layer maps subclasses/messages to status codes; the CLI maps
    them to exit code 2 like every other :class:`ReproError`.
    """


class SpecError(ServiceError):
    """Invalid :class:`repro.spec.EvaluationSpec` construction or parsing.

    Subclasses :class:`ServiceError` because the spec is also the service
    job wire format: existing ``except ServiceError`` handlers (the HTTP
    400 mapping, the CLI) keep working unchanged.
    """


class FleetInterrupted(ServiceError):
    """A fleet-distributed wait aborted before every work item finished.

    Raised by :meth:`repro.service.fleet.FleetCoordinator.wait` when the
    caller's ``should_stop`` fires (cancellation, watchdog stall, service
    shutdown) or when the owning job is released mid-wait.  The runner
    maps it onto the same cancelled / restart / requeue ladder used for
    ``truncated:cancelled`` campaign reports.
    """


class BudgetExceeded(ReproError):
    """A campaign exhausted its wall-clock or memory budget in strict mode.

    The default campaign behaviour is a graceful truncated report; this is
    only raised when the caller asked for ``on_budget="raise"``.
    """
