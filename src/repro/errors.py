"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (dangling net, multiple drivers...)."""


class SimulationError(ReproError):
    """Problem while simulating a netlist (missing input, shape mismatch)."""


class FieldError(ReproError):
    """Invalid Galois-field construction or operation."""


class MaskingError(ReproError):
    """Invalid sharing or gadget construction."""


class ExactAnalysisInfeasible(ReproError):
    """The exact leakage analysis would exceed the enumeration budget.

    Callers are expected to fall back to Monte-Carlo sampling.
    """
