"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """Structural problem in a netlist (dangling net, multiple drivers...)."""


class SimulationError(ReproError):
    """Problem while simulating a netlist (missing input, shape mismatch)."""


class FieldError(ReproError):
    """Invalid Galois-field construction or operation."""


class MaskingError(ReproError):
    """Invalid sharing or gadget construction."""


class ExactAnalysisInfeasible(ReproError):
    """The exact leakage analysis would exceed the enumeration budget.

    Callers are expected to fall back to Monte-Carlo sampling.
    """


class CheckpointError(ReproError):
    """A campaign checkpoint could not be read, written, or reused.

    Raised on version mismatches, corrupt files, and attempts to resume a
    checkpoint written by a differently-configured campaign.
    """


class ServiceError(ReproError):
    """Evaluation-service failure (bad job spec, full queue, corrupt store).

    The HTTP layer maps subclasses/messages to status codes; the CLI maps
    them to exit code 2 like every other :class:`ReproError`.
    """


class SpecError(ServiceError):
    """Invalid :class:`repro.spec.EvaluationSpec` construction or parsing.

    Subclasses :class:`ServiceError` because the spec is also the service
    job wire format: existing ``except ServiceError`` handlers (the HTTP
    400 mapping, the CLI) keep working unchanged.
    """


class BudgetExceeded(ReproError):
    """A campaign exhausted its wall-clock or memory budget in strict mode.

    The default campaign behaviour is a graceful truncated report; this is
    only raised when the caller asked for ``on_budget="raise"``.
    """
