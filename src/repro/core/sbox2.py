"""A second-order (3-share) multiplicative-masked AES S-box.

The paper evaluates "a second-order implementation of the masked AES Sbox
presented in [12] following the same concept"; the DATE paper does not
print that design, so this module reconstructs one following the same
concept (documented in DESIGN.md):

* 3-share Boolean input; the second-order Kronecker delta
  (:class:`SecondOrderScheme`) maps zero to one;
* Boolean -> multiplicative conversion with **two** non-zero mask bytes
  (Eq. (3) with d = 3): the Boolean shares are multiplied share-wise by R1,
  registered, then by R2, registered, so ``P2 = X (x) R1 (x) R2`` is only
  ever represented multiplicatively-masked by two factors -- a 2-probe
  adversary that captures one factor still faces the other;
* local inversion of the single share ``P2`` (combinational tower-field
  inverter), giving ``X^-1 = R1 (x) R2 (x) inv(P2)``;
* multiplicative -> Boolean conversion that peels ``R2`` into a *three*-
  share Boolean sharing directly (two fresh mask bytes R'0, R'1)::

      C0 = [R'0 (x) R2],  C1 = [R'1 (x) R2],
      C2 = [(R'0 xor R'1 xor inv(P2)) (x) R2]

  so ``C0 xor C1 xor C2 = R2 (x) inv(P2) = X^-1 (x) R1^-1`` -- the value
  stays multiplicatively masked by R1 and is never shared with fewer than
  three Boolean shares;
* a final share-wise multiplication by the delayed R1 yields the 3-share
  Boolean sharing of ``X^-1``; the Kronecker bit is XORed back and the
  affine transformation applied share-wise.

Latency: 3 (Kronecker) + 2 (x R1, x R2) + 1 (M->B) + 1 (x R1 peel) = 7
cycles, fully pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.aes.gf_circuits import (
    gf256_inverter_circuit,
    gf256_multiplier_circuit,
)
from repro.aes.sbox import AFFINE_CONSTANT, AFFINE_MATRIX
from repro.core.kronecker import kronecker_tree
from repro.core.optimizations import SecondOrderScheme
from repro.errors import MaskingError
from repro.leakage.dut import DesignUnderTest
from repro.masking.gadgets import sharewise_linear
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder

#: Latency of the second-order masked S-box in clock cycles.
SBOX2_LATENCY = 7


@dataclass
class MaskedSbox2Design:
    """The built second-order S-box with its evaluation protocol."""

    dut: DesignUnderTest
    scheme: SecondOrderScheme
    output_shares: List[List[int]]

    @property
    def netlist(self):
        """The underlying netlist."""
        return self.dut.netlist

    @property
    def latency(self) -> int:
        """Pipeline latency in cycles."""
        return self.dut.latency


def build_masked_sbox_second_order(
    scheme: SecondOrderScheme = SecondOrderScheme.FULL_21,
) -> MaskedSbox2Design:
    """Build the 3-share masked AES S-box netlist."""
    if not isinstance(scheme, SecondOrderScheme):
        raise MaskingError("the second-order S-box needs a SecondOrderScheme")
    builder = CircuitBuilder(f"masked_sbox2_{scheme.value}")

    shares = [builder.input_bus(f"b{s}", 8) for s in range(3)]
    bus = MaskBus(builder)
    r1_bus = builder.input_bus("R1", 8)
    r2_bus = builder.input_bus("R2", 8)
    rp0_bus = builder.input_bus("Rp0", 8)
    rp1_bus = builder.input_bus("Rp1", 8)

    # --- cycles 1..3: Kronecker delta and the input delay line -------------
    wiring = scheme.wire(bus)
    tree = kronecker_tree(builder, shares, wiring, order=2)
    z_shares = tree["z"]

    delayed = [list(s) for s in shares]
    for stage in range(3):
        delayed = [
            builder.reg_bus(bus_, f"delay{stage}.s{i}")
            for i, bus_ in enumerate(delayed)
        ]

    # --- cycle 4: zero-mapping, then share-wise x R1 ------------------------
    mapped = []
    for i, share_bus in enumerate(delayed):
        bits = list(share_bus)
        bits[0] = builder.xor(bits[0], z_shares[i], f"zmap.s{i}")
        mapped.append(bits)
    stage1 = [
        builder.reg_bus(
            gf256_multiplier_circuit(builder, mapped[i], r1_bus, f"mulr1.s{i}"),
            f"c.s{i}",
        )
        for i in range(3)
    ]
    # R1 must meet the final peel stage three cycles later.
    r1_delayed = list(r1_bus)
    for stage in range(3):
        r1_delayed = builder.reg_bus(r1_delayed, f"r1d{stage}")

    # --- cycle 5: share-wise x R2 -------------------------------------------
    stage2 = [
        builder.reg_bus(
            gf256_multiplier_circuit(builder, stage1[i], r2_bus, f"mulr2.s{i}"),
            f"d.s{i}",
        )
        for i in range(3)
    ]
    r2_delayed = builder.reg_bus(list(r2_bus), "r2d0")

    # --- cycle 6: recombine P2, invert locally, M->B with three shares ------
    p2 = builder.xor_bus(builder.xor_bus(stage2[0], stage2[1]), stage2[2])
    q2 = gf256_inverter_circuit(builder, p2, "local_inv")
    c0 = builder.reg_bus(
        gf256_multiplier_circuit(builder, rp0_bus, r2_delayed, "m2b.mul0"),
        "m2b.c0",
    )
    c1 = builder.reg_bus(
        gf256_multiplier_circuit(builder, rp1_bus, r2_delayed, "m2b.mul1"),
        "m2b.c1",
    )
    masked_q2 = builder.xor_bus(builder.xor_bus(rp0_bus, rp1_bus), q2)
    c2 = builder.reg_bus(
        gf256_multiplier_circuit(builder, masked_q2, r2_delayed, "m2b.mul2"),
        "m2b.c2",
    )

    # z rides four more register stages to meet the output.
    z_delayed = list(z_shares)
    for stage in range(4):
        z_delayed = [
            builder.reg(zi, f"zdelay{stage}.s{i}")
            for i, zi in enumerate(z_delayed)
        ]

    # --- cycle 7: peel R1 share-wise ----------------------------------------
    peeled = [
        builder.reg_bus(
            gf256_multiplier_circuit(builder, c, r1_delayed, f"peel.s{i}"),
            f"e.s{i}",
        )
        for i, c in enumerate((c0, c1, c2))
    ]

    # --- output: undo the zero-mapping, affine transform --------------------
    final_shares = [list(s) for s in peeled]
    for i in range(3):
        final_shares[i][0] = builder.xor(
            final_shares[i][0], z_delayed[i], f"zunmap.s{i}"
        )
    affine_shares = sharewise_linear(
        builder, AFFINE_MATRIX, final_shares, AFFINE_CONSTANT
    )
    output_shares = [
        builder.output_bus(share, f"s{i}")
        for i, share in enumerate(affine_shares)
    ]

    netlist = builder.build()
    dut = DesignUnderTest(
        netlist=netlist,
        share_buses=shares,
        mask_bits=bus.fresh_input_nets,
        nonzero_byte_buses=[r1_bus, r2_bus],
        uniform_byte_buses=[rp0_bus, rp1_bus],
        latency=SBOX2_LATENCY,
        output_share_buses=output_shares,
        metadata={
            "scheme": scheme.value,
            "design": "masked_sbox_second_order",
        },
    )
    return MaskedSbox2Design(
        dut=dut, scheme=scheme, output_shares=output_shares
    )
