"""The masked Kronecker delta function (paper Fig. 1b and Fig. 3).

Computes ``z = NOT(x0) & NOT(x1) & ... & NOT(x7)`` on a Boolean-shared input:
``z`` is 1 exactly when the unshared input byte is 0.  The AND tree has three
levels of DOM-AND gates:

* layer 1: G1..G4 on the complemented input bit pairs, masks r1..r4,
  producing y0..y3;
* layer 2: G5 (y0&y1 -> w0), G6 (y2&y3 -> w1), masks r5, r6;
* layer 3: G7 (w0&w1 -> z), mask r7.

Every DOM gate registers both its inner-domain and blinded cross-domain
products (Fig. 3), so the function is a 3-stage pipeline.  The mask wiring is
a :class:`repro.core.optimizations.RandomnessScheme` (first order) or
:class:`SecondOrderScheme` (three shares).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import MaskingError
from repro.core.optimizations import (
    FIRST_LAYER,
    RandomnessScheme,
    SecondOrderScheme,
)
from repro.leakage.dut import DesignUnderTest
from repro.masking.dom import dom_and
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder

#: Kronecker tree latency in clock cycles (one per DOM layer).
KRONECKER_LATENCY = 3

Scheme = Union[RandomnessScheme, SecondOrderScheme]


@dataclass
class KroneckerDesign:
    """A built Kronecker delta with its evaluation protocol and anchors."""

    dut: DesignUnderTest
    scheme: Scheme
    order: int
    #: output share nets of the single-bit result z.
    z_shares: List[int]
    #: the G7 product nodes the paper marks v1..v4 (first order only).
    v_nodes: Dict[str, int]
    #: share nets of the intermediate tree signals (y0..y3, w0, w1).
    intermediates: Dict[str, List[int]]

    @property
    def netlist(self):
        """The underlying netlist."""
        return self.dut.netlist

    @property
    def fresh_mask_bits(self) -> int:
        """Fresh random bits consumed per cycle."""
        return self.dut.n_fresh_mask_bits


def _pair_masks(order: int, gate_wiring, gate: int) -> Dict:
    """Mask dict for one gate, for either sharing order."""
    if order == 1:
        return {(0, 1): gate_wiring[gate]}
    return gate_wiring[gate]


def kronecker_tree(
    builder: CircuitBuilder,
    share_buses: List[List[int]],
    wiring,
    order: int,
    registered: bool = True,
) -> Dict[str, object]:
    """Instantiate the DOM-AND tree of the Kronecker delta on a builder.

    ``share_buses`` are the 8-bit Boolean-share buses of the input byte;
    ``wiring`` is the gate->mask mapping produced by a scheme's ``wire``.
    Returns the output shares, intermediate shares and (for first order) the
    G7 product anchors v1..v4.  Used standalone and inside the full masked
    S-box (Fig. 1a places the delta before the masking conversion).
    """
    n_shares = order + 1

    # Complement the input by inverting share 0 only.
    complemented = [list(b) for b in share_buses]
    complemented[0] = builder.not_bus(complemented[0])

    def bit_shares(bit: int) -> List[int]:
        return [complemented[s][bit] for s in range(n_shares)]

    layer1: List[List[int]] = []
    for gate in FIRST_LAYER:
        low_bit = 2 * (gate - 1)
        layer1.append(
            dom_and(
                builder,
                bit_shares(low_bit),
                bit_shares(low_bit + 1),
                _pair_masks(order, wiring, gate),
                f"g{gate}",
                register_inner=registered,
                register_cross=registered,
            )
        )
    y0, y1, y2, y3 = layer1

    w0 = dom_and(
        builder, y0, y1, _pair_masks(order, wiring, 5), "g5",
        register_inner=registered, register_cross=registered,
    )
    w1 = dom_and(
        builder, y2, y3, _pair_masks(order, wiring, 6), "g6",
        register_inner=registered, register_cross=registered,
    )
    z = dom_and(
        builder, w0, w1, _pair_masks(order, wiring, 7), "g7",
        register_inner=registered, register_cross=registered,
    )
    return {
        "z": z,
        "intermediates": {
            "y0": y0,
            "y1": y1,
            "y2": y2,
            "y3": y3,
            "w0": w0,
            "w1": w1,
        },
    }


def build_kronecker_delta(
    scheme: Optional[Scheme] = None, order: int = 1, registered: bool = True
) -> KroneckerDesign:
    """Build the masked Kronecker delta function netlist.

    ``order`` is the masking order: 1 gives the 2-share design of Fig. 3,
    2 gives the 3-share design the paper evaluates in its final experiment.
    ``registered=False`` strips the DOM-internal registers (a purely
    combinational tree) -- deliberately glitch-insecure, for the E12
    ablation showing why the registers are load-bearing.
    """
    if order == 1:
        scheme = scheme or RandomnessScheme.FULL
        if not isinstance(scheme, RandomnessScheme):
            raise MaskingError("first-order design needs a RandomnessScheme")
    elif order == 2:
        scheme = scheme or SecondOrderScheme.FULL_21
        if not isinstance(scheme, SecondOrderScheme):
            raise MaskingError("second-order design needs a SecondOrderScheme")
    else:
        raise MaskingError("supported masking orders are 1 and 2")
    n_shares = order + 1

    builder = CircuitBuilder(f"kronecker_o{order}_{scheme.value}")
    share_buses = [builder.input_bus(f"x{s}", 8) for s in range(n_shares)]

    bus = MaskBus(builder)
    wiring = scheme.wire(bus)
    tree = kronecker_tree(builder, share_buses, wiring, order, registered)
    z_shares = builder.output_bus(tree["z"], "z")

    netlist = builder.build()

    v_nodes: Dict[str, int] = {}
    if order == 1:
        # The paper's probe anchors: the four product nodes inside G7.
        v_nodes = {
            "v1": netlist.net("g7.inner0"),
            "v2": netlist.net("g7.cross01"),
            "v3": netlist.net("g7.cross10"),
            "v4": netlist.net("g7.inner1"),
        }

    dut = DesignUnderTest(
        netlist=netlist,
        share_buses=share_buses,
        mask_bits=bus.fresh_input_nets,
        latency=KRONECKER_LATENCY if registered else 0,
        output_share_buses=[[n] for n in z_shares],
        metadata={
            "scheme": scheme.value,
            "order": order,
            "design": "kronecker_delta",
        },
    )
    return KroneckerDesign(
        dut=dut,
        scheme=scheme,
        order=order,
        z_shares=z_shares,
        v_nodes=v_nodes,
        intermediates=tree["intermediates"],
    )


def kronecker_reference(value: int) -> int:
    """The unmasked Kronecker delta: 1 iff the byte is zero."""
    return 1 if (value & 0xFF) == 0 else 0
