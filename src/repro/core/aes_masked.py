"""Value-level masked AES-128 using multiplicative S-box masking.

This is the algorithmic (share-semantics) counterpart of the hardware
designs: the state and round keys are Boolean-shared at any masking order;
linear layers act share-wise; SubBytes runs the multiplicative-masking
algorithm of the paper's Fig. 2 (Kronecker zero-mapping, B->M conversion,
local inversion of one residue, M->B conversion, affine transform),
generalized to ``d`` multiplicative mask bytes at order ``d`` exactly as in
the hardware pipelines of :mod:`repro.core.sbox` and
:mod:`repro.core.sbox2`.  Checked against FIPS-197 end to end.

The hardware netlist of the S-box lives in :mod:`repro.core.sbox`; this
module computes with integers and the same equations, so the two are
cross-checked in the test suite.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.aes.cipher import (
    BLOCK_BYTES,
    N_ROUNDS,
    inv_mix_columns,
    inv_shift_rows,
    key_expansion,
    mix_columns,
    shift_rows,
)
from repro.aes.sbox import AFFINE_CONSTANT, AFFINE_MATRIX
from repro.errors import MaskingError
from repro.gf.gf2 import gf2_matrix_inverse, gf2_matrix_vector
from repro.gf.gf256 import GF256
from repro.masking.shares import BooleanSharing

_INV_AFFINE_MATRIX = gf2_matrix_inverse(AFFINE_MATRIX)


def _kronecker_sharing(
    sharing: BooleanSharing, rng: random.Random
) -> BooleanSharing:
    """Boolean-shared Kronecker delta of a shared byte (z = 1 iff X == 0).

    The hardware computes this with the DOM-AND tree; at value level the
    result is an equivalent fresh sharing of the same bit.
    """
    z = 1 if sharing.value == 0 else 0
    return BooleanSharing.share(z, len(sharing.shares), rng, width=1)


def _masked_inversion(
    sharing: BooleanSharing, rng: random.Random
) -> BooleanSharing:
    """Shared GF(2^8) inversion of a *non-zero* shared value, any order.

    Mirrors the hardware pipelines: multiply the Boolean shares by ``d``
    non-zero mask bytes (so the recombined intermediate is multiplicatively
    masked ``d`` times), invert the single residue locally, convert back to
    ``d+1`` Boolean shares while still under the last multiplicative mask,
    then peel the masks share-wise.
    """
    n_shares = len(sharing.shares)
    order = n_shares - 1
    masks = [rng.randrange(1, 256) for _ in range(order)]

    shares = list(sharing.shares)
    for mask in masks:
        shares = [GF256.multiply(s, mask) for s in shares]
    residue = 0
    for s in shares:
        residue ^= s  # = X * R1 * ... * Rd, multiplicatively masked
    inverse_residue = GF256.inverse(residue)

    # Convert back to n_shares Boolean shares under the last mask.
    fresh = [rng.randrange(256) for _ in range(order)]
    blinded = inverse_residue
    for f in fresh:
        blinded ^= f
    out = [GF256.multiply(f, masks[-1]) for f in fresh]
    out.append(GF256.multiply(blinded, masks[-1]))
    # Peel the remaining masks share-wise (their product equals X^-1 * ...).
    for mask in reversed(masks[:-1]):
        out = [GF256.multiply(s, mask) for s in out]
    return BooleanSharing(tuple(out))


def masked_sbox_value(
    sharing: BooleanSharing, rng: Optional[random.Random] = None
) -> BooleanSharing:
    """Masked S-box on a Boolean sharing of any order (paper Fig. 2).

    First order follows Section II-C literally; higher orders use the
    generalized conversion chain of :mod:`repro.core.sbox2`.
    """
    rng = rng or random.Random()

    # Kronecker delta and zero-mapping: X <- X xor z.
    z = _kronecker_sharing(sharing, rng)
    mapped = BooleanSharing(
        tuple(b ^ zb for b, zb in zip(sharing.shares, z.shares))
    )

    inverted = _masked_inversion(mapped, rng)

    # Undo the zero-mapping and apply the affine transformation.
    shares = [b ^ zb for b, zb in zip(inverted.shares, z.shares)]
    out = [gf2_matrix_vector(AFFINE_MATRIX, b) for b in shares]
    out[0] ^= AFFINE_CONSTANT
    return BooleanSharing(tuple(out))


def masked_inv_sbox_value(
    sharing: BooleanSharing, rng: Optional[random.Random] = None
) -> BooleanSharing:
    """Masked inverse S-box: undo the affine map, then the same inversion."""
    rng = rng or random.Random()
    shares = list(sharing.shares)
    shares[0] ^= AFFINE_CONSTANT
    linear = BooleanSharing(
        tuple(gf2_matrix_vector(_INV_AFFINE_MATRIX, b) for b in shares)
    )

    z = _kronecker_sharing(linear, rng)
    mapped = BooleanSharing(
        tuple(b ^ zb for b, zb in zip(linear.shares, z.shares))
    )
    inverted = _masked_inversion(mapped, rng)
    return BooleanSharing(
        tuple(b ^ zb for b, zb in zip(inverted.shares, z.shares))
    )


class MaskedAes128:
    """Masked AES-128 encryption/decryption at value level, any order.

    ``order`` is the masking order (``order + 1`` Boolean shares
    throughout); the S-box inversion uses ``order`` multiplicative mask
    bytes, mirroring the first- and second-order hardware designs.
    """

    def __init__(
        self,
        key: bytes,
        rng: Optional[random.Random] = None,
        order: int = 1,
    ):
        if order < 1:
            raise MaskingError("masking order must be at least 1")
        self.rng = rng or random.Random()
        self.n_shares = order + 1
        # The key schedule itself runs masked: round keys are shared bytes.
        self.round_key_shares: List[List[BooleanSharing]] = [
            [
                BooleanSharing.share(b, self.n_shares, self.rng)
                for b in round_key
            ]
            for round_key in key_expansion(key)
        ]

    # ----------------------------------------------------------- primitives

    def _add_round_key(
        self, state: List[BooleanSharing], round_index: int
    ) -> List[BooleanSharing]:
        return [
            s.xor(k)
            for s, k in zip(state, self.round_key_shares[round_index])
        ]

    @staticmethod
    def _linear_per_share(state: List[BooleanSharing], func) -> List[BooleanSharing]:
        """Apply a linear byte-vector function to each share plane."""
        n_shares = len(state[0].shares)
        planes = [
            func([sharing.shares[s] for sharing in state])
            for s in range(n_shares)
        ]
        return [
            BooleanSharing(tuple(planes[s][i] for s in range(n_shares)))
            for i in range(len(state))
        ]

    def _sub_bytes(self, state: List[BooleanSharing]) -> List[BooleanSharing]:
        return [masked_sbox_value(sharing, self.rng) for sharing in state]

    # ----------------------------------------------------------- encryption

    def encrypt_shared(
        self, plaintext_shares: List[BooleanSharing]
    ) -> List[BooleanSharing]:
        """Encrypt a shared 16-byte block, returning shared ciphertext."""
        if len(plaintext_shares) != BLOCK_BYTES:
            raise MaskingError("state must be 16 shared bytes")
        state = self._add_round_key(plaintext_shares, 0)
        for round_index in range(1, N_ROUNDS):
            state = self._sub_bytes(state)
            state = self._linear_per_share(state, shift_rows)
            state = self._linear_per_share(state, mix_columns)
            state = self._add_round_key(state, round_index)
        state = self._sub_bytes(state)
        state = self._linear_per_share(state, shift_rows)
        state = self._add_round_key(state, N_ROUNDS)
        return state

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Share a plaintext block, encrypt masked, recombine the result."""
        shares = [
            BooleanSharing.share(b, self.n_shares, self.rng)
            for b in plaintext
        ]
        return bytes(s.value for s in self.encrypt_shared(shares))

    # ----------------------------------------------------------- decryption

    def _inv_sub_bytes(
        self, state: List[BooleanSharing]
    ) -> List[BooleanSharing]:
        return [masked_inv_sbox_value(sharing, self.rng) for sharing in state]

    def decrypt_shared(
        self, ciphertext_shares: List[BooleanSharing]
    ) -> List[BooleanSharing]:
        """Decrypt a shared 16-byte block, returning shared plaintext.

        Uses the same multiplicative-masking inversion inside the inverse
        S-box (undo the affine map, then the Kronecker-protected local
        inversion).
        """
        if len(ciphertext_shares) != BLOCK_BYTES:
            raise MaskingError("state must be 16 shared bytes")
        state = self._add_round_key(ciphertext_shares, N_ROUNDS)
        for round_index in range(N_ROUNDS - 1, 0, -1):
            state = self._linear_per_share(state, inv_shift_rows)
            state = self._inv_sub_bytes(state)
            state = self._add_round_key(state, round_index)
            state = self._linear_per_share(state, inv_mix_columns)
        state = self._linear_per_share(state, inv_shift_rows)
        state = self._inv_sub_bytes(state)
        state = self._add_round_key(state, 0)
        return state

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Share a ciphertext block, decrypt masked, recombine the result."""
        shares = [
            BooleanSharing.share(b, self.n_shares, self.rng)
            for b in ciphertext
        ]
        return bytes(s.value for s in self.decrypt_shared(shares))
