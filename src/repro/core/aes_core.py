"""A complete first-order masked AES-128 encryption core at gate level.

De Meyer et al. presented "the first masked hardware implementation of the
AES encryption function using multiplicative masking"; this module builds
the equivalent datapath on our netlist IR:

* a 2-share, 128-bit state register bank;
* sixteen instances of the Fig. 2 masked S-box pipeline (5 cycles);
* share-wise ShiftRows (wiring) and MixColumns (a GF(2)-linear network);
* a shared round-key port (the key schedule runs externally, as in many
  masked cores; round keys arrive Boolean-shared);
* public control inputs ``load``, ``capture`` and ``last`` driven by the
  (unmasked) round sequencer -- control logic carries no secrets.

One round takes ``SBOX_LATENCY + 1`` cycles: the state feeds the S-box
pipelines for 5 cycles, then ``capture`` latches
``MixColumns(ShiftRows(SubBytes(state))) xor round_key`` (``last`` skips
MixColumns).  A full encryption is 1 load cycle + 10 rounds x 6 cycles.

The :class:`AesCoreHarness` drives the protocol on the scalar simulator (for
functional verification against FIPS-197) and on the bitsliced simulator
(for the reduced-size full-core leakage experiment, E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aes.cipher import key_expansion
from repro.core.optimizations import RandomnessScheme
from repro.core.sbox import SBOX_LATENCY, masked_sbox_datapath
from repro.gf.gf256 import gf256_multiply
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder
from repro.netlist.cells import CellType
from repro.netlist.core import Netlist
from repro.netlist.simulate import ScalarSimulator

#: Cycles per AES round: the S-box pipeline depth plus the capture cycle.
ROUND_CYCLES = SBOX_LATENCY + 1

#: Total cycles for one encryption: load, ten rounds, and one flush cycle
#: during which the final state becomes visible at the register outputs.
ENCRYPTION_CYCLES = 1 + 10 * ROUND_CYCLES + 1


def _mix_columns_matrix() -> Tuple[int, ...]:
    """32x32 GF(2) matrix of MixColumns on one column (LSB-first bytes)."""
    coefficients = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
    rows: List[int] = []
    for out_byte in range(4):
        for out_bit in range(8):
            row = 0
            for in_byte in range(4):
                multiplier = coefficients[out_byte][in_byte]
                for in_bit in range(8):
                    image = gf256_multiply(multiplier, 1 << in_bit)
                    if (image >> out_bit) & 1:
                        row |= 1 << (8 * in_byte + in_bit)
            rows.append(row)
    return tuple(rows)


MIX_COLUMNS_MATRIX = _mix_columns_matrix()

#: ShiftRows as a byte permutation: output position -> input position
#: (column-major state as in FIPS-197).
SHIFT_ROWS_PERMUTATION = tuple(
    4 * ((col + row) % 4) + row for col in range(4) for row in range(4)
)


@dataclass
class MaskedAesCore:
    """The built core: netlist plus port map."""

    netlist: Netlist
    scheme: RandomnessScheme
    #: plaintext share buses [share][bit] (128 bits each).
    plaintext_shares: List[List[int]]
    #: round-key share buses [share][bit].  With the internal key schedule
    #: these carry the *cipher key* (sampled at ``load``); otherwise the
    #: sequencer presents each round key here.
    round_key_shares: List[List[int]]
    #: control inputs.
    load: int
    capture: int
    last: int
    #: fresh mask bit inputs (Kronecker schemes of all S-box instances).
    mask_bits: List[int]
    #: per-S-box non-zero mask byte buses (R).
    r_buses: List[List[int]]
    #: per-S-box uniform mask byte buses (R').
    r_prime_buses: List[List[int]]
    #: state register outputs [share][bit].
    state_shares: List[List[int]]
    #: True when the round keys are produced by the internal key schedule.
    own_key_schedule: bool = False
    #: the public Rcon byte input (internal key schedule only).
    rcon_bus: Optional[List[int]] = None

    @property
    def fresh_mask_bits_per_cycle(self) -> int:
        """Single-bit fresh randomness per cycle (excluding R/R' bytes)."""
        return len(self.mask_bits)


def build_masked_aes_core(
    scheme: RandomnessScheme = RandomnessScheme.TRANSITION_R7_EQ_R1,
    own_key_schedule: bool = False,
) -> MaskedAesCore:
    """Build the full masked AES-128 encryption core.

    With ``own_key_schedule`` the core derives round keys on the fly from
    the shared cipher key presented at ``load``: a 128-bit shared key
    register, RotWord wiring, four more masked S-box pipelines (SubWord),
    the public Rcon byte XORed into share 0, and the chained word XORs --
    all share-wise.  The sequencer then only drives ``rcon`` per round
    instead of full round keys.
    """
    suffix = "_ks" if own_key_schedule else ""
    builder = CircuitBuilder(f"masked_aes_core_{scheme.value}{suffix}")

    pt_shares = [builder.input_bus(f"pt{s}", 128) for s in range(2)]
    key_shares = [builder.input_bus(f"rk{s}", 128) for s in range(2)]
    load = builder.input("ctl.load")
    capture = builder.input("ctl.capture")
    last = builder.input("ctl.last")
    rcon_bus = builder.input_bus("rcon", 8) if own_key_schedule else None

    # State registers with feedback: create the output nets first.
    netlist = builder.netlist
    state_shares = [
        [netlist.add_net(f"state{s}[{b}]") for b in range(128)]
        for s in range(2)
    ]

    # --- SubBytes: 16 masked S-box pipelines -------------------------------
    mask_buses: List[MaskBus] = []
    r_buses: List[List[int]] = []
    r_prime_buses: List[List[int]] = []
    sbox_outputs: List[List[List[int]]] = []  # [byte][share][bit]
    for byte in range(16):
        bus = MaskBus(builder, prefix=f"rand.sb{byte}")
        r_bus = builder.input_bus(f"R{byte}", 8)
        r_prime_bus = builder.input_bus(f"Rp{byte}", 8)
        mask_buses.append(bus)
        r_buses.append(r_bus)
        r_prime_buses.append(r_prime_bus)
        b0 = state_shares[0][8 * byte : 8 * byte + 8]
        b1 = state_shares[1][8 * byte : 8 * byte + 8]
        with builder.scope(f"sb{byte}"):
            sbox_outputs.append(
                masked_sbox_datapath(
                    builder, b0, b1, bus, r_bus, r_prime_bus, scheme
                )
            )

    # --- optional on-the-fly masked key schedule ----------------------------
    if own_key_schedule:
        key_state = [
            [netlist.add_net(f"kstate{s}[{b}]") for b in range(128)]
            for s in range(2)
        ]
        # SubWord on RotWord(w3): bytes 13, 14, 15, 12 of the key state.
        subword: List[List[List[int]]] = []  # [word_byte][share][bit]
        for j, source_byte in enumerate((13, 14, 15, 12)):
            bus = MaskBus(builder, prefix=f"rand.ks{j}")
            r_bus = builder.input_bus(f"ksR{j}", 8)
            r_prime_bus = builder.input_bus(f"ksRp{j}", 8)
            mask_buses.append(bus)
            r_buses.append(r_bus)
            r_prime_buses.append(r_prime_bus)
            k0 = key_state[0][8 * source_byte : 8 * source_byte + 8]
            k1 = key_state[1][8 * source_byte : 8 * source_byte + 8]
            with builder.scope(f"ks{j}"):
                subword.append(
                    masked_sbox_datapath(
                        builder, k0, k1, bus, r_bus, r_prime_bus, scheme
                    )
                )
        # t = SubWord(RotWord(w3)) xor Rcon (Rcon is public: share 0 only).
        next_key: List[List[int]] = [[None] * 128 for _ in range(2)]
        for share in range(2):
            t_bits: List[int] = []
            for j in range(4):
                bits = list(subword[j][share])
                if j == 0 and share == 0:
                    bits = [
                        builder.xor(bit, rcon_bus[i])
                        for i, bit in enumerate(bits)
                    ]
                t_bits.extend(bits)
            previous = t_bits
            for word in range(4):
                current = [
                    builder.xor(
                        key_state[share][32 * word + i], previous[i]
                    )
                    for i in range(32)
                ]
                for i in range(32):
                    next_key[share][32 * word + i] = current[i]
                previous = current
        # Key-state registers with the same load/capture protocol.
        for share in range(2):
            for bit in range(128):
                held = key_state[share][bit]
                advanced = builder.mux(capture, held, next_key[share][bit])
                loaded = builder.mux(load, advanced, key_shares[share][bit])
                netlist.add_cell(
                    CellType.DFF,
                    (loaded,),
                    key_state[share][bit],
                    f"kstate{share}[{bit}]$dff",
                )
        # The round key consumed by AddRoundKey: the cipher key at load,
        # the freshly derived key during round captures.
        effective_key = [
            [
                builder.mux(
                    load,
                    next_key[share][bit],
                    key_shares[share][bit],
                )
                for bit in range(128)
            ]
            for share in range(2)
        ]
    else:
        effective_key = key_shares

    # --- ShiftRows + MixColumns, share-wise --------------------------------
    round_shares: List[List[int]] = []
    for share in range(2):
        sub_bytes = []
        for byte in range(16):
            sub_bytes.extend(sbox_outputs[byte][share])
        shifted = []
        for out_pos in range(16):
            in_pos = SHIFT_ROWS_PERMUTATION[out_pos]
            shifted.extend(sub_bytes[8 * in_pos : 8 * in_pos + 8])
        mixed: List[int] = []
        with builder.scope(f"mix.s{share}"):
            for col in range(4):
                column = shifted[32 * col : 32 * col + 32]
                mixed.extend(
                    builder.gf2_linear(MIX_COLUMNS_MATRIX, column)
                )
        # The last round skips MixColumns.
        selected = [
            builder.mux(last, mixed[bit], shifted[bit])
            for bit in range(128)
        ]
        round_shares.append(selected)

    # --- AddRoundKey and the state update ----------------------------------
    for share in range(2):
        for bit in range(128):
            keyed = builder.xor(
                round_shares[share][bit], effective_key[share][bit]
            )
            initial = builder.xor(
                pt_shares[share][bit], key_shares[share][bit]
            )
            held = state_shares[share][bit]
            advanced = builder.mux(capture, held, keyed)
            next_state = builder.mux(load, advanced, initial)
            # A register with synchronous load/capture multiplexing.
            netlist.add_cell(
                CellType.DFF,
                (next_state,),
                state_shares[share][bit],
                f"state{share}[{bit}]$dff",
            )

    for share in range(2):
        builder.output_bus(state_shares[share], f"ct{share}")

    mask_bits: List[int] = []
    for bus in mask_buses:
        mask_bits.extend(bus.fresh_input_nets)

    return MaskedAesCore(
        netlist=builder.build(),
        scheme=scheme,
        plaintext_shares=pt_shares,
        round_key_shares=key_shares,
        load=load,
        capture=capture,
        last=last,
        mask_bits=mask_bits,
        r_buses=r_buses,
        r_prime_buses=r_prime_buses,
        state_shares=state_shares,
        own_key_schedule=own_key_schedule,
        rcon_bus=rcon_bus,
    )


class AesCoreHarness:
    """Drives the encryption protocol on a built core."""

    def __init__(self, core: MaskedAesCore):
        self.core = core

    # ------------------------------------------------------------ schedules

    def control_schedule(self) -> List[Dict[str, int]]:
        """Per-cycle values of (load, capture, last) for one encryption."""
        schedule = [{"load": 1, "capture": 0, "last": 0}]
        for round_index in range(1, 11):
            for phase in range(ROUND_CYCLES):
                schedule.append(
                    {
                        "load": 0,
                        "capture": 1 if phase == ROUND_CYCLES - 1 else 0,
                        "last": 1 if round_index == 10 else 0,
                    }
                )
        # Flush cycle: the ciphertext appears at the register outputs.
        schedule.append({"load": 0, "capture": 0, "last": 0})
        return schedule

    def round_key_schedule(self, key: bytes) -> List[List[int]]:
        """Round key (16 bytes) to present at each cycle.

        With the internal key schedule the cipher key is presented at every
        cycle instead (only the ``load`` cycle samples it).
        """
        if self.core.own_key_schedule:
            return [list(key)] * ENCRYPTION_CYCLES
        round_keys = key_expansion(key)
        schedule = [round_keys[0]]
        for round_index in range(1, 11):
            schedule.extend([round_keys[round_index]] * ROUND_CYCLES)
        schedule.append(round_keys[10])  # don't-care flush value
        return schedule

    def rcon_schedule(self) -> List[int]:
        """Public Rcon byte to present at each cycle (internal schedule)."""
        from repro.aes.cipher import _RCON

        schedule = [0]
        for round_index in range(1, 11):
            schedule.extend([_RCON[round_index - 1]] * ROUND_CYCLES)
        schedule.append(0)
        return schedule

    def control_net_schedule(self) -> Dict[int, List[int]]:
        """Per-cycle scalar values of the control inputs, keyed by net.

        One period (``ENCRYPTION_CYCLES`` entries per net), in the form
        the cone slicer consumes: handing this to
        :class:`repro.leakage.periodic.PeriodicLeakageEvaluator` as its
        ``control_schedule`` lets it cut the state-register recirculation
        at the load/capture muxes and simulate only the per-cycle cone of
        the probes (see :func:`repro.netlist.slice.scheduled_cone`).
        """
        core = self.core
        controls = self.control_schedule()
        schedule = {
            core.load: [c["load"] for c in controls],
            core.capture: [c["capture"] for c in controls],
            core.last: [c["last"] for c in controls],
        }
        if core.own_key_schedule:
            rcons = self.rcon_schedule()
            for i, net in enumerate(core.rcon_bus):
                schedule[net] = [(r >> i) & 1 for r in rcons]
        return schedule

    # --------------------------------------------------------------- scalar

    def encrypt(self, plaintext: bytes, key: bytes, rng) -> bytes:
        """Run one masked encryption on the scalar simulator."""
        core = self.core
        controls = self.control_schedule()
        keys = self.round_key_schedule(key)
        rcons = self.rcon_schedule() if core.own_key_schedule else None
        sim = ScalarSimulator(core.netlist)
        values = None
        for cycle, control in enumerate(controls):
            assignment = {
                core.load: control["load"],
                core.capture: control["capture"],
                core.last: control["last"],
            }
            if rcons is not None:
                self._assign_byte(assignment, core.rcon_bus, rcons[cycle])
            self._assign_shared_block(
                assignment, core.plaintext_shares, plaintext, rng
            )
            self._assign_shared_block(
                assignment, core.round_key_shares, bytes(keys[cycle]), rng
            )
            for net in core.mask_bits:
                assignment[net] = rng.randrange(2)
            for r_bus in core.r_buses:
                self._assign_byte(assignment, r_bus, rng.randrange(1, 256))
            for rp_bus in core.r_prime_buses:
                self._assign_byte(assignment, rp_bus, rng.randrange(256))
            values = sim.step(assignment)
        out = bytearray(16)
        for byte in range(16):
            for bit in range(8):
                b = 0
                for share in range(2):
                    b ^= values[core.state_shares[share][8 * byte + bit]]
                out[byte] |= b << bit
        return bytes(out)

    @staticmethod
    def _assign_byte(assignment, bus, value) -> None:
        for i, net in enumerate(bus):
            assignment[net] = (value >> i) & 1

    @staticmethod
    def _assign_shared_block(assignment, share_buses, block, rng) -> None:
        for byte_index, byte_value in enumerate(block):
            mask = rng.randrange(256)
            for bit in range(8):
                position = 8 * byte_index + bit
                assignment[share_buses[0][position]] = (mask >> bit) & 1
                assignment[share_buses[1][position]] = (
                    (mask ^ byte_value) >> bit
                ) & 1

    # ------------------------------------------------------------ bitsliced

    def bitsliced_stimulus(
        self,
        rng: np.random.Generator,
        n_words: int,
        key: bytes,
        fixed_plaintext: Optional[bytes],
    ):
        """Stimulus plan for the bitsliced simulator.

        Every lane runs the same control/key schedule (public values); the
        plaintext is the fixed block or per-lane uniform random, re-shared
        with fresh randomness per lane; all masks are fresh per cycle.
        The schedule repeats, encrypting block after block.

        Returns a :class:`repro.leakage.stimplan.StimulusPlan` -- a
        ``stimulus(cycle)`` callable drawing from ``rng`` in the exact
        per-net order of the original closure (so seeded verdicts are
        unchanged) that the native engine can also execute in C.
        """
        from repro.leakage.stimplan import StimulusPlanBuilder

        core = self.core
        controls = self.control_schedule()
        keys = self.round_key_schedule(key)
        rcons = self.rcon_schedule() if core.own_key_schedule else None
        period = len(controls)
        builder = StimulusPlanBuilder(n_words, period=period)
        builder.const(
            builder.column([c["load"] for c in controls]), net=core.load
        )
        builder.const(
            builder.column([c["capture"] for c in controls]),
            net=core.capture,
        )
        builder.const(
            builder.column([c["last"] for c in controls]), net=core.last
        )
        if rcons is not None:
            for i, net in enumerate(core.rcon_bus):
                builder.const(
                    builder.column([(r >> i) & 1 for r in rcons]), net=net
                )
        # Op emission order is PCG64 stream order (the original per-net
        # draw order): key share masks, then plaintext masks/shares, then
        # mask bits, then the rejection-sampled r buses, then r'.
        for byte_index in range(16):
            for bit in range(8):
                position = 8 * byte_index + bit
                mask = builder.draw(net=core.round_key_shares[0][position])
                key_col = builder.column(
                    [(kb[byte_index] >> bit) & 1 for kb in keys]
                )
                builder.xor_const(
                    mask, key_col, net=core.round_key_shares[1][position]
                )
        for byte_index in range(16):
            for bit in range(8):
                position = 8 * byte_index + bit
                mask = builder.draw(net=core.plaintext_shares[0][position])
                if fixed_plaintext is None:
                    builder.draw(net=core.plaintext_shares[1][position])
                else:
                    pt_bit = (fixed_plaintext[byte_index] >> bit) & 1
                    builder.xor_const(
                        mask,
                        builder.column([pt_bit] * period),
                        net=core.plaintext_shares[1][position],
                    )
        for net in core.mask_bits:
            builder.draw(net=net)
        for r_bus in core.r_buses:
            builder.nonzero8(r_bus)
        for rp_bus in core.r_prime_buses:
            for net in rp_bus:
                builder.draw(net=net)
        return builder.build(rng)
