"""Masking conversions of the masked S-box (paper Section II-C).

Boolean -> multiplicative::

    P0 = [R],    P1 = [B0 (x) R] xor [B1 (x) R]        (R uniform non-zero)

so that ``X = (P0)^-1 (x) P1`` -- unless X is zero, which is why the
Kronecker delta must run first.

Multiplicative -> Boolean (after the local inversion produced Q0, Q1 with
``X^-1 = Q0 (x) Q1``)::

    B'0 = [R' (x) Q0],    B'1 = [R' xor Q1] (x) [Q0]   (R' uniform)

Square brackets are registers (one pipeline stage each, Fig. 2).  The final
multiplication of B'1 is combinational on register outputs and so belongs to
the following pipeline stage.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aes.gf_circuits import gf256_multiplier_circuit
from repro.netlist.builder import CircuitBuilder

Bus = List[int]


def boolean_to_multiplicative(
    builder: CircuitBuilder,
    b0: Sequence[int],
    b1: Sequence[int],
    r_bus: Sequence[int],
    name: str = "b2m",
) -> Tuple[Bus, Bus]:
    """Build the B->M conversion stage; returns registered ``(P0, P1)``.

    One cycle of latency: both partial products and the pass-through of R
    are registered; the recombining XOR of P1 is combinational after the
    registers (its glitch-extended probes therefore see the two product
    registers -- the exact structure analyzed in Section III's setting).
    """
    with builder.scope(name):
        p0 = builder.reg_bus(list(r_bus), "p0")
        product0 = gf256_multiplier_circuit(builder, b0, r_bus, "mul0")
        product1 = gf256_multiplier_circuit(builder, b1, r_bus, "mul1")
        reg0 = builder.reg_bus(product0, "m0")
        reg1 = builder.reg_bus(product1, "m1")
        p1 = builder.xor_bus(reg0, reg1)
    return p0, p1


def multiplicative_to_boolean(
    builder: CircuitBuilder,
    q0: Sequence[int],
    q1: Sequence[int],
    r_prime_bus: Sequence[int],
    name: str = "m2b",
) -> Tuple[Bus, Bus]:
    """Build the M->B conversion stage; returns ``(B'0, B'1)``.

    ``B'0`` is a register output; ``B'1`` is combinational logic on register
    outputs (available in the same cycle as ``B'0``).  One cycle of latency.
    """
    with builder.scope(name):
        product0 = gf256_multiplier_circuit(builder, r_prime_bus, q0, "mul0")
        b0 = builder.reg_bus(product0, "b0")
        masked_q1 = builder.xor_bus(list(r_prime_bus), list(q1))
        u = builder.reg_bus(masked_q1, "u")
        q0_delayed = builder.reg_bus(list(q0), "q0d")
        b1 = gf256_multiplier_circuit(builder, u, q0_delayed, "mul1")
    return b0, b1
