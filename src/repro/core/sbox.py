"""The first-order masked AES S-box of De Meyer et al. (paper Fig. 2).

Pipeline (5 cycles of latency, matching Section II-C):

=====  =============================================================
cycle  stage
=====  =============================================================
1-3    Kronecker delta on the Boolean-shared input (3 DOM layers);
       in parallel the input shares ride a 3-stage delay line
4      z is XORed into the delayed shares (mapping a zero input to
       1); Boolean -> multiplicative conversion, registered
5      local GF(2^8) inversion of share P1 (combinational) feeding
       the multiplicative -> Boolean conversion, registered
out    B'1 recombination multiply, z XORed back, affine transform
       (fully combinational)
=====  =============================================================

The Kronecker delta's fresh-mask wiring is a
:class:`repro.core.optimizations.RandomnessScheme`; the conversions consume
one non-zero mask byte R and one uniform mask byte R' per cycle.
``include_kronecker=False`` builds the S-box without the zero-mapping
(the configuration the paper evaluates with a non-zero fixed input; with a
zero input it exhibits the classic zero-value problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.aes.gf_circuits import gf256_inverter_circuit
from repro.aes.sbox import AFFINE_CONSTANT, AFFINE_MATRIX
from repro.core.conversions import (
    boolean_to_multiplicative,
    multiplicative_to_boolean,
)
from repro.core.kronecker import kronecker_tree
from repro.core.optimizations import RandomnessScheme
from repro.errors import MaskingError
from repro.leakage.dut import DesignUnderTest
from repro.masking.gadgets import sharewise_linear
from repro.masking.randomness import MaskBus
from repro.netlist.builder import CircuitBuilder

#: Latency of the masked S-box in clock cycles.
SBOX_LATENCY = 5


@dataclass
class MaskedSboxDesign:
    """A built masked S-box with its evaluation protocol and anchors."""

    dut: DesignUnderTest
    scheme: Optional[RandomnessScheme]
    include_kronecker: bool
    #: output share buses (LSB-first), valid ``SBOX_LATENCY`` cycles after
    #: the corresponding input.
    output_shares: List[List[int]]
    #: the G7 product anchors v1..v4 when the Kronecker delta is present.
    v_nodes: Dict[str, int]

    @property
    def netlist(self):
        """The underlying netlist."""
        return self.dut.netlist

    @property
    def latency(self) -> int:
        """Pipeline latency in cycles."""
        return self.dut.latency


def masked_sbox_datapath(
    builder: CircuitBuilder,
    b0: List[int],
    b1: List[int],
    bus: MaskBus,
    r_bus: List[int],
    r_prime_bus: List[int],
    scheme: Optional[RandomnessScheme],
    include_kronecker: bool = True,
) -> List[List[int]]:
    """Instantiate the Fig. 2 S-box pipeline on an existing builder.

    Returns the two output share buses (combinational, valid
    ``SBOX_LATENCY`` cycles after the input).  Used standalone by
    :func:`build_masked_sbox` and 16 times by the full AES core.
    """
    # --- cycles 1..3: Kronecker delta and the input delay line -------------
    if include_kronecker:
        wiring = scheme.wire(bus)
        tree = kronecker_tree(builder, [b0, b1], wiring, order=1)
        z_shares = tree["z"]
    else:
        z_shares = None

    delayed = [list(b0), list(b1)]
    for stage in range(3):
        delayed = [
            builder.reg_bus(bus_, f"delay{stage}.s{i}")
            for i, bus_ in enumerate(delayed)
        ]

    # --- cycle 4: map zero to one, then Boolean -> multiplicative ----------
    if include_kronecker:
        a_shares = []
        for i, share_bus in enumerate(delayed):
            mapped = list(share_bus)
            mapped[0] = builder.xor(mapped[0], z_shares[i], f"zmap.s{i}")
            a_shares.append(mapped)
    else:
        a_shares = delayed
    p0, p1 = boolean_to_multiplicative(
        builder, a_shares[0], a_shares[1], r_bus
    )

    # z rides two more register stages to meet the output.
    if include_kronecker:
        z_delayed = list(z_shares)
        for stage in range(2):
            z_delayed = [
                builder.reg(zi, f"zdelay{stage}.s{i}")
                for i, zi in enumerate(z_delayed)
            ]

    # --- cycle 5: local inversion of P1, multiplicative -> Boolean ---------
    q0 = p0
    q1 = gf256_inverter_circuit(builder, p1, "local_inv")
    b0_out, b1_out = multiplicative_to_boolean(builder, q0, q1, r_prime_bus)

    # --- output: undo the zero-mapping and apply the affine transform ------
    final_shares = [list(b0_out), list(b1_out)]
    if include_kronecker:
        for i in range(2):
            final_shares[i][0] = builder.xor(
                final_shares[i][0], z_delayed[i], f"zunmap.s{i}"
            )
    affine_shares = sharewise_linear(
        builder, AFFINE_MATRIX, final_shares, AFFINE_CONSTANT
    )
    return affine_shares


def build_masked_sbox(
    scheme: Optional[RandomnessScheme] = RandomnessScheme.FULL,
    include_kronecker: bool = True,
) -> MaskedSboxDesign:
    """Build the first-order masked AES S-box netlist of Fig. 2."""
    if include_kronecker and not isinstance(scheme, RandomnessScheme):
        raise MaskingError(
            "the Kronecker delta needs a first-order RandomnessScheme"
        )
    suffix = scheme.value if include_kronecker else "no_kronecker"
    builder = CircuitBuilder(f"masked_sbox_{suffix}")

    b0 = builder.input_bus("b0", 8)
    b1 = builder.input_bus("b1", 8)
    bus = MaskBus(builder)
    r_bus = builder.input_bus("R", 8)
    r_prime_bus = builder.input_bus("Rp", 8)

    affine_shares = masked_sbox_datapath(
        builder, b0, b1, bus, r_bus, r_prime_bus, scheme, include_kronecker
    )
    output_shares = [
        builder.output_bus(share, f"s{i}")
        for i, share in enumerate(affine_shares)
    ]

    netlist = builder.build()
    v_nodes: Dict[str, int] = {}
    if include_kronecker:
        v_nodes = {
            "v1": netlist.net("g7.inner0"),
            "v2": netlist.net("g7.cross01"),
            "v3": netlist.net("g7.cross10"),
            "v4": netlist.net("g7.inner1"),
        }

    dut = DesignUnderTest(
        netlist=netlist,
        share_buses=[b0, b1],
        mask_bits=bus.fresh_input_nets,
        nonzero_byte_buses=[r_bus],
        uniform_byte_buses=[r_prime_bus],
        latency=SBOX_LATENCY,
        output_share_buses=output_shares,
        metadata={
            "scheme": scheme.value if include_kronecker else None,
            "include_kronecker": include_kronecker,
            "design": "masked_sbox",
        },
    )
    return MaskedSboxDesign(
        dut=dut,
        scheme=scheme if include_kronecker else None,
        include_kronecker=include_kronecker,
        output_shares=output_shares,
        v_nodes=v_nodes,
    )
