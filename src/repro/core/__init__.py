"""The paper's subject designs.

* :mod:`repro.core.optimizations` -- every randomness-reuse scheme for the
  Kronecker delta's DOM-AND tree discussed in the paper (the flawed Eq. (6)
  of De Meyer et al., the paper's Eq. (9) fix, the transition-secure
  6-fresh-bit variants, and the second-order schemes).
* :mod:`repro.core.kronecker` -- the masked Kronecker delta function
  (Fig. 1b / Fig. 3) at first and second order.
* :mod:`repro.core.conversions` -- Boolean<->multiplicative masking
  conversions (Section II-C).
* :mod:`repro.core.sbox` -- the 5-stage pipelined masked AES S-box (Fig. 2).
* :mod:`repro.core.aes_masked` -- a value-level masked AES-128 built on the
  same algorithms, checked against FIPS-197.
"""

from repro.core.optimizations import (
    FIRST_ORDER_SCHEMES,
    RandomnessScheme,
    SecondOrderScheme,
    scheme_fresh_bits,
)
from repro.core.kronecker import KroneckerDesign, build_kronecker_delta
from repro.core.sbox import MaskedSboxDesign, build_masked_sbox
from repro.core.sbox2 import (
    MaskedSbox2Design,
    build_masked_sbox_second_order,
)
from repro.core.aes_masked import MaskedAes128, masked_sbox_value
from repro.core.aes_core import (
    AesCoreHarness,
    MaskedAesCore,
    build_masked_aes_core,
)

__all__ = [
    "MaskedAesCore",
    "AesCoreHarness",
    "build_masked_aes_core",
    "MaskedSbox2Design",
    "build_masked_sbox_second_order",
    "RandomnessScheme",
    "SecondOrderScheme",
    "FIRST_ORDER_SCHEMES",
    "scheme_fresh_bits",
    "KroneckerDesign",
    "build_kronecker_delta",
    "MaskedSboxDesign",
    "build_masked_sbox",
    "MaskedAes128",
    "masked_sbox_value",
]
