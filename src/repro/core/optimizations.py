"""Randomness-reuse schemes for the Kronecker delta's DOM-AND tree.

The first-order Kronecker delta (paper Fig. 1b / Fig. 3) contains seven
DOM-AND gates G1..G7 consuming mask bits r1..r7.  A *scheme* decides how
those seven mask ports are wired to fresh random input wires -- the paper's
whole story is that this wiring decides security:

* :attr:`RandomnessScheme.FULL` -- seven independent fresh bits; secure under
  both probing models (baseline).
* :attr:`RandomnessScheme.DEMEYER_EQ6` -- De Meyer et al.'s Eq. (6):
  ``r1=r3``, ``r2=r4``, ``r5`` fresh, ``r6=[r5 xor r2]`` (registered),
  ``r7=r1``; 3 fresh bits.  Shown leaky in the paper's Section III.
* :attr:`RandomnessScheme.FIRST_LAYER_R1R3` -- the minimal leaking case used
  in the root-cause analysis (only ``r1=r3`` reused).
* :attr:`RandomnessScheme.SECOND_LAYER_R5R6` -- the Section IV
  counter-example showing that ``r5=r6`` also leaks.
* :attr:`RandomnessScheme.PROPOSED_EQ9` -- the paper's Eq. (9) fix:
  ``r1..r4`` fresh, ``r5=r4``, ``r6=r2``, ``r7=r3``; 4 fresh bits, secure
  under the glitch-extended model but not under glitch+transitions.
* :attr:`RandomnessScheme.TRANSITION_R7_EQ_R1` .. ``_R4`` -- the four
  6-fresh-bit solutions secure under glitch+transitions (``r1..r6`` fresh,
  ``r7 = r_i``).

Second-order schemes cover the 3-share tree (3 masks per gate, 21 total) and
a 13-bit cross-layer reuse reconstruction of [12]'s optimization (the paper
reports the authors' 21 -> 13 scheme shows no leakage; the exact mapping is
not printed in the paper, so ours is a faithful-in-spirit reconstruction,
see DESIGN.md).
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.masking.randomness import MaskBus

#: Gate identifiers of the Kronecker tree, in the paper's numbering.
GATES = (1, 2, 3, 4, 5, 6, 7)
FIRST_LAYER = (1, 2, 3, 4)
SECOND_LAYER = (5, 6)
THIRD_LAYER = (7,)


class RandomnessScheme(enum.Enum):
    """First-order mask wiring schemes for the 7-gate Kronecker tree."""

    FULL = "full_7_fresh"
    DEMEYER_EQ6 = "demeyer_eq6_3_fresh"
    FIRST_LAYER_R1R3 = "first_layer_r1_eq_r3"
    SECOND_LAYER_R5R6 = "second_layer_r5_eq_r6"
    PROPOSED_EQ9 = "proposed_eq9_4_fresh"
    TRANSITION_R7_EQ_R1 = "transition_r7_eq_r1"
    TRANSITION_R7_EQ_R2 = "transition_r7_eq_r2"
    TRANSITION_R7_EQ_R3 = "transition_r7_eq_r3"
    TRANSITION_R7_EQ_R4 = "transition_r7_eq_r4"

    def wire(self, bus: MaskBus) -> Dict[int, int]:
        """Allocate mask nets on ``bus`` and return the gate->net wiring."""
        return _WIRING_BUILDERS[self](bus)

    @property
    def expected_glitch_secure(self) -> bool:
        """First-order security under the glitch-extended model (paper)."""
        return self in _GLITCH_SECURE

    @property
    def expected_transition_secure(self) -> bool:
        """Security under the glitch+transition-extended model (paper)."""
        return self in _TRANSITION_SECURE


def _wire_full(bus: MaskBus) -> Dict[int, int]:
    return {g: bus.fresh(f"r{g}") for g in GATES}


def _wire_demeyer_eq6(bus: MaskBus) -> Dict[int, int]:
    r1 = bus.fresh("r1")
    r2 = bus.fresh("r2")
    r5 = bus.fresh("r5")
    r6 = bus.derived_registered_xor("r6", r5, r2)
    return {1: r1, 2: r2, 3: r1, 4: r2, 5: r5, 6: r6, 7: r1}


def _wire_first_layer_r1r3(bus: MaskBus) -> Dict[int, int]:
    wiring = {g: bus.fresh(f"r{g}") for g in (1, 2, 4, 5, 6, 7)}
    wiring[3] = wiring[1]
    return wiring


def _wire_second_layer_r5r6(bus: MaskBus) -> Dict[int, int]:
    wiring = {g: bus.fresh(f"r{g}") for g in (1, 2, 3, 4, 5, 7)}
    wiring[6] = wiring[5]
    return wiring


def _wire_proposed_eq9(bus: MaskBus) -> Dict[int, int]:
    wiring = {g: bus.fresh(f"r{g}") for g in FIRST_LAYER}
    wiring[5] = wiring[4]
    wiring[6] = wiring[2]
    wiring[7] = wiring[3]
    return wiring


def _wire_transition(reused_gate: int):
    def wire(bus: MaskBus) -> Dict[int, int]:
        wiring = {g: bus.fresh(f"r{g}") for g in (1, 2, 3, 4, 5, 6)}
        wiring[7] = wiring[reused_gate]
        return wiring

    return wire


_WIRING_BUILDERS = {
    RandomnessScheme.FULL: _wire_full,
    RandomnessScheme.DEMEYER_EQ6: _wire_demeyer_eq6,
    RandomnessScheme.FIRST_LAYER_R1R3: _wire_first_layer_r1r3,
    RandomnessScheme.SECOND_LAYER_R5R6: _wire_second_layer_r5r6,
    RandomnessScheme.PROPOSED_EQ9: _wire_proposed_eq9,
    RandomnessScheme.TRANSITION_R7_EQ_R1: _wire_transition(1),
    RandomnessScheme.TRANSITION_R7_EQ_R2: _wire_transition(2),
    RandomnessScheme.TRANSITION_R7_EQ_R3: _wire_transition(3),
    RandomnessScheme.TRANSITION_R7_EQ_R4: _wire_transition(4),
}

_GLITCH_SECURE = frozenset(
    {
        RandomnessScheme.FULL,
        RandomnessScheme.PROPOSED_EQ9,
        RandomnessScheme.TRANSITION_R7_EQ_R1,
        RandomnessScheme.TRANSITION_R7_EQ_R2,
        RandomnessScheme.TRANSITION_R7_EQ_R3,
        RandomnessScheme.TRANSITION_R7_EQ_R4,
    }
)

_TRANSITION_SECURE = frozenset(
    {
        RandomnessScheme.FULL,
        RandomnessScheme.TRANSITION_R7_EQ_R1,
        RandomnessScheme.TRANSITION_R7_EQ_R2,
        RandomnessScheme.TRANSITION_R7_EQ_R3,
        RandomnessScheme.TRANSITION_R7_EQ_R4,
    }
)

#: Fresh-bit cost of each first-order scheme (paper Table of Section II/IV).
_FRESH_BITS = {
    RandomnessScheme.FULL: 7,
    RandomnessScheme.DEMEYER_EQ6: 3,
    RandomnessScheme.FIRST_LAYER_R1R3: 6,
    RandomnessScheme.SECOND_LAYER_R5R6: 6,
    RandomnessScheme.PROPOSED_EQ9: 4,
    RandomnessScheme.TRANSITION_R7_EQ_R1: 6,
    RandomnessScheme.TRANSITION_R7_EQ_R2: 6,
    RandomnessScheme.TRANSITION_R7_EQ_R3: 6,
    RandomnessScheme.TRANSITION_R7_EQ_R4: 6,
}


def scheme_fresh_bits(scheme: "RandomnessScheme") -> int:
    """Fresh random bits per cycle the scheme consumes."""
    return _FRESH_BITS[scheme]


#: All first-order schemes in a stable presentation order.
FIRST_ORDER_SCHEMES: Tuple[RandomnessScheme, ...] = (
    RandomnessScheme.FULL,
    RandomnessScheme.DEMEYER_EQ6,
    RandomnessScheme.FIRST_LAYER_R1R3,
    RandomnessScheme.SECOND_LAYER_R5R6,
    RandomnessScheme.PROPOSED_EQ9,
    RandomnessScheme.TRANSITION_R7_EQ_R1,
    RandomnessScheme.TRANSITION_R7_EQ_R2,
    RandomnessScheme.TRANSITION_R7_EQ_R3,
    RandomnessScheme.TRANSITION_R7_EQ_R4,
)


class SecondOrderScheme(enum.Enum):
    """Mask wiring for the 3-share (second-order) Kronecker tree.

    The paper reports that the 21 -> 13 fresh-bit optimization of [12]
    passes PROLEAD up to second order (glitches + transitions) but does not
    print the mapping.  ``OPT_13`` is our reconstruction meeting the same
    count and verdict: layer 1 stays fully fresh (12 bits); each layer-2
    mask is the XOR of two *differently delayed* layer-1 bits (a 2-probe
    adversary cannot cancel both components and still observe a blinded
    value); G7 reuses two layer-1 bits directly (the safe layer-1 -> layer-3
    distance that Section IV's four solutions exploit) plus one fresh bit.
    ``OPT_13_NAIVE`` is the obvious direct cross-layer reuse at the same
    cost; our evaluation shows it *leaks* -- one more illustration of the
    paper's thesis that such optimizations need tool support.
    """

    FULL_21 = "second_order_full_21"
    OPT_13 = "second_order_opt_13"
    OPT_13_NAIVE = "second_order_opt_13_naive"

    def wire(self, bus: MaskBus) -> Dict[int, Dict[Tuple[int, int], int]]:
        """Return per-gate mask dictionaries keyed by share pair."""
        pairs = ((0, 1), (0, 2), (1, 2))
        wiring: Dict[int, Dict[Tuple[int, int], int]] = {}
        if self is SecondOrderScheme.FULL_21:
            for gate in GATES:
                wiring[gate] = {
                    p: bus.fresh(f"g{gate}.r{p[0]}{p[1]}") for p in pairs
                }
            return wiring
        for gate in FIRST_LAYER:
            wiring[gate] = {
                p: bus.fresh(f"g{gate}.r{p[0]}{p[1]}") for p in pairs
            }
        if self is SecondOrderScheme.OPT_13_NAIVE:
            wiring[5] = dict(wiring[4])
            wiring[6] = dict(wiring[2])
            wiring[7] = {
                (0, 1): bus.fresh("g7.r01"),
                (0, 2): wiring[3][(0, 1)],
                (1, 2): wiring[3][(0, 2)],
            }
            return wiring
        # OPT_13: layer-2 masks are XORs of two differently-delayed layer-1
        # bits (unpairable by a 2-probe adversary); layer 3 reuses layer-1
        # bits directly (the safe layer-1 -> layer-3 distance of Section IV)
        # plus one fresh bit.
        wiring[5] = {
            p: bus.derived_delayed_xor(
                f"g5.r{p[0]}{p[1]}", wiring[1][p], 2, wiring[3][p], 3
            )
            for p in pairs
        }
        wiring[6] = {
            p: bus.derived_delayed_xor(
                f"g6.r{p[0]}{p[1]}", wiring[2][p], 2, wiring[4][p], 3
            )
            for p in pairs
        }
        wiring[7] = {
            (0, 1): bus.fresh("g7.r01"),
            (0, 2): wiring[3][(0, 1)],
            (1, 2): wiring[4][(0, 1)],
        }
        return wiring

    @property
    def fresh_bits(self) -> int:
        """Fresh random bits per cycle."""
        return 21 if self is SecondOrderScheme.FULL_21 else 13

    @property
    def expected_secure(self) -> bool:
        """Expected verdict up to 2nd order, glitches + transitions."""
        return self is not SecondOrderScheme.OPT_13_NAIVE
