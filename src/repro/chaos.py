"""Deterministic infrastructure fault injection for the evaluation fabric.

PR 1 fault-injects the *statistics* (netlist mutations prove the evaluator
notices broken designs); this module fault-injects the *infrastructure*
that produces verdicts -- checkpoint IO, the verdict store, the telemetry
log, the job queue, worker processes, the compiled kernel.  A wrong-but-
plausible report caused by a torn checkpoint or a corrupt cache record is
strictly worse than a crash, so the robustness contract every layer must
honour is:

    under any injected infrastructure fault, a run ends in either a
    **byte-identical** report or a **typed** error -- never a silently
    divergent verdict.

Three pieces enforce and exercise that contract:

* :class:`ChaosPolicy` -- a frozen, ``from_dict``/``to_dict``-round-tripping
  spec (shaped like :class:`repro.spec.EvaluationSpec`) describing *which*
  faults to inject *where* and *how often*.  Each chaos site draws from its
  own ``SeedSequence``-derived RNG stream, so a policy seed reproduces the
  same fault schedule per site regardless of what the other sites do.
* :class:`FaultPlane` -- the injectable hook the production code consults at
  named sites.  The default is *no plane at all*: every call site guards
  with ``if plane is not None``, so disabled chaos costs nothing.  Injected
  IO faults are real :class:`OSError` instances (:class:`InjectedFault`),
  so injection exercises the exact retry/quarantine/degradation paths a
  real ``ENOSPC`` would.
* :func:`run_torture` -- the chaos-torture harness: run a campaign under
  randomized policy seeds (interrupt + resume each run, so checkpoint
  write *and* read paths fire), and assert the contract above against a
  clean golden run.

The resilience counterpart (what the injected faults are survived *by*)
lives where the state lives: CRC-checked generation-rotated checkpoints in
:mod:`repro.leakage.campaign`, verified-on-read verdict records in
:mod:`repro.service.store`, the watchdog/dead-letter ladder in
:mod:`repro.service.runner`, and :func:`retry_io` below for transient IO.
See ``docs/robustness.md`` for the full fault model.
"""

from __future__ import annotations

import errno
import random
import re
import threading
import time
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    BudgetExceeded,
    ChaosError,
    CheckpointError,
    ServiceError,
)

__all__ = [
    "CHAOS_SITES",
    "SITE_KINDS",
    "TYPED_ERRORS",
    "ChaosError",
    "ChaosFaultPlane",
    "ChaosPolicy",
    "DEFAULT_RETRY",
    "FaultPlane",
    "InjectedFault",
    "RetryPolicy",
    "TortureReport",
    "TortureRun",
    "retry_io",
    "run_torture",
]

#: Every named fault-injection site, in stable order (the index seeds the
#: site's private RNG stream, so adding sites never reshuffles existing
#: schedules).
CHAOS_SITES = (
    "checkpoint.write",
    "checkpoint.read",
    "store.write",
    "store.read_result",
    "telemetry.write",
    "queue.put",
    "worker.block",
    "engine.compile",
    "runner.chunk",
    "fleet.lease",
    "fleet.complete",
    "engine.native_build",
)

#: Fault kinds each site can draw.  IO kinds raise :class:`InjectedFault`;
#: payload kinds corrupt bytes in flight; the rest are site-interpreted
#: ("kill" exits a worker process, "hang" sleeps, "full" storms the queue,
#: "fail" breaks the compiled kernel).
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "checkpoint.write": ("oserror", "enospc", "torn", "bitflip"),
    "checkpoint.read": ("oserror",),
    "store.write": ("oserror", "enospc"),
    "store.read_result": ("truncate", "garbage", "bitflip", "future-schema"),
    "telemetry.write": ("oserror",),
    "queue.put": ("full",),
    "worker.block": ("kill", "hang"),
    "engine.compile": ("fail",),
    "runner.chunk": ("hang",),
    "fleet.lease": ("oserror",),
    "fleet.complete": ("oserror", "truncate", "garbage", "bitflip"),
    "engine.native_build": ("fail",),
}

_IO_ERRNO = {"oserror": errno.EIO, "enospc": errno.ENOSPC}

#: Error types a chaos run may legitimately end in (the "clean typed
#: error" arm of the robustness contract).
TYPED_ERRORS = (ChaosError, CheckpointError, ServiceError, BudgetExceeded)


class InjectedFault(OSError):
    """An injected IO fault.

    Subclasses :class:`OSError` deliberately: the production retry,
    quarantine, and degradation paths must treat an injected ``EIO`` or
    ``ENOSPC`` exactly like a real one -- that equivalence is what makes
    the torture results meaningful.
    """

    def __init__(self, err: int, site: str, kind: str):
        super().__init__(err, f"injected {kind} at chaos site {site!r}")
        self.site = site
        self.kind = kind


# --------------------------------------------------------------- fault plane


class FaultPlane:
    """Injectable fault hook consulted at named infrastructure sites.

    The base class never fires -- :meth:`decide` returns ``None`` -- and is
    never installed by default (call sites hold ``None`` and skip the
    consultation entirely, so the production fast path has zero overhead).
    :class:`ChaosFaultPlane` overrides :meth:`decide` with a seeded
    schedule; tests may subclass for scripted faults.
    """

    #: how long an injected "hang" sleeps.
    hang_seconds: float = 0.0

    def decide(self, site: str) -> Optional[str]:
        """Fault kind to inject at ``site`` right now, or ``None``."""
        return None

    # -- site adapters: one consultation, acted on per site family --------

    def maybe_fail(self, site: str) -> None:
        """Raise :class:`InjectedFault` when an IO fault fires at ``site``."""
        kind = self.decide(site)
        if kind in _IO_ERRNO:
            raise InjectedFault(_IO_ERRNO[kind], site, kind)

    def filter_write(self, site: str, data: bytes) -> bytes:
        """IO-fail or corrupt an outgoing payload (torn writes, bit flips).

        A corruption kind *returns* mangled bytes instead of raising: the
        write appears to succeed, and only read-side integrity checks can
        catch it -- the torn-checkpoint scenario.
        """
        kind = self.decide(site)
        if kind is None:
            return data
        if kind in _IO_ERRNO:
            raise InjectedFault(_IO_ERRNO[kind], site, kind)
        return self._mutate(site, kind, data)

    def filter_read(self, site: str, data: bytes) -> bytes:
        """Corrupt an incoming payload (what a rotted record looks like)."""
        kind = self.decide(site)
        if kind is None:
            return data
        if kind in _IO_ERRNO:
            raise InjectedFault(_IO_ERRNO[kind], site, kind)
        return self._mutate(site, kind, data)

    def maybe_hang(self, site: str, sleep: Callable[[float], None] = time.sleep) -> bool:
        """Sleep :attr:`hang_seconds` when a hang fires; True if it did."""
        if self.decide(site) == "hang":
            sleep(self.hang_seconds)
            return True
        return False

    def _mutate(self, site: str, kind: str, data: bytes) -> bytes:
        return data  # pragma: no cover - base plane never decides a kind


class ChaosFaultPlane(FaultPlane):
    """A :class:`FaultPlane` executing a :class:`ChaosPolicy` schedule.

    Each enabled site owns a ``default_rng(SeedSequence(entropy=seed,
    spawn_key=(site_index,)))`` stream: whether a consultation fires, and
    which kind it draws, depends only on the policy seed and that site's
    own consultation count.  A shared fault budget (``max_faults``) caps
    total injections so torture runs always terminate.

    Thread-safe (sites are consulted from runner threads, HTTP handlers,
    and campaign loops concurrently) and picklable (the plane rides inside
    the evaluator into worker processes; the lock and telemetry hook are
    dropped and rebuilt across the pickle boundary).
    """

    def __init__(self, policy: "ChaosPolicy"):
        self.policy = policy
        self.hang_seconds = policy.hang_seconds
        #: optional ``hook(event, payload)`` notified on every injection
        #: (the torture harness wires telemetry here); never pickled.
        self.hook: Optional[Callable[[str, Dict], None]] = None
        self._lock = threading.Lock()
        self._injected: List[Tuple[str, str]] = []
        self._rngs = {
            site: np.random.default_rng(
                np.random.SeedSequence(
                    entropy=policy.seed, spawn_key=(index,)
                )
            )
            for index, site in enumerate(CHAOS_SITES)
            if site in policy.sites
        }

    # ------------------------------------------------------------- schedule

    def decide(self, site: str) -> Optional[str]:
        rng = self._rngs.get(site)
        if rng is None:
            return None
        with self._lock:
            if (
                self.policy.max_faults is not None
                and len(self._injected) >= self.policy.max_faults
            ):
                return None
            if rng.random() >= self.policy.p:
                return None
            kinds = SITE_KINDS[site]
            kind = kinds[int(rng.integers(len(kinds)))]
            self._injected.append((site, kind))
        hook = self.hook
        if hook is not None:
            hook("chaos_fault", {"site": site, "kind": kind})
        return kind

    def _mutate(self, site: str, kind: str, data: bytes) -> bytes:
        with self._lock:
            rng = self._rngs[site]
            if kind == "torn":
                return data[: max(1, len(data) // 2)]
            if kind == "truncate":
                return data[: max(0, len(data) // 3)]
            if kind == "bitflip":
                if not data:
                    return data
                mangled = bytearray(data)
                position = int(rng.integers(len(mangled)))
                mangled[position] ^= 1 << int(rng.integers(8))
                return bytes(mangled)
            if kind == "garbage":
                return b'{"not a report":'
            if kind == "future-schema":
                swapped, count = re.subn(
                    rb'("schema_version":\s*)\d+', rb"\g<1>9999", data, count=1
                )
                return swapped if count else b'{"schema_version": 9999}'
        raise ChaosError(f"unknown mutation kind {kind!r}")

    # ------------------------------------------------------------ inspection

    @property
    def injected(self) -> List[Tuple[str, str]]:
        """Every ``(site, kind)`` injected so far, in order."""
        with self._lock:
            return list(self._injected)

    # ------------------------------------------------------------- pickling

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_lock"] = None
        state["hook"] = None  # telemetry handles do not cross processes
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


# -------------------------------------------------------------- chaos policy


@dataclass(frozen=True)
class ChaosPolicy:
    """Frozen spec of one fault-injection schedule.

    Shaped like :class:`repro.spec.EvaluationSpec` on purpose: validated,
    JSON-round-trippable, and fully determined by its fields -- two equal
    policies build :class:`ChaosFaultPlane` instances that inject the same
    faults at the same consultations.
    """

    #: entropy for every site's ``SeedSequence`` stream.
    seed: int = 0
    #: probability a consultation fires (per site, per consultation).
    p: float = 0.1
    #: enabled sites; defaults to all of :data:`CHAOS_SITES`.
    sites: Tuple[str, ...] = CHAOS_SITES
    #: total fault budget across all sites (``None`` = unbounded); bounds
    #: guarantee torture runs terminate even at high ``p``.
    max_faults: Optional[int] = 32
    #: sleep injected by "hang" kinds (worker.block, runner.chunk).
    hang_seconds: float = 0.05

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosPolicy":
        """Parse and validate an untrusted policy dict."""
        if not isinstance(data, dict):
            raise ChaosError("chaos policy must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ChaosError(
                f"unknown chaos policy field(s): {sorted(unknown)}"
            )
        merged = dict(data)
        if "sites" in merged:
            try:
                merged["sites"] = tuple(str(s) for s in merged["sites"])
            except TypeError as exc:
                raise ChaosError("sites must be a list of site names") from exc
        policy = cls(**merged)
        policy.validate()
        return policy

    def to_dict(self) -> Dict:
        """JSON-safe round-trip form; ``from_dict(to_dict())`` == self."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def validate(self) -> None:
        if not isinstance(self.seed, int):
            raise ChaosError("seed must be an integer")
        if not isinstance(self.p, (int, float)) or not 0.0 <= self.p <= 1.0:
            raise ChaosError("p must be a probability in [0, 1]")
        unknown = set(self.sites) - set(CHAOS_SITES)
        if unknown:
            raise ChaosError(
                f"unknown chaos site(s): {sorted(unknown)}; "
                f"choose from {list(CHAOS_SITES)}"
            )
        if self.max_faults is not None and (
            not isinstance(self.max_faults, int) or self.max_faults < 0
        ):
            raise ChaosError("max_faults must be a non-negative integer")
        if (
            not isinstance(self.hang_seconds, (int, float))
            or self.hang_seconds < 0
        ):
            raise ChaosError("hang_seconds must be a non-negative number")

    def fault_plane(self) -> ChaosFaultPlane:
        """A fresh plane executing this policy from the start."""
        self.validate()
        return ChaosFaultPlane(self)


# ----------------------------------------------------------------- retry IO


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter."""

    #: total attempts (the first try included); the last failure re-raises.
    attempts: int = 4
    #: backoff cap for attempt ``n`` is ``base_delay * 2**(n-1)``...
    base_delay: float = 0.02
    #: ...bounded by this ceiling.
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ChaosError("retry attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ChaosError("retry delays must be non-negative")


DEFAULT_RETRY = RetryPolicy()

#: Jitter source for backoff delays.  Timing-only randomness: it never
#: influences results, so a module-level stream is fine.
_JITTER = random.Random(0x5EED)


def retry_io(
    fn: Callable[[], object],
    policy: RetryPolicy = DEFAULT_RETRY,
    *,
    site: str = "io",
    retry_on: Tuple[type, ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    hook: Optional[Callable[[str, Dict], None]] = None,
) -> object:
    """Run ``fn`` under ``policy``, retrying transient ``retry_on`` errors.

    Delays follow the AWS "full jitter" scheme -- ``uniform(0, min(cap,
    base * 2**attempt))`` -- so a thundering herd of retriers decorrelates
    instead of synchronizing.  The final failure propagates unchanged, so
    callers keep wrapping it in their own typed error.
    """
    jitter = rng if rng is not None else _JITTER
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == policy.attempts:
                raise
            cap = min(
                policy.max_delay, policy.base_delay * (2 ** (attempt - 1))
            )
            delay = jitter.uniform(0.0, cap)
            if hook is not None:
                hook(
                    "io_retry",
                    {
                        "site": site,
                        "attempt": attempt,
                        "delay": round(delay, 4),
                        "error": repr(exc),
                    },
                )
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


# ------------------------------------------------------------ torture harness


@dataclass
class TortureRun:
    """Outcome of one chaos-seeded campaign run."""

    seed: int
    #: "identical" (byte-identical to golden), "typed-error", or the two
    #: contract violations: "divergent" and "untyped-error".
    outcome: str
    error: Optional[str] = None
    #: faults actually injected, as ``site:kind`` strings.
    injected: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.outcome in ("identical", "typed-error")

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "outcome": self.outcome,
            "error": self.error,
            "injected": list(self.injected),
        }


@dataclass
class TortureReport:
    """Aggregate verdict of a chaos-torture sweep."""

    runs: List[TortureRun]
    golden_status: str

    @property
    def ok(self) -> bool:
        """True when every run honoured the robustness contract."""
        return all(run.ok for run in self.runs)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for run in self.runs:
            out[run.outcome] = out.get(run.outcome, 0) + 1
        return out

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "golden_status": self.golden_status,
            "counts": self.counts(),
            "runs": [run.to_dict() for run in self.runs],
        }

    def format_summary(self) -> str:
        lines = [
            f"=== chaos torture: {len(self.runs)} seed(s), "
            f"{'OK' if self.ok else 'CONTRACT VIOLATED'} ===",
        ]
        for name, count in sorted(self.counts().items()):
            lines.append(f"  {name:<14} {count}")
        for run in self.runs:
            if not run.ok:
                lines.append(
                    f"  seed {run.seed}: {run.outcome} -- {run.error} "
                    f"(injected: {', '.join(run.injected) or 'none'})"
                )
        return "\n".join(lines)


def run_torture(
    make_evaluator: Callable[[], object],
    make_config: Callable[..., object],
    seeds: Sequence[int],
    workdir: str,
    p: float = 0.2,
    hang_seconds: float = 0.01,
    max_faults: Optional[int] = 32,
    sites: Tuple[str, ...] = CHAOS_SITES,
    hook: Optional[Callable[[str, Dict], None]] = None,
    interrupt_after_chunks: int = 2,
) -> TortureReport:
    """Torture a campaign under randomized chaos seeds.

    ``make_evaluator()`` builds a fresh evaluator and ``make_config(
    checkpoint=path)`` a fresh :class:`~repro.leakage.campaign.
    CampaignConfig` (the harness owns the checkpoint path, one per seed
    under ``workdir``).  The golden report is computed once without any
    fault plane; then every seed runs the same campaign in two legs --
    interrupted after ``interrupt_after_chunks`` chunk boundaries, then
    resumed to completion -- under a :class:`ChaosFaultPlane`, so the
    checkpoint write *and* read/fallback paths both face injection.

    Each run must end "identical" (resumed report byte-identical to
    golden) or "typed-error" (one of :data:`TYPED_ERRORS`); anything else
    is recorded as a contract violation and flips :attr:`TortureReport.ok`.
    """
    import os

    from repro.leakage.campaign import EvaluationCampaign

    golden_campaign = EvaluationCampaign(
        make_evaluator(), make_config(checkpoint=None)
    )
    golden_report = golden_campaign.run()
    golden_json = golden_report.to_json(top=None)
    if hook is not None:
        hook(
            "torture_golden",
            {"status": golden_report.status, "bytes": len(golden_json)},
        )

    runs: List[TortureRun] = []
    for seed in seeds:
        policy = ChaosPolicy(
            seed=seed,
            p=p,
            sites=sites,
            max_faults=max_faults,
            hang_seconds=hang_seconds,
        )
        plane = policy.fault_plane()
        if hook is not None:
            plane.hook = hook
        checkpoint = os.path.join(workdir, f"torture-{seed}.npz")
        outcome = _torture_one(
            make_evaluator,
            make_config,
            checkpoint,
            plane,
            golden_json,
            interrupt_after_chunks,
        )
        outcome.seed = seed
        outcome.injected = tuple(f"{s}:{k}" for s, k in plane.injected)
        if hook is not None:
            hook("torture_run", outcome.to_dict())
        runs.append(outcome)
    return TortureReport(runs=runs, golden_status=golden_report.status)


def _torture_one(
    make_evaluator,
    make_config,
    checkpoint: str,
    plane: ChaosFaultPlane,
    golden_json: str,
    interrupt_after_chunks: int,
) -> TortureRun:
    from repro.leakage.campaign import EvaluationCampaign

    chunks_seen = {"n": 0}

    def leg_hook(event: str, payload: Dict) -> None:
        if event == "chunk_done":
            chunks_seen["n"] += 1

    def interrupt() -> bool:
        return chunks_seen["n"] >= interrupt_after_chunks

    try:
        first_leg = EvaluationCampaign(
            make_evaluator(),
            make_config(checkpoint=checkpoint),
            hook=leg_hook,
            should_stop=interrupt,
            fault_plane=plane,
        )
        first_leg.run()
        resumed = EvaluationCampaign(
            make_evaluator(),
            make_config(checkpoint=checkpoint),
            fault_plane=plane,
        )
        report = resumed.run(resume=True)
    except TYPED_ERRORS as exc:
        return TortureRun(
            seed=-1, outcome="typed-error", error=f"{type(exc).__name__}: {exc}"
        )
    except Exception as exc:  # noqa: BLE001 - the contract violation arm
        return TortureRun(
            seed=-1,
            outcome="untyped-error",
            error=f"{type(exc).__name__}: {exc}",
        )
    if report.status != "complete":
        return TortureRun(
            seed=-1,
            outcome="divergent",
            error=f"resumed run ended {report.status!r}, not complete",
        )
    if report.to_json(top=None) != golden_json:
        return TortureRun(
            seed=-1,
            outcome="divergent",
            error="resumed report is not byte-identical to the golden run",
        )
    return TortureRun(seed=-1, outcome="identical")
