"""Cell types of the netlist IR and their semantics.

The cell set mirrors what Yosys emits for the NanGate45 library when mapping
masked designs: simple 1/2-input combinational gates plus a D flip-flop.
Boolean functions are given both as integer truth tables (for the scalar
evaluator) and as numpy expressions (for the bitsliced simulator).
"""

from __future__ import annotations

import enum
from typing import Tuple


class CellType(enum.Enum):
    """Every cell kind understood by the IR."""

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # inputs: (select, d0, d1) -> d1 if select else d0
    DFF = "dff"  # inputs: (d,), output updated at the clock edge

    @property
    def is_sequential(self) -> bool:
        """True for state-holding cells."""
        return self is CellType.DFF

    @property
    def is_constant(self) -> bool:
        """True for the two constant drivers."""
        return self in (CellType.CONST0, CellType.CONST1)

    @property
    def arity(self) -> int:
        """Number of inputs the cell expects."""
        return _ARITY[self]


_ARITY = {
    CellType.CONST0: 0,
    CellType.CONST1: 0,
    CellType.BUF: 1,
    CellType.NOT: 1,
    CellType.AND: 2,
    CellType.NAND: 2,
    CellType.OR: 2,
    CellType.NOR: 2,
    CellType.XOR: 2,
    CellType.XNOR: 2,
    CellType.MUX: 3,
    CellType.DFF: 1,
}


def evaluate_cell(cell_type: CellType, inputs: Tuple[int, ...]) -> int:
    """Evaluate a combinational cell on scalar bit inputs (0/1)."""
    if cell_type is CellType.CONST0:
        return 0
    if cell_type is CellType.CONST1:
        return 1
    if cell_type is CellType.BUF:
        return inputs[0]
    if cell_type is CellType.NOT:
        return inputs[0] ^ 1
    if cell_type is CellType.AND:
        return inputs[0] & inputs[1]
    if cell_type is CellType.NAND:
        return (inputs[0] & inputs[1]) ^ 1
    if cell_type is CellType.OR:
        return inputs[0] | inputs[1]
    if cell_type is CellType.NOR:
        return (inputs[0] | inputs[1]) ^ 1
    if cell_type is CellType.XOR:
        return inputs[0] ^ inputs[1]
    if cell_type is CellType.XNOR:
        return inputs[0] ^ inputs[1] ^ 1
    if cell_type is CellType.MUX:
        select, d0, d1 = inputs
        return d1 if select else d0
    raise ValueError(f"cell type {cell_type} is not combinational")


#: Commutative two-input cell types (used by structural hashing / CSE).
COMMUTATIVE = frozenset(
    {
        CellType.AND,
        CellType.NAND,
        CellType.OR,
        CellType.NOR,
        CellType.XOR,
        CellType.XNOR,
    }
)
