"""Cycle-accurate netlist simulation.

Two engines share the same semantics:

* :class:`ScalarSimulator` -- one set of scalar bit values, convenient for
  functional tests.
* :class:`BitslicedSimulator` -- N parallel Monte-Carlo lanes packed into
  numpy uint64 words (64 lanes per word).  This is what makes PROLEAD-scale
  simulation counts (millions of fixed-vs-random traces) practical in pure
  Python: each gate evaluation is one vectorized word operation covering all
  lanes at once.

Registers are positive-edge D flip-flops initialised to 0.  Within a cycle
the order is: primary inputs take the cycle's stimulus, register outputs show
the captured state, combinational logic settles, then registers capture their
D inputs for the next cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.cells import CellType, evaluate_cell
from repro.netlist.core import Netlist
from repro.netlist.topo import levelize

Stimulus = Callable[[int], Mapping[int, np.ndarray]]


def pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack a per-lane bit array (0/1) into uint64 words, LSB-first."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size == 0:
        raise SimulationError("pack_lanes requires at least one lane")
    padded_len = ((bits.size + 63) // 64) * 64
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: bits.size] = bits
    packed = np.packbits(padded, bitorder="little")
    return packed.view(np.uint64)


def unpack_lanes(words: np.ndarray, n_lanes: int) -> np.ndarray:
    """Unpack uint64 words into a per-lane uint8 bit array of length n_lanes."""
    if n_lanes <= 0:
        raise SimulationError("n_lanes must be positive")
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:n_lanes]


def words_for_lanes(n_lanes: int) -> int:
    """Number of uint64 words needed to hold ``n_lanes`` lanes."""
    if n_lanes <= 0:
        raise SimulationError("n_lanes must be positive")
    return (n_lanes + 63) // 64


class Trace:
    """Recorded values of selected nets over time, bitsliced.

    ``values[cycle][net]`` is a uint64 word array; lane ``i`` of the run is
    bit ``i % 64`` of word ``i // 64``.
    """

    def __init__(self, n_lanes: int, recorded_nets: Sequence[int]):
        self.n_lanes = n_lanes
        self.recorded_nets = list(recorded_nets)
        self.values: List[Dict[int, np.ndarray]] = []

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles in the trace."""
        return len(self.values)

    def words(self, cycle: int, net: int) -> np.ndarray:
        """Raw word array for a recorded net at a cycle."""
        try:
            return self.values[cycle][net]
        except KeyError:
            raise SimulationError(
                f"net {net} was not recorded at cycle {cycle}"
            ) from None

    def bits(self, cycle: int, net: int) -> np.ndarray:
        """Per-lane bit values (uint8) for a recorded net at a cycle."""
        return unpack_lanes(self.words(cycle, net), self.n_lanes)


class BitslicedSimulator:
    """Evaluates a netlist over many parallel lanes.

    With ``keep_nets`` the simulator restricts itself to the sequential
    fan-in cone of those nets (see :mod:`repro.netlist.slice`): cells,
    registers, and primary inputs outside the cone are skipped entirely.
    Because the cone is closed under fan-in, every net inside it computes
    exactly the words the full simulation would -- bit-identical, only
    faster.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_lanes: int,
        keep_nets: Optional[Iterable[int]] = None,
    ):
        if n_lanes <= 0:
            raise SimulationError("n_lanes must be positive")
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.n_words = words_for_lanes(n_lanes)
        self._order = levelize(netlist)
        self._dffs = list(netlist.dff_cells())
        self._inputs = list(netlist.inputs)
        self._cone = None
        if keep_nets is not None:
            from repro.netlist.slice import sequential_cone

            cone = sequential_cone(netlist, keep_nets)
            self._cone = cone
            self._order = [c for c in self._order if c.output in cone]
            self._dffs = [c for c in self._dffs if c.output in cone]
            self._inputs = [pi for pi in self._inputs if pi in cone]

    def _zeros(self) -> np.ndarray:
        return np.zeros(self.n_words, dtype=np.uint64)

    def _ones(self) -> np.ndarray:
        return np.full(self.n_words, np.uint64(0xFFFFFFFFFFFFFFFF))

    def run(
        self,
        stimulus: Stimulus,
        n_cycles: int,
        record_nets: Optional[Iterable[int]] = None,
        record_cycles: Optional[Iterable[int]] = None,
    ) -> Trace:
        """Simulate ``n_cycles`` cycles and record the requested nets.

        ``stimulus(cycle)`` must return a word array for every primary input.
        When ``record_nets`` is None, the stable nets (inputs and register
        outputs) are recorded -- exactly what probing-model observations are
        made of (a sliced simulator records the stable nets of its cone).
        ``record_cycles`` restricts recording to the given cycles (others
        store nothing), bounding memory for long runs.
        """
        netlist = self.netlist
        if record_nets is None:
            record_nets = netlist.stable_nets()
            if self._cone is not None:
                record_nets = [n for n in record_nets if n in self._cone]
        record_list = list(record_nets)
        if self._cone is not None:
            for net in record_list:
                if net not in self._cone:
                    raise SimulationError(
                        f"net {net} is outside this simulator's fan-in slice"
                    )
        cycle_filter = None if record_cycles is None else set(record_cycles)
        trace = Trace(self.n_lanes, record_list)

        state: Dict[int, np.ndarray] = {
            dff.index: self._zeros() for dff in self._dffs
        }
        values: Dict[int, np.ndarray] = {}

        for cycle in range(n_cycles):
            provided = stimulus(cycle)
            for pi in self._inputs:
                if pi not in provided:
                    raise SimulationError(
                        f"stimulus missing primary input "
                        f"{netlist.net_name(pi)!r} at cycle {cycle}"
                    )
                words = np.asarray(provided[pi], dtype=np.uint64)
                if words.shape != (self.n_words,):
                    raise SimulationError(
                        f"stimulus for {netlist.net_name(pi)!r} has shape "
                        f"{words.shape}, expected ({self.n_words},)"
                    )
                values[pi] = words
            for dff in self._dffs:
                values[dff.output] = state[dff.index]
            self._evaluate_combinational(values)
            if cycle_filter is None or cycle in cycle_filter:
                trace.values.append(
                    {net: values[net].copy() for net in record_list}
                )
            else:
                trace.values.append({})
            for dff in self._dffs:
                state[dff.index] = values[dff.inputs[0]].copy()
        return trace

    def _evaluate_combinational(self, values: Dict[int, np.ndarray]) -> None:
        for cell in self._order:
            kind = cell.cell_type
            ins = cell.inputs
            if kind is CellType.CONST0:
                out = self._zeros()
            elif kind is CellType.CONST1:
                out = self._ones()
            elif kind is CellType.BUF:
                out = values[ins[0]]
            elif kind is CellType.NOT:
                out = ~values[ins[0]]
            elif kind is CellType.AND:
                out = values[ins[0]] & values[ins[1]]
            elif kind is CellType.NAND:
                out = ~(values[ins[0]] & values[ins[1]])
            elif kind is CellType.OR:
                out = values[ins[0]] | values[ins[1]]
            elif kind is CellType.NOR:
                out = ~(values[ins[0]] | values[ins[1]])
            elif kind is CellType.XOR:
                out = values[ins[0]] ^ values[ins[1]]
            elif kind is CellType.XNOR:
                out = ~(values[ins[0]] ^ values[ins[1]])
            elif kind is CellType.MUX:
                select = values[ins[0]]
                out = (values[ins[1]] & ~select) | (values[ins[2]] & select)
            else:  # pragma: no cover - DFFs are not in the comb order
                raise SimulationError(f"unexpected cell type {kind}")
            values[cell.output] = out


class ScalarSimulator:
    """Single-lane reference simulator with integer bit values."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = levelize(netlist)
        self._dffs = list(netlist.dff_cells())
        self.state: Dict[int, int] = {dff.index: 0 for dff in self._dffs}

    def step(self, inputs: Mapping[int, int]) -> Dict[int, int]:
        """Advance one clock cycle; returns the settled value of every net."""
        values: Dict[int, int] = {}
        for pi in self.netlist.inputs:
            if pi not in inputs:
                raise SimulationError(
                    f"missing input {self.netlist.net_name(pi)!r}"
                )
            values[pi] = inputs[pi] & 1
        for dff in self._dffs:
            values[dff.output] = self.state[dff.index]
        for cell in self._order:
            values[cell.output] = evaluate_cell(
                cell.cell_type, tuple(values[n] for n in cell.inputs)
            )
        for dff in self._dffs:
            self.state[dff.index] = values[dff.inputs[0]]
        return values

    def reset(self) -> None:
        """Clear all register state back to 0."""
        for key in self.state:
            self.state[key] = 0


def evaluate_combinational(
    netlist: Netlist, inputs: Mapping[int, int]
) -> Dict[int, int]:
    """Evaluate a purely combinational netlist on scalar inputs.

    Registers, if present, are treated as holding 0.
    """
    sim = ScalarSimulator(netlist)
    return sim.step(inputs)
