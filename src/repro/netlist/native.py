"""Native fused-kernel execution of compiled gate programs.

The :class:`~repro.netlist.compile.CompiledSimulator` still pays one numpy
dispatch per cell type per level per cycle -- interpreter overhead that
dominates when the word count is small (a 64-lane block is a single
uint64 word).  This module goes the rest of the way: it generates C
source from a :class:`~repro.netlist.compile.GateProgram`'s levelized
dispatch table -- every op group becomes a plain ``for`` loop over baked
static index arrays -- compiles it to a shared object with the system C
compiler, and drives the **entire multi-cycle simulation in one foreign
call** through ``cffi``'s ``ffi.dlopen``.

Lane words are embarrassingly parallel: every per-word quantity (gate
outputs, register state, constants, recorded words) depends only on its
own word column, so the kernel splits the word range across an internal
pthread pool with zero synchronization inside a cycle.  Thread-level
parallelism inside one call sidesteps the process fork/pickle overhead
that made the process-pool executor *slower* than serial on small hosts
(``BENCH_parallel.json``'s historical 0.8x).

Build products are cached twice: compiled ``.so`` files on disk keyed by
a content digest of the generated source (itself derived from the
program's content hash, so the existing program cache keying carries
over -- full programs by netlist hash, cone slices by slice key), and
``dlopen`` handles in a bounded per-process LRU exposed through
:func:`native_kernel_cache_info` and the service ``/metrics`` endpoint.

:class:`NativeSimulator` is a drop-in replacement for
:class:`CompiledSimulator` -- same constructor shape (including
``keep_nets`` cone slicing), same ``run`` contract, same
:class:`~repro.netlist.simulate.Trace` output, **bit-identical** words.
Construction raises :class:`~repro.errors.SimulationError` when no C
toolchain (or ``cffi``) is available; callers degrade down the
:mod:`repro.engines` ladder (native -> compiled -> bitsliced) and record
the degradation.  Set ``REPRO_NATIVE_DISABLE=1`` to force the
unavailable leg (CI's no-toolchain job).
"""

from __future__ import annotations

import hashlib
import operator
import os
import shutil
import subprocess
import tempfile
import threading
from collections import OrderedDict
from typing import Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.netlist.cells import CellType
from repro.netlist.compile import GateProgram, compile_netlist
from repro.netlist.core import Netlist
from repro.netlist.simulate import Stimulus, Trace, words_for_lanes

__all__ = [
    "NativeSimulator",
    "NativeScheduledSimulator",
    "CountSpec",
    "native_available",
    "native_unavailable_reason",
    "native_default_threads",
    "pipeline_available",
    "pipeline_unavailable_reason",
    "generate_kernel_source",
    "build_kernel",
    "build_pipeline_kernel",
    "native_kernel_cache_info",
    "clear_native_kernel_cache",
    "NativeKernelCacheInfo",
]

#: Bumping this invalidates every cached kernel (source digest changes).
_CODEGEN_VERSION = 3

#: Version of the generic pipeline-support kernel (PCG64 stimulus
#: generation, fused extraction/histogram, scheduled-cone interpreter).
_PIPELINE_VERSION = 2

#: Upper bound on kernel threads (also baked into the C thread arrays).
_MAX_THREADS = 64

#: Words simulated per cache tile.  The kernel runs the whole multi-cycle
#: simulation tile-by-tile against a compact ``n_rows x TILE`` state
#: buffer: word columns are fully independent, so a narrow tile keeps the
#: entire working set (~n_rows * 32 bytes) inside L2 while the constant
#: stride lets the compiler unroll and vectorize every gate loop.
_TILE_WORDS = 4

_CDEF = """
int repro_run(const uint64_t *stim, uint64_t *rec,
              const int64_t *rec_rows, int64_t n_rec,
              const int64_t *rec_slot, int64_t n_cycles,
              int64_t n_words, int64_t n_threads);
"""

_PIPE_CDEF = """
int repro_stimgen(uint64_t *stim, int64_t n_slots,
    const int64_t *ops, int64_t n_ops,
    const int64_t *row_slot, int64_t n_rows,
    const uint8_t *sched, int64_t period,
    uint64_t state_hi, uint64_t state_lo,
    uint64_t inc_hi, uint64_t inc_lo,
    int64_t n_cycles, int64_t nw);
int repro_extract(const uint64_t *rec, int64_t nw, int64_t n_lanes,
    const int64_t *test_off, int64_t n_tests,
    const int64_t *seg_off,
    const int64_t *bit_plane, const int64_t *bit_pos,
    const uint8_t *hashed, const int64_t *cnt_off,
    int64_t hash_shift, int64_t *counts,
    uint64_t *keybuf, int64_t n_threads);
int repro_sched_run(const uint64_t *stim, uint64_t *rec,
    const int64_t *rec_net, int64_t n_rec, const int64_t *rec_slot,
    const int64_t *in_off, const int64_t *in_slot, const int64_t *in_net,
    const int64_t *chk_off, const int64_t *chk_slot,
    const uint8_t *chk_bit,
    const int64_t *rd_off, const int64_t *rd_net, const int64_t *rd_reg,
    const int64_t *cap_off, const int64_t *cap_net,
    const int64_t *cap_reg,
    const int64_t *op_off, const int64_t *op_code, const int64_t *op_out,
    const int64_t *op_a, const int64_t *op_b, const int64_t *op_c,
    const int64_t *const1, int64_t n_const1,
    int64_t n_nets, int64_t n_dffs, int64_t n_slots,
    int64_t n_cycles, int64_t nw, int64_t n_threads);
"""

# ------------------------------------------------------------ availability


def _find_cc() -> Optional[str]:
    """The C compiler to use, or None when no toolchain is on PATH."""
    env_cc = os.environ.get("CC")
    if env_cc:
        return shutil.which(env_cc) or None
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def native_unavailable_reason() -> Optional[str]:
    """None when the native engine can build kernels, else why not."""
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        return "native engine disabled via REPRO_NATIVE_DISABLE"
    try:
        import cffi  # noqa: F401
    except ImportError:
        return "cffi is not installed"
    if _find_cc() is None:
        return "no C compiler found (checked $CC, cc, gcc, clang)"
    return None


def native_available() -> bool:
    """True when kernels can be generated, compiled and loaded."""
    return native_unavailable_reason() is None


def native_default_threads(n_words: Optional[int] = None) -> int:
    """Kernel thread-pool width: ``REPRO_NATIVE_THREADS`` or cpu count,
    clamped to the work available.

    Passing ``n_words`` (the simulated word count, i.e. lanes / 64)
    additionally clamps to the number of ``_TILE_WORDS``-word tiles, so
    a narrow block never spawns more threads than it has independent
    word tiles -- and the cpu-count default never spawns more threads
    than cores (``BENCH_native.json`` showed 2 threads slower than 1 on
    a 1-core host).  The kernel itself re-clamps to the tile count, so
    an explicit oversubscribed value degrades gracefully either way.
    """
    env = os.environ.get("REPRO_NATIVE_THREADS")
    base = None
    if env:
        try:
            base = max(1, min(int(env), _MAX_THREADS))
        except ValueError:
            base = None
    if base is None:
        base = max(1, min(os.cpu_count() or 1, _MAX_THREADS))
    if n_words is not None and n_words > 0:
        n_tiles = (int(n_words) + _TILE_WORDS - 1) // _TILE_WORDS
        base = min(base, n_tiles)
    return max(1, base)


# ------------------------------------------------------- state-slot plan


class RowPlan(NamedTuple):
    """Kernel state-slot assignment for one program.

    ``slot_of[row]`` maps a program state row to its kernel slot (``-1``
    for rows the kernel never touches); ``pinned[row]`` marks rows whose
    slot is exclusive for the whole cycle -- only those are recordable.
    ``orders[g]`` is the emission permutation of op group ``g``: cells
    within a level are mutually independent, so each group is reordered
    by the definition recency of its first operand, which clusters loads
    on recently-written (cache-hot) slots.  The liveness allocation below
    is computed over this same order, so slot reuse stays sound.
    """

    slot_of: np.ndarray
    pinned: np.ndarray
    n_slots: int
    orders: tuple


_ROW_PLANS: "OrderedDict[tuple, RowPlan]" = OrderedDict()
_ROW_PLAN_CAP = 32


def _compute_row_plan(
    program: GateProgram, pinned_rows: Optional[np.ndarray]
) -> RowPlan:
    """Liveness-based slot reuse over the levelized cell schedule.

    The full AES core holds ~21k nets but only ~3k are *stable*
    (probeable); the remaining intermediate rows are written and fully
    consumed within a handful of levels.  Pinning inputs, constants,
    register rows and the caller's recordable rows while recycling every
    other row through a LIFO free stack shrinks the per-tile working set
    by several fold -- the hot top-of-stack slots stay L1-resident
    instead of streaming the whole state array through L2 every level.

    Reuse is safe because the schedule is identical every cycle and
    levelization guarantees def-before-use: a non-pinned row's live
    range is ``[def, last read]`` inside a single cycle, and nothing
    reads it across the cycle boundary (records and register captures
    only touch pinned rows).  ``pinned_rows=None`` pins everything
    (identity-equivalent plan, every row recordable).
    """
    n = program.n_state_rows
    pinned = np.zeros(max(n, 1), dtype=bool)
    if pinned_rows is None:
        pinned[:] = True
    else:
        if pinned_rows.size:
            pinned[pinned_rows] = True
        if program.input_nets:
            pinned[
                [program.state_row(pi) for pi in program.input_nets]
            ] = True
        if program.const1.size:
            pinned[program.const1] = True
        if program.dff_d.size:
            pinned[program.dff_d] = True
            pinned[program.dff_q] = True

    # Definition position of every row in the unsorted schedule, used as
    # the in-level sort key (see RowPlan.orders).
    def_pos = np.full(max(n, 1), -1, dtype=np.int64)
    pos = 0
    for op in program.ops:
        for j in range(op.n_cells):
            def_pos[op.out[j]] = pos
            pos += 1
    orders = tuple(
        np.argsort(def_pos[op.in0], kind="stable") for op in program.ops
    )

    outs: List[int] = []
    reads: List[List[int]] = []
    for op, order in zip(program.ops, orders):
        in1 = op.in1 if op.in1.size else None
        in2 = op.in2 if op.in2.size else None
        for j in order:
            outs.append(int(op.out[j]))
            cell_reads = [int(op.in0[j])]
            if in1 is not None:
                cell_reads.append(int(in1[j]))
            if in2 is not None:
                cell_reads.append(int(in2[j]))
            reads.append(cell_reads)

    written = np.zeros(max(n, 1), dtype=bool)
    if outs:
        written[outs] = True
    last_read = np.full(max(n, 1), -1, dtype=np.int64)
    for pos, cell_reads in enumerate(reads):
        for row in cell_reads:
            last_read[row] = pos
            if not written[row]:
                # Read-but-never-driven rows must keep their zeroed slot.
                pinned[row] = True

    slot_of = np.full(max(n, 1), -1, dtype=np.int64)
    released = np.zeros(max(n, 1), dtype=bool)
    free: List[int] = []
    next_slot = 0
    for pos, (out, cell_reads) in enumerate(zip(outs, reads)):
        for row in cell_reads:
            if (
                not pinned[row]
                and last_read[row] == pos
                and not released[row]
            ):
                released[row] = True
                free.append(int(slot_of[row]))
        if not pinned[out]:
            slot_of[out] = free.pop() if free else next_slot
            if slot_of[out] == next_slot:
                next_slot += 1
            released[out] = False
            if last_read[out] < 0:  # dead store: slot reusable right away
                released[out] = True
                free.append(int(slot_of[out]))

    # Pinned rows follow the reusable region, ordered for streaming
    # writes: inputs, constants, register restores, then gate outputs in
    # schedule order, register captures, and finally undriven reads.
    order: List[int] = []
    order.extend(program.state_row(pi) for pi in program.input_nets)
    order.extend(int(r) for r in program.const1)
    order.extend(int(r) for r in program.dff_q)
    order.extend(out for out in outs if pinned[out])
    order.extend(int(r) for r in program.dff_d)
    order.extend(
        row for cell_reads in reads for row in cell_reads if pinned[row]
    )
    base = next_slot
    for row in order:
        row = int(row)
        if pinned[row] and slot_of[row] < 0:
            slot_of[row] = base
            base += 1
    for row in np.nonzero(pinned & (slot_of < 0))[0]:
        slot_of[row] = base
        base += 1
    return RowPlan(
        slot_of=slot_of, pinned=pinned, n_slots=int(base), orders=orders
    )


def _row_plan(
    program: GateProgram,
    pinned_rows: Optional[Iterable[int]] = None,
) -> RowPlan:
    """Memoized :func:`_compute_row_plan` (keyed on program + pin set)."""
    if pinned_rows is None:
        arr = None
        pin_key = "all"
    else:
        arr = np.unique(np.asarray(list(pinned_rows), dtype=np.int64))
        pin_key = hashlib.sha256(arr.tobytes()).hexdigest()[:16]
    key = (program.content_hash, pin_key)
    with _KERNEL_LOCK:
        plan = _ROW_PLANS.get(key)
        if plan is not None:
            _ROW_PLANS.move_to_end(key)
            return plan
    plan = _compute_row_plan(program, arr)
    with _KERNEL_LOCK:
        _ROW_PLANS[key] = plan
        while len(_ROW_PLANS) > _ROW_PLAN_CAP:
            _ROW_PLANS.popitem(last=False)
    return plan


# ---------------------------------------------------------------- codegen

#: cell type -> C expression over a[w] / b[w] / c[w] (in0/in1/in2).
_CELL_EXPR = {
    CellType.BUF: "a[w]",
    CellType.NOT: "~a[w]",
    CellType.AND: "a[w] & b[w]",
    CellType.NAND: "~(a[w] & b[w])",
    CellType.OR: "a[w] | b[w]",
    CellType.NOR: "~(a[w] | b[w])",
    CellType.XOR: "a[w] ^ b[w]",
    CellType.XNOR: "~(a[w] ^ b[w])",
    CellType.MUX: "(b[w] & ~a[w]) | (c[w] & a[w])",
}


def _emit_array(name: str, values: np.ndarray) -> str:
    body = ",".join(str(int(v)) for v in values)
    return f"static const int64_t {name}[] = {{{body}}};\n"


def generate_kernel_source(
    program: GateProgram, plan: Optional[RowPlan] = None
) -> str:
    """C source for one program: baked indices, fused cycle loop, pthreads.

    The kernel replicates :meth:`CompiledSimulator.run`'s cycle semantics
    exactly: stimulus into input rows, register outputs from captured
    state, level-major combinational ops, record at filter cycles,
    register capture -- with ``const1`` rows preset to all-ones.  Stimulus
    is pre-expanded by the caller to a dense
    ``(n_cycles, n_inputs, n_words)`` array so the whole run is one call.

    Execution is tiled: word columns are mutually independent, so the
    kernel replays the full cycle loop once per ``TILE``-word tile
    against a compact ``n_slots x TILE`` local state whose working set
    stays cache-resident; a partial last tile pads to ``TILE`` and simply
    never stores the pad columns.

    ``plan`` is the :class:`RowPlan` mapping program state rows to
    kernel slots (liveness-compacted; see :func:`_compute_row_plan`).
    ``None`` pins every row -- slot assignment is then a locality
    permutation and every row stays recordable.  Runtime ``rec_rows``
    passed to the kernel must already be kernel slots.
    """
    if plan is None:
        plan = _row_plan(program)

    def slots(rows: Iterable[int]) -> np.ndarray:
        mapped = plan.slot_of[np.asarray(list(rows), dtype=np.int64)]
        if mapped.size and int(mapped.min()) < 0:
            raise SimulationError(
                "internal: row plan left a referenced row unallocated"
            )
        return mapped

    lines: List[str] = []
    emit = lines.append
    emit(f"/* repro native kernel v{_CODEGEN_VERSION} for program "
         f"{program.content_hash} */\n")
    emit("#include <stdint.h>\n#include <stdlib.h>\n"
         "#include <string.h>\n#include <pthread.h>\n\n")

    n_in = len(program.input_nets)
    n_dff = int(program.dff_q.size)
    n_rows = max(plan.n_slots, 1)
    emit(f"#define N_IN {n_in}\n#define N_DFF {n_dff}\n"
         f"#define N_ROWS {n_rows}\n#define TILE {_TILE_WORDS}\n\n")
    if n_in:
        # Rows are state rows (slices remap net ids to compact rows).
        emit(_emit_array(
            "IN_ROWS",
            slots(program.state_row(pi) for pi in program.input_nets),
        ))
    if program.const1.size:
        emit(_emit_array("C1_ROWS", slots(program.const1)))
    if n_dff:
        emit(_emit_array("DFF_D", slots(program.dff_d)))
        emit(_emit_array("DFF_Q", slots(program.dff_q)))
    for g, op in enumerate(program.ops):
        # Emit each group through the plan's in-level permutation: cells
        # within a level are independent, and ordering them by operand
        # definition recency keeps hot slots in cache.  The liveness
        # allocation above was computed over this same order.
        order = plan.orders[g]
        emit(_emit_array(f"OP{g}_O", slots(op.out[order])))
        emit(_emit_array(f"OP{g}_A", slots(op.in0[order])))
        if op.in1.size:
            emit(_emit_array(f"OP{g}_B", slots(op.in1[order])))
        if op.in2.size:
            emit(_emit_array(f"OP{g}_C", slots(op.in2[order])))
    emit("\n")

    emit("static int run_range(const uint64_t *stim,\n"
         "    uint64_t *rec, const int64_t *rec_rows, int64_t n_rec,\n"
         "    const int64_t *rec_slot, int64_t n_cycles, int64_t nw,\n"
         "    int64_t w0, int64_t w1)\n{\n"
         "    int64_t c, i, k, t0;\n"
         "    uint64_t *loc = (uint64_t *)malloc(\n"
         "        (size_t)N_ROWS * TILE * sizeof(uint64_t));\n"
         "    if (!loc) return 1;\n")
    if n_dff:
        emit("    uint64_t *reg = (uint64_t *)malloc(\n"
             "        (size_t)(N_DFF ? N_DFF : 1) * TILE"
             " * sizeof(uint64_t));\n"
             "    if (!reg) { free(loc); return 1; }\n")
    emit("    for (t0 = w0; t0 < w1; t0 += TILE) {\n"
         "        int64_t tw = w1 - t0 < TILE ? w1 - t0 : TILE;\n"
         "        memset(loc, 0, (size_t)N_ROWS * TILE"
         " * sizeof(uint64_t));\n")
    if program.const1.size:
        emit(f"        for (i = 0; i < {int(program.const1.size)}; ++i) {{\n"
             "            uint64_t *d = loc + (size_t)C1_ROWS[i] * TILE;\n"
             "            for (k = 0; k < TILE; ++k) d[k] = ~(uint64_t)0;\n"
             "        }\n")
    if n_dff:
        emit("        memset(reg, 0, (size_t)N_DFF * TILE"
             " * sizeof(uint64_t));\n")
    emit("        for (c = 0; c < n_cycles; ++c) {\n")
    if n_in:
        emit("            const uint64_t *sc = stim"
             " + (size_t)c * N_IN * nw + t0;\n"
             "            for (i = 0; i < N_IN; ++i) {\n"
             "                const uint64_t *s = sc + (size_t)i * nw;\n"
             "                uint64_t *d = loc + (size_t)IN_ROWS[i] * TILE;\n"
             "                for (k = 0; k < tw; ++k) d[k] = s[k];\n"
             "            }\n")
    if n_dff:
        emit("            for (i = 0; i < N_DFF; ++i) {\n"
             "                uint64_t *d = loc + (size_t)DFF_Q[i] * TILE;\n"
             "                const uint64_t *r = reg + (size_t)i * TILE;\n"
             "                for (k = 0; k < TILE; ++k) d[k] = r[k];\n"
             "            }\n")
    for g, op in enumerate(program.ops):
        expr = _CELL_EXPR.get(op.cell_type)
        if expr is None:  # pragma: no cover - compile_netlist never emits
            raise SimulationError(
                f"cell type {op.cell_type} has no native lowering"
            )
        emit(f"            for (i = 0; i < {op.n_cells}; ++i) {{\n"
             f"                uint64_t *o = loc"
             f" + (size_t)OP{g}_O[i] * TILE;\n"
             f"                const uint64_t *a = loc"
             f" + (size_t)OP{g}_A[i] * TILE;\n")
        if op.in1.size:
            emit(f"                const uint64_t *b = loc"
                 f" + (size_t)OP{g}_B[i] * TILE;\n")
        if op.in2.size:
            emit(f"                const uint64_t *c_ = loc"
                 f" + (size_t)OP{g}_C[i] * TILE;\n")
        emit("                for (k = 0; k < TILE; ++k) "
             f"o[k] = {expr.replace('c[w]', 'c_[w]').replace('[w]', '[k]')};\n"
             "            }\n")
    emit("            if (n_rec > 0 && rec_slot[c] >= 0) {\n"
         "                int64_t slot = rec_slot[c];\n"
         "                for (i = 0; i < n_rec; ++i) {\n"
         "                    const uint64_t *s = loc\n"
         "                        + (size_t)rec_rows[i] * TILE;\n"
         "                    uint64_t *d = rec\n"
         "                        + ((size_t)slot * n_rec + (size_t)i) * nw"
         " + t0;\n"
         "                    for (k = 0; k < tw; ++k) d[k] = s[k];\n"
         "                }\n"
         "            }\n")
    if n_dff:
        emit("            for (i = 0; i < N_DFF; ++i) {\n"
             "                const uint64_t *s = loc"
             " + (size_t)DFF_D[i] * TILE;\n"
             "                uint64_t *r = reg + (size_t)i * TILE;\n"
             "                for (k = 0; k < TILE; ++k) r[k] = s[k];\n"
             "            }\n")
    emit("        }\n    }\n")
    if n_dff:
        emit("    free(reg);\n")
    emit("    free(loc);\n    return 0;\n}\n\n")

    emit(
        "typedef struct {\n"
        "    const uint64_t *stim; uint64_t *rec;\n"
        "    const int64_t *rec_rows; int64_t n_rec;\n"
        "    const int64_t *rec_slot; int64_t n_cycles; int64_t nw;\n"
        "    int64_t w0; int64_t w1; int status;\n"
        "} knl_job;\n\n"
        "static void *knl_worker(void *arg)\n{\n"
        "    knl_job *j = (knl_job *)arg;\n"
        "    j->status = run_range(j->stim, j->rec, j->rec_rows,\n"
        "        j->n_rec, j->rec_slot, j->n_cycles, j->nw, j->w0, j->w1);\n"
        "    return 0;\n}\n\n"
        "int repro_run(const uint64_t *stim, uint64_t *rec,\n"
        "    const int64_t *rec_rows, int64_t n_rec,\n"
        "    const int64_t *rec_slot, int64_t n_cycles, int64_t nw,\n"
        "    int64_t n_threads)\n{\n"
        f"    knl_job jobs[{_MAX_THREADS}];\n"
        f"    pthread_t tids[{_MAX_THREADS}];\n"
        f"    int created[{_MAX_THREADS}];\n"
        "    int64_t n_tiles, chunk, t, spawned = 0;\n"
        "    int status = 0;\n"
        "    n_tiles = (nw + TILE - 1) / TILE;\n"
        "    if (n_threads < 1) n_threads = 1;\n"
        "    if (n_threads > n_tiles) n_threads = n_tiles;\n"
        f"    if (n_threads > {_MAX_THREADS}) n_threads = {_MAX_THREADS};\n"
        "    if (n_threads <= 1)\n"
        "        return run_range(stim, rec, rec_rows, n_rec,\n"
        "            rec_slot, n_cycles, nw, 0, nw);\n"
        "    chunk = (n_tiles + n_threads - 1) / n_threads;\n"
        "    for (t = 0; t < n_threads; ++t) {\n"
        "        int64_t a = t * chunk * TILE, b = a + chunk * TILE;\n"
        "        if (a >= nw) break;\n"
        "        if (b > nw) b = nw;\n"
        "        jobs[spawned].stim = stim;\n"
        "        jobs[spawned].rec = rec;\n"
        "        jobs[spawned].rec_rows = rec_rows;\n"
        "        jobs[spawned].n_rec = n_rec;\n"
        "        jobs[spawned].rec_slot = rec_slot;\n"
        "        jobs[spawned].n_cycles = n_cycles;\n"
        "        jobs[spawned].nw = nw;\n"
        "        jobs[spawned].w0 = a; jobs[spawned].w1 = b;\n"
        "        jobs[spawned].status = 0;\n"
        "        ++spawned;\n"
        "    }\n"
        "    for (t = 1; t < spawned; ++t) {\n"
        "        created[t] = pthread_create(&tids[t], 0, knl_worker,\n"
        "            &jobs[t]) == 0;\n"
        "        if (!created[t])\n"
        "            knl_worker(&jobs[t]); /* degrade to inline */\n"
        "    }\n"
        "    knl_worker(&jobs[0]);\n"
        "    for (t = 1; t < spawned; ++t)\n"
        "        if (created[t]) pthread_join(tids[t], 0);\n"
        "    for (t = 0; t < spawned; ++t)\n"
        "        if (jobs[t].status) status = jobs[t].status;\n"
        "    return status;\n}\n"
    )
    return "".join(lines)


# ------------------------------------------------------- build + caching


class NativeKernelCacheInfo(NamedTuple):
    """Snapshot of the per-process loaded-kernel cache."""

    entries: int
    capacity: int
    hits: int
    misses: int
    builds: int


class _LoadedKernel(NamedTuple):
    lib: object
    so_path: str
    digest: str


#: dlopen'ed kernels, keyed by source digest.  Evicted entries are only
#: dereferenced (never dlclosed): a live simulator may still hold the
#: lib, and the handle count is bounded by the cache capacity anyway.
_KERNEL_CACHE: "OrderedDict[str, _LoadedKernel]" = OrderedDict()
_KERNEL_CACHE_SIZE = 32
_KERNEL_STATS = {"hits": 0, "misses": 0, "builds": 0}
_KERNEL_LOCK = threading.Lock()
_FFI = None


def native_kernel_cache_info() -> NativeKernelCacheInfo:
    """Entries, capacity and lifetime hit/miss/build counts."""
    with _KERNEL_LOCK:
        return NativeKernelCacheInfo(
            entries=len(_KERNEL_CACHE),
            capacity=_KERNEL_CACHE_SIZE,
            hits=_KERNEL_STATS["hits"],
            misses=_KERNEL_STATS["misses"],
            builds=_KERNEL_STATS["builds"],
        )


def clear_native_kernel_cache() -> None:
    """Drop loaded-kernel references and reset statistics (tests)."""
    with _KERNEL_LOCK:
        _KERNEL_CACHE.clear()
        _KERNEL_STATS.update(hits=0, misses=0, builds=0)


def _ffi():
    global _FFI
    if _FFI is None:
        from cffi import FFI

        ffi = FFI()
        ffi.cdef(_CDEF)
        _FFI = ffi
    return _FFI


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        path = configured
    else:
        path = os.path.join(
            os.path.expanduser("~"), ".cache", "repro-native"
        )
    try:
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        fallback = os.path.join(tempfile.gettempdir(), "repro-native")
        os.makedirs(fallback, exist_ok=True)
        return fallback


#: Whether the toolchain accepts ``-march=native`` (probed once; the
#: flag unlocks SIMD on the gate loops but is not universally supported).
_MARCH_NATIVE: Optional[bool] = None


def _cc_flags(cc: str) -> List[str]:
    global _MARCH_NATIVE
    flags = ["-O3", "-shared", "-fPIC", "-pthread"]
    if _MARCH_NATIVE is None:
        probe = os.path.join(
            tempfile.gettempdir(), f".repro-march-{os.getpid()}.c"
        )
        probe_so = probe[:-2] + ".so"
        try:
            with open(probe, "w") as handle:
                handle.write("int repro_probe(void){return 0;}\n")
            result = subprocess.run(
                [cc, "-march=native", *flags, "-o", probe_so, probe],
                capture_output=True, timeout=60,
            )
            _MARCH_NATIVE = result.returncode == 0
        except (OSError, subprocess.TimeoutExpired):
            _MARCH_NATIVE = False
        finally:
            for path in (probe, probe_so):
                try:
                    os.unlink(path)
                except OSError:
                    pass
    return (["-march=native"] if _MARCH_NATIVE else []) + flags


def _compile_source(source: str, digest: str, cc: str,
                    flags: List[str]) -> str:
    """Compile generated C to a shared object; returns the .so path.

    The on-disk artifact is keyed by the source+flags digest so
    concurrent worker processes share builds; writes go to a temp name
    and move into place atomically, so a racing builder at worst
    compiles twice.
    """
    directory = _cache_dir()
    so_path = os.path.join(directory, f"k_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    c_path = os.path.join(directory, f"k_{digest}.c")
    tmp_so = os.path.join(directory, f".k_{digest}.{os.getpid()}.so")
    with open(c_path, "w") as handle:
        handle.write(source)
    cmd = [cc, *flags, "-o", tmp_so, c_path]
    try:
        result = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise SimulationError(
            f"native kernel build failed to invoke {cc}: {exc}"
        ) from exc
    if result.returncode != 0:
        tail = (result.stderr or result.stdout or "").strip()[-2000:]
        raise SimulationError(
            f"native kernel build failed (exit {result.returncode}): {tail}"
        )
    os.replace(tmp_so, so_path)
    _KERNEL_STATS["builds"] += 1
    return so_path


def build_kernel(
    program: GateProgram, plan: Optional[RowPlan] = None
) -> _LoadedKernel:
    """Generate, compile (or reuse) and dlopen the kernel for a program.

    ``plan`` selects the state-slot assignment (default: pin-all).
    Raises :class:`SimulationError` when the toolchain is missing, the
    compile fails, or the engine is disabled via ``REPRO_NATIVE_DISABLE``.
    """
    reason = native_unavailable_reason()
    if reason is not None:
        raise SimulationError(f"native engine unavailable: {reason}")
    cc = _find_cc()
    if cc is None:  # pragma: no cover - already covered by the reason check
        raise SimulationError("native kernel build failed: no C compiler")
    flags = _cc_flags(cc)
    source = generate_kernel_source(program, plan)
    digest = hashlib.sha256(
        (source + "\0" + " ".join(flags)).encode()
    ).hexdigest()[:20]
    with _KERNEL_LOCK:
        cached = _KERNEL_CACHE.get(digest)
        if cached is not None:
            _KERNEL_CACHE.move_to_end(digest)
            _KERNEL_STATS["hits"] += 1
            return cached
        _KERNEL_STATS["misses"] += 1
        so_path = _compile_source(source, digest, cc, flags)
        try:
            lib = _ffi().dlopen(so_path)
        except OSError as exc:
            raise SimulationError(
                f"native kernel dlopen failed for {so_path}: {exc}"
            ) from exc
        kernel = _LoadedKernel(lib=lib, so_path=so_path, digest=digest)
        _KERNEL_CACHE[digest] = kernel
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_SIZE:
            _KERNEL_CACHE.popitem(last=False)
        return kernel


# ------------------------------------------------------ pipeline kernel

#: CellType -> opcode of the generic scheduled-cone interpreter.
_CELL_CODE = {
    CellType.BUF: 0,
    CellType.NOT: 1,
    CellType.AND: 2,
    CellType.NAND: 3,
    CellType.OR: 4,
    CellType.NOR: 5,
    CellType.XOR: 6,
    CellType.XNOR: 7,
    CellType.MUX: 8,
}


def _pipeline_source() -> str:
    """C source of the netlist-independent pipeline-support kernel.

    One shared object, compiled once per toolchain, provides:

    ``repro_stimgen``
        Interprets a :class:`repro.leakage.stimplan.StimulusPlan` op
        stream against an embedded PCG64 generator that replicates
        numpy's bit generator word for word (128-bit LCG step, then
        XSL-RR output of the *new* state), filling the dense stimulus
        buffer the simulation kernels consume.  ``NZ8`` reproduces
        :func:`repro.leakage.traces.random_nonzero_byte` exactly,
        including the merge order and the give-up-after-64-rounds
        failure (status 2) without a final recheck.

    ``repro_extract``
        Fused bit-plane extraction + histogram accumulation: builds
        per-lane observation keys from recorded (cycle, net) planes
        (bit ``b`` of word ``w`` is lane ``w*64+b``), optionally
        SplitMix64-bucketed exactly like ``_mix_hash``, and bumps dense
        per-test count tables.  Pad lanes beyond ``n_lanes`` are never
        counted.  Threaded over tests (disjoint count rows).

    ``repro_sched_run``
        Data-driven interpreter for per-cycle scheduled cones
        (:class:`repro.netlist.slice.ScheduledSimulator` semantics:
        validate scheduled nets against their declared constants, drive
        needed inputs, restore registers, run the level-major active
        ops, record roots, capture next-cycle registers), tiled and
        threaded over word columns like the generated static kernels.

    Requires ``__uint128_t``; on toolchains without it the build fails
    and the pipeline degrades to the Python path (the static native
    kernels are unaffected).
    """
    tile = _TILE_WORDS
    return f"""/* repro native pipeline support v{_PIPELINE_VERSION} */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <pthread.h>

#define TILE {tile}
#define MAXT {_MAX_THREADS}

typedef __uint128_t u128;
typedef struct {{ u128 state; u128 inc; }} pcg64_t;

/* numpy PCG64: state = state * MUL + inc, output XSL-RR of new state */
static uint64_t pcg64_next(pcg64_t *g)
{{
    uint64_t hi, lo, x;
    unsigned rot;
    g->state = g->state
        * (((u128)0x2360ed051fc65da4ULL << 64) | 0x4385df649fccf645ULL)
        + g->inc;
    hi = (uint64_t)(g->state >> 64);
    lo = (uint64_t)g->state;
    x = hi ^ lo;
    rot = (unsigned)(hi >> 58);
    return (x >> rot) | (x << ((64 - rot) & 63));
}}

int repro_stimgen(uint64_t *stim, int64_t n_slots,
    const int64_t *ops, int64_t n_ops,
    const int64_t *row_slot, int64_t n_rows,
    const uint8_t *sched, int64_t period,
    uint64_t state_hi, uint64_t state_lo,
    uint64_t inc_hi, uint64_t inc_lo,
    int64_t n_cycles, int64_t nw)
{{
    pcg64_t g;
    uint64_t **rowp;
    uint64_t *scratch, *zmask;
    int64_t c, r, o, w;
    int i;
    g.state = ((u128)state_hi << 64) | state_lo;
    g.inc = ((u128)inc_hi << 64) | inc_lo;
    if (n_rows < 1 || n_ops < 1)
        return 0;
    scratch = (uint64_t *)malloc((size_t)n_rows * nw * sizeof(uint64_t));
    rowp = (uint64_t **)malloc((size_t)n_rows * sizeof(uint64_t *));
    zmask = (uint64_t *)malloc((size_t)nw * sizeof(uint64_t));
    if (!scratch || !rowp || !zmask) {{
        free(scratch); free(rowp); free(zmask);
        return 1;
    }}
    for (c = 0; c < n_cycles; ++c) {{
        int64_t step = c % period;
        for (r = 0; r < n_rows; ++r)
            rowp[r] = row_slot[r] >= 0
                ? stim + ((size_t)c * n_slots + row_slot[r]) * nw
                : scratch + (size_t)r * nw;
        for (o = 0; o < n_ops; ++o) {{
            int64_t code = ops[4 * o], dst = ops[4 * o + 1];
            int64_t a = ops[4 * o + 2], b = ops[4 * o + 3];
            uint64_t *d = rowp[dst];
            uint64_t v;
            switch (code) {{
            case 0: /* DRAW */
                for (w = 0; w < nw; ++w) d[w] = pcg64_next(&g);
                break;
            case 1: /* CONST col=a */
                v = sched[(size_t)a * period + step] ? ~(uint64_t)0 : 0;
                for (w = 0; w < nw; ++w) d[w] = v;
                break;
            case 2: /* COPY a */
                memcpy(d, rowp[a], (size_t)nw * sizeof(uint64_t));
                break;
            case 3: /* XOR a b */
                for (w = 0; w < nw; ++w) d[w] = rowp[a][w] ^ rowp[b][w];
                break;
            case 4: /* XORC a col=b */
                v = sched[(size_t)b * period + step] ? ~(uint64_t)0 : 0;
                for (w = 0; w < nw; ++w) d[w] = rowp[a][w] ^ v;
                break;
            case 5: {{ /* NZ8 rows dst..dst+7 */
                uint64_t *pl[8];
                int64_t round_;
                int ok = 0;
                for (i = 0; i < 8; ++i) pl[i] = rowp[dst + i];
                for (i = 0; i < 8; ++i)
                    for (w = 0; w < nw; ++w) pl[i][w] = pcg64_next(&g);
                for (round_ = 0; round_ < 64; ++round_) {{
                    uint64_t any = 0;
                    for (w = 0; w < nw; ++w) {{
                        uint64_t zm = ~(pl[0][w] | pl[1][w] | pl[2][w]
                            | pl[3][w] | pl[4][w] | pl[5][w]
                            | pl[6][w] | pl[7][w]);
                        zmask[w] = zm;
                        any |= zm;
                    }}
                    if (!any) {{ ok = 1; break; }}
                    for (i = 0; i < 8; ++i)
                        for (w = 0; w < nw; ++w)
                            pl[i][w] |= pcg64_next(&g) & zmask[w];
                }}
                if (!ok) {{
                    free(scratch); free(rowp); free(zmask);
                    return 2;
                }}
                break;
            }}
            default:
                free(scratch); free(rowp); free(zmask);
                return 4;
            }}
        }}
    }}
    free(scratch); free(rowp); free(zmask);
    return 0;
}}

/* SplitMix64 finalizer; must match repro.leakage.evaluator._mix_hash. */
static uint64_t mix64(uint64_t k)
{{
    k ^= k >> 30;
    k *= 0xBF58476D1CE4E5B9ULL;
    k ^= k >> 27;
    k *= 0x94D049BB133111EBULL;
    k ^= k >> 31;
    return k;
}}

typedef struct {{
    const uint64_t *rec;
    int64_t nw, n_lanes;
    const int64_t *test_off, *seg_off, *bit_plane, *bit_pos;
    const uint8_t *hashed;
    const int64_t *cnt_off;
    int64_t hash_shift, t0, t1;
    int64_t *counts;
    uint64_t *keys;
    int status;
}} ext_job;

/* In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3).  With
 * LSB-first bit numbering this flips along the anti-diagonal: after the
 * call, bit j of a[i] is the old bit (63-i) of a[63-j].  Callers index
 * rows as a[63-e] on load and a[63-b] on read to get the plain
 * transpose; the payoff is ~6*64 word ops per 64-lane block instead of
 * the 64*64 single-bit gathers of the scalar path. */
static void transpose64(uint64_t a[64])
{{
    int j, k;
    uint64_t m = 0x00000000FFFFFFFFULL, t;
    for (j = 32; j != 0; j = j >> 1, m = m ^ (m << j)) {{
        for (k = 0; k < 64; k = (k + j + 1) & ~j) {{
            t = (a[k] ^ (a[k | j] >> j)) & m;
            a[k] = a[k] ^ t;
            a[k | j] = a[k | j] ^ (t << j);
        }}
    }}
}}

/* A segment narrower than this is cheaper bit-by-bit than through the
 * 64x64 transpose (whose cost is flat in the bit count). */
#define EXT_TRANSPOSE_MIN_BITS 8

/* Widest segment handled by the popcount histogram: it enumerates all
 * 2^nbits key values, so its cost grows exponentially while the
 * transpose path stays flat. */
#define EXT_POPCOUNT_MAX_BITS 7

/* Histogram one 64-lane word block of an unhashed contiguous segment
 * without ever materializing per-lane keys: split the lane mask by each
 * bit plane in turn, so after nbits rounds m[k] holds exactly the lanes
 * whose key is k, and each bin count is one popcount. */
static void ext_pop_hist(const uint64_t *pw, int64_t nbits,
    uint64_t lanemask, int64_t *cnt)
{{
    uint64_t m[1 << EXT_POPCOUNT_MAX_BITS];
    int64_t size = 1, e, k;
    m[0] = lanemask;
    for (e = 0; e < nbits; ++e) {{
        for (k = size - 1; k >= 0; --k) {{
            uint64_t v = m[k];
            m[k + size] = v & pw[e];
            m[k] = v & ~pw[e];
        }}
        size <<= 1;
    }}
    for (k = 0; k < size; ++k)
        cnt[k] += (int64_t)__builtin_popcountll(m[k]);
}}

static void ext_range(ext_job *j)
{{
    int64_t t, s, e, w;
    uint64_t tr[64];
    const uint64_t *planes[64];
    int64_t pos[64];
    for (t = j->t0; t < j->t1; ++t) {{
        int64_t *cnt = j->counts + j->cnt_off[t];
        int hash = j->hashed[t];
        for (s = j->test_off[t]; s < j->test_off[t + 1]; ++s) {{
            int64_t s0 = j->seg_off[s], s1 = j->seg_off[s + 1];
            int64_t nbits = s1 - s0;
            int contiguous = nbits <= 64;
            for (e = s0; contiguous && e < s1; ++e)
                if (j->bit_pos[e] != e - s0) contiguous = 0;
            if (contiguous && !hash
                && nbits <= EXT_POPCOUNT_MAX_BITS
                && ((int64_t)1 << nbits)
                    <= j->cnt_off[t + 1] - j->cnt_off[t]) {{
                /* Narrow unhashed segments: the key space is small, so
                 * bin the lanes set-algebraically and popcount. */
                for (e = s0; e < s1; ++e)
                    planes[e - s0] =
                        j->rec + (size_t)j->bit_plane[e] * j->nw;
                for (w = 0; w < j->nw; ++w) {{
                    int64_t base = w * 64;
                    int64_t lim = j->n_lanes - base;
                    uint64_t lanemask;
                    if (lim > 64) lim = 64;
                    lanemask = lim == 64
                        ? ~(uint64_t)0
                        : (((uint64_t)1 << lim) - 1);
                    for (e = 0; e < nbits; ++e)
                        tr[e] = planes[e][w];
                    ext_pop_hist(tr, nbits, lanemask, cnt);
                }}
                continue;
            }}
            if (contiguous && nbits >= EXT_TRANSPOSE_MIN_BITS) {{
                /* Wide segments (the evaluators always emit contiguous
                 * positions 0..k-1): transpose each 64-lane block so
                 * the lane keys fall out whole. */
                for (w = 0; w < j->nw; ++w) {{
                    int64_t base = w * 64;
                    int64_t lim = j->n_lanes - base;
                    int b;
                    if (lim > 64) lim = 64;
                    for (e = 0; e < nbits; ++e)
                        tr[63 - e] = j->rec[
                            (size_t)j->bit_plane[s0 + e] * j->nw + w];
                    for (e = nbits; e < 64; ++e)
                        tr[63 - e] = 0;
                    transpose64(tr);
                    for (b = 0; b < lim; ++b) {{
                        uint64_t key = tr[63 - b];
                        if (hash) key = mix64(key) >> j->hash_shift;
                        cnt[key]++;
                    }}
                }}
                continue;
            }}
            if (nbits > 64) {{
                j->status = 5;
                return;
            }}
            /* Narrow or non-contiguous segments: fuse key assembly and
             * histogramming per 64-lane block -- the plane words stay
             * in L1 across the block and no per-lane key buffer is
             * touched. */
            for (e = s0; e < s1; ++e) {{
                planes[e - s0] =
                    j->rec + (size_t)j->bit_plane[e] * j->nw;
                pos[e - s0] = j->bit_pos[e];
            }}
            for (w = 0; w < j->nw; ++w) {{
                int64_t base = w * 64;
                int64_t lim = j->n_lanes - base;
                int b;
                if (lim > 64) lim = 64;
                for (b = 0; b < lim; ++b) {{
                    uint64_t key = 0;
                    for (e = 0; e < nbits; ++e)
                        key |= ((planes[e][w] >> b) & 1) << pos[e];
                    if (hash) key = mix64(key) >> j->hash_shift;
                    cnt[key]++;
                }}
            }}
        }}
    }}
    j->status = 0;
}}

static void *ext_worker(void *arg)
{{
    ext_range((ext_job *)arg);
    return 0;
}}

int repro_extract(const uint64_t *rec, int64_t nw, int64_t n_lanes,
    const int64_t *test_off, int64_t n_tests,
    const int64_t *seg_off,
    const int64_t *bit_plane, const int64_t *bit_pos,
    const uint8_t *hashed, const int64_t *cnt_off,
    int64_t hash_shift, int64_t *counts,
    uint64_t *keybuf, int64_t n_threads)
{{
    ext_job jobs[MAXT];
    pthread_t tids[MAXT];
    int created[MAXT];
    int64_t chunk, t, spawned = 0;
    int status = 0;
    if (n_tests < 1) return 0;
    if (n_threads < 1) n_threads = 1;
    if (n_threads > n_tests) n_threads = n_tests;
    if (n_threads > MAXT) n_threads = MAXT;
    chunk = (n_tests + n_threads - 1) / n_threads;
    for (t = 0; t < n_threads; ++t) {{
        int64_t a = t * chunk, b = a + chunk;
        if (a >= n_tests) break;
        if (b > n_tests) b = n_tests;
        jobs[spawned].rec = rec;
        jobs[spawned].nw = nw;
        jobs[spawned].n_lanes = n_lanes;
        jobs[spawned].test_off = test_off;
        jobs[spawned].seg_off = seg_off;
        jobs[spawned].bit_plane = bit_plane;
        jobs[spawned].bit_pos = bit_pos;
        jobs[spawned].hashed = hashed;
        jobs[spawned].cnt_off = cnt_off;
        jobs[spawned].hash_shift = hash_shift;
        jobs[spawned].t0 = a;
        jobs[spawned].t1 = b;
        jobs[spawned].counts = counts;
        jobs[spawned].keys = keybuf + (size_t)spawned * n_lanes;
        jobs[spawned].status = 0;
        ++spawned;
    }}
    for (t = 1; t < spawned; ++t) {{
        created[t] = pthread_create(&tids[t], 0, ext_worker,
            &jobs[t]) == 0;
        if (!created[t])
            ext_worker(&jobs[t]);
    }}
    ext_worker(&jobs[0]);
    for (t = 1; t < spawned; ++t)
        if (created[t]) pthread_join(tids[t], 0);
    for (t = 0; t < spawned; ++t)
        if (jobs[t].status) status = jobs[t].status;
    return status;
}}

typedef struct {{
    const uint64_t *stim;
    uint64_t *rec;
    const int64_t *rec_net;
    int64_t n_rec;
    const int64_t *rec_slot;
    const int64_t *in_off, *in_slot, *in_net;
    const int64_t *chk_off, *chk_slot;
    const uint8_t *chk_bit;
    const int64_t *rd_off, *rd_net, *rd_reg;
    const int64_t *cap_off, *cap_net, *cap_reg;
    const int64_t *op_off, *op_code, *op_out, *op_a, *op_b, *op_c;
    const int64_t *const1;
    int64_t n_const1, n_nets, n_dffs, n_slots, n_cycles, nw;
    int64_t w0, w1;
    int status;
}} sch_job;

static int sch_range(sch_job *j)
{{
    int64_t nw = j->nw, t0, c, i, k;
    uint64_t *st = (uint64_t *)malloc(
        (size_t)(j->n_nets ? j->n_nets : 1) * TILE * sizeof(uint64_t));
    uint64_t *reg = (uint64_t *)malloc(
        (size_t)(j->n_dffs ? j->n_dffs : 1) * TILE * sizeof(uint64_t));
    if (!st || !reg) {{
        free(st); free(reg);
        return 1;
    }}
    for (t0 = j->w0; t0 < j->w1; t0 += TILE) {{
        int64_t tw = j->w1 - t0 < TILE ? j->w1 - t0 : TILE;
        memset(st, 0, (size_t)j->n_nets * TILE * sizeof(uint64_t));
        memset(reg, 0,
            (size_t)(j->n_dffs ? j->n_dffs : 1) * TILE
            * sizeof(uint64_t));
        for (i = 0; i < j->n_const1; ++i) {{
            uint64_t *d = st + (size_t)j->const1[i] * TILE;
            for (k = 0; k < TILE; ++k) d[k] = ~(uint64_t)0;
        }}
        for (c = 0; c < j->n_cycles; ++c) {{
            for (i = j->chk_off[c]; i < j->chk_off[c + 1]; ++i) {{
                const uint64_t *s = j->stim
                    + ((size_t)c * j->n_slots + j->chk_slot[i]) * nw
                    + t0;
                uint64_t v = j->chk_bit[i] ? ~(uint64_t)0 : 0;
                for (k = 0; k < tw; ++k)
                    if (s[k] != v) {{
                        free(st); free(reg);
                        return 3;
                    }}
            }}
            for (i = j->in_off[c]; i < j->in_off[c + 1]; ++i) {{
                const uint64_t *s = j->stim
                    + ((size_t)c * j->n_slots + j->in_slot[i]) * nw
                    + t0;
                uint64_t *d = st + (size_t)j->in_net[i] * TILE;
                for (k = 0; k < tw; ++k) d[k] = s[k];
            }}
            for (i = j->rd_off[c]; i < j->rd_off[c + 1]; ++i) {{
                uint64_t *d = st + (size_t)j->rd_net[i] * TILE;
                const uint64_t *r = reg + (size_t)j->rd_reg[i] * TILE;
                for (k = 0; k < TILE; ++k) d[k] = r[k];
            }}
            for (i = j->op_off[c]; i < j->op_off[c + 1]; ++i) {{
                uint64_t *o = st + (size_t)j->op_out[i] * TILE;
                const uint64_t *a = st + (size_t)j->op_a[i] * TILE;
                const uint64_t *b = st + (size_t)j->op_b[i] * TILE;
                const uint64_t *m = st + (size_t)j->op_c[i] * TILE;
                switch (j->op_code[i]) {{
                case 0: for (k = 0; k < TILE; ++k) o[k] = a[k]; break;
                case 1: for (k = 0; k < TILE; ++k) o[k] = ~a[k]; break;
                case 2: for (k = 0; k < TILE; ++k)
                            o[k] = a[k] & b[k];
                        break;
                case 3: for (k = 0; k < TILE; ++k)
                            o[k] = ~(a[k] & b[k]);
                        break;
                case 4: for (k = 0; k < TILE; ++k)
                            o[k] = a[k] | b[k];
                        break;
                case 5: for (k = 0; k < TILE; ++k)
                            o[k] = ~(a[k] | b[k]);
                        break;
                case 6: for (k = 0; k < TILE; ++k)
                            o[k] = a[k] ^ b[k];
                        break;
                case 7: for (k = 0; k < TILE; ++k)
                            o[k] = ~(a[k] ^ b[k]);
                        break;
                case 8: for (k = 0; k < TILE; ++k)
                            o[k] = (b[k] & ~a[k]) | (m[k] & a[k]);
                        break;
                default:
                    free(st); free(reg);
                    return 4;
                }}
            }}
            if (j->n_rec > 0 && j->rec_slot[c] >= 0) {{
                int64_t slot = j->rec_slot[c];
                for (i = 0; i < j->n_rec; ++i) {{
                    const uint64_t *s =
                        st + (size_t)j->rec_net[i] * TILE;
                    uint64_t *d = j->rec
                        + ((size_t)slot * j->n_rec + (size_t)i) * nw
                        + t0;
                    for (k = 0; k < tw; ++k) d[k] = s[k];
                }}
            }}
            for (i = j->cap_off[c]; i < j->cap_off[c + 1]; ++i) {{
                const uint64_t *s = st + (size_t)j->cap_net[i] * TILE;
                uint64_t *r = reg + (size_t)j->cap_reg[i] * TILE;
                for (k = 0; k < TILE; ++k) r[k] = s[k];
            }}
        }}
    }}
    free(st); free(reg);
    return 0;
}}

static void *sch_worker(void *arg)
{{
    sch_job *j = (sch_job *)arg;
    j->status = sch_range(j);
    return 0;
}}

int repro_sched_run(const uint64_t *stim, uint64_t *rec,
    const int64_t *rec_net, int64_t n_rec, const int64_t *rec_slot,
    const int64_t *in_off, const int64_t *in_slot, const int64_t *in_net,
    const int64_t *chk_off, const int64_t *chk_slot,
    const uint8_t *chk_bit,
    const int64_t *rd_off, const int64_t *rd_net, const int64_t *rd_reg,
    const int64_t *cap_off, const int64_t *cap_net,
    const int64_t *cap_reg,
    const int64_t *op_off, const int64_t *op_code, const int64_t *op_out,
    const int64_t *op_a, const int64_t *op_b, const int64_t *op_c,
    const int64_t *const1, int64_t n_const1,
    int64_t n_nets, int64_t n_dffs, int64_t n_slots,
    int64_t n_cycles, int64_t nw, int64_t n_threads)
{{
    sch_job jobs[MAXT];
    pthread_t tids[MAXT];
    int created[MAXT];
    int64_t n_tiles, chunk, t, spawned = 0;
    int status = 0;
    n_tiles = (nw + TILE - 1) / TILE;
    if (n_threads < 1) n_threads = 1;
    if (n_threads > n_tiles) n_threads = n_tiles;
    if (n_threads > MAXT) n_threads = MAXT;
    chunk = (n_tiles + n_threads - 1) / n_threads;
    for (t = 0; t < n_threads; ++t) {{
        int64_t a = t * chunk * TILE, b = a + chunk * TILE;
        if (a >= nw) break;
        if (b > nw) b = nw;
        jobs[spawned].stim = stim;
        jobs[spawned].rec = rec;
        jobs[spawned].rec_net = rec_net;
        jobs[spawned].n_rec = n_rec;
        jobs[spawned].rec_slot = rec_slot;
        jobs[spawned].in_off = in_off;
        jobs[spawned].in_slot = in_slot;
        jobs[spawned].in_net = in_net;
        jobs[spawned].chk_off = chk_off;
        jobs[spawned].chk_slot = chk_slot;
        jobs[spawned].chk_bit = chk_bit;
        jobs[spawned].rd_off = rd_off;
        jobs[spawned].rd_net = rd_net;
        jobs[spawned].rd_reg = rd_reg;
        jobs[spawned].cap_off = cap_off;
        jobs[spawned].cap_net = cap_net;
        jobs[spawned].cap_reg = cap_reg;
        jobs[spawned].op_off = op_off;
        jobs[spawned].op_code = op_code;
        jobs[spawned].op_out = op_out;
        jobs[spawned].op_a = op_a;
        jobs[spawned].op_b = op_b;
        jobs[spawned].op_c = op_c;
        jobs[spawned].const1 = const1;
        jobs[spawned].n_const1 = n_const1;
        jobs[spawned].n_nets = n_nets;
        jobs[spawned].n_dffs = n_dffs;
        jobs[spawned].n_slots = n_slots;
        jobs[spawned].n_cycles = n_cycles;
        jobs[spawned].nw = nw;
        jobs[spawned].w0 = a;
        jobs[spawned].w1 = b;
        jobs[spawned].status = 0;
        ++spawned;
    }}
    if (spawned == 1)
        return sch_range(&jobs[0]);
    for (t = 1; t < spawned; ++t) {{
        created[t] = pthread_create(&tids[t], 0, sch_worker,
            &jobs[t]) == 0;
        if (!created[t])
            sch_worker(&jobs[t]);
    }}
    sch_worker(&jobs[0]);
    for (t = 1; t < spawned; ++t)
        if (created[t]) pthread_join(tids[t], 0);
    for (t = 0; t < spawned; ++t)
        if (jobs[t].status) status = jobs[t].status;
    return status;
}}
"""


_PIPE_FFI = None
_PIPELINE_KERNEL: Optional[_LoadedKernel] = None
_PIPELINE_REASON: Optional[str] = None
_PIPELINE_TRIED = False


def _pipe_ffi():
    global _PIPE_FFI
    if _PIPE_FFI is None:
        from cffi import FFI

        ffi = FFI()
        ffi.cdef(_PIPE_CDEF)
        _PIPE_FFI = ffi
    return _PIPE_FFI


def build_pipeline_kernel() -> _LoadedKernel:
    """Compile (or reuse) and dlopen the generic pipeline kernel.

    The source is netlist-independent, so one shared object serves every
    program; it shares the on-disk cache with the generated kernels.
    Raises :class:`SimulationError` when the toolchain is missing or the
    compile fails (e.g. no ``__uint128_t``); the failure reason is
    memoized and surfaced via :func:`pipeline_unavailable_reason`.
    """
    global _PIPELINE_KERNEL, _PIPELINE_REASON, _PIPELINE_TRIED
    reason = native_unavailable_reason()
    if reason is not None:
        raise SimulationError(f"native engine unavailable: {reason}")
    with _KERNEL_LOCK:
        if _PIPELINE_KERNEL is not None:
            return _PIPELINE_KERNEL
        if _PIPELINE_TRIED and _PIPELINE_REASON is not None:
            raise SimulationError(
                f"native pipeline unavailable: {_PIPELINE_REASON}"
            )
    cc = _find_cc()
    if cc is None:  # pragma: no cover - covered by the reason check
        raise SimulationError("native pipeline build failed: no C compiler")
    flags = _cc_flags(cc)
    source = _pipeline_source()
    digest = hashlib.sha256(
        (source + "\0" + " ".join(flags)).encode()
    ).hexdigest()[:20]
    try:
        so_path = _compile_source(source, digest, cc, flags)
        lib = _pipe_ffi().dlopen(so_path)
    except (SimulationError, OSError) as exc:
        with _KERNEL_LOCK:
            _PIPELINE_TRIED = True
            _PIPELINE_REASON = str(exc)
        raise SimulationError(
            f"native pipeline unavailable: {exc}"
        ) from exc
    kernel = _LoadedKernel(lib=lib, so_path=so_path, digest=digest)
    with _KERNEL_LOCK:
        _PIPELINE_TRIED = True
        _PIPELINE_REASON = None
        _PIPELINE_KERNEL = kernel
    return kernel


def pipeline_unavailable_reason() -> Optional[str]:
    """None when the in-kernel pipeline is usable, else why not."""
    reason = native_unavailable_reason()
    if reason is not None:
        return reason
    try:
        build_pipeline_kernel()
    except SimulationError as exc:
        return str(exc)
    return None


def pipeline_available() -> bool:
    """True when stimgen/extract/scheduled-run can execute in C."""
    return pipeline_unavailable_reason() is None


class CountSpec(NamedTuple):
    """One histogram test for the fused extraction kernel.

    ``segments`` is a tuple of key segments; each segment is a tuple of
    ``(cycle, net, position)`` bit sources OR'ed into the per-lane key
    (``key |= bit << position``), and every segment's keys accumulate
    into the same count table (the histogram of a concatenation is the
    sum of per-segment histograms).  ``hashed`` applies the SplitMix64
    bucketing of ``repro.leakage.evaluator._mix_hash``; ``n_bins`` is
    the dense table width (``1 << key_bits``).
    """

    segments: tuple
    hashed: bool
    n_bins: int


def _stimgen_dense(
    kernel: _LoadedKernel,
    plan,
    slot_of_net,
    n_slots: int,
    n_cycles: int,
    n_words: int,
) -> np.ndarray:
    """Run a stimulus plan in C into a dense (n_cycles, slots, nw) array.

    ``slot_of_net`` maps net id -> stimulus slot; plan rows driving nets
    without a slot (cone-sliced-away inputs) still execute -- their
    draws consume the PCG64 stream exactly as in Python -- but land in
    kernel scratch.
    """
    state, inc = plan.rng_state()
    row_slot = np.asarray(
        [
            slot_of_net.get(net, -1) if net >= 0 else -1
            for net in plan.row_nets
        ],
        dtype=np.int64,
    )
    stim = np.zeros((n_cycles, max(n_slots, 1), n_words), np.uint64)
    sched = plan.sched
    if not sched.size:
        sched = np.zeros(1, dtype=np.uint8)
    ffi = _pipe_ffi()
    mask = (1 << 64) - 1
    status = kernel.lib.repro_stimgen(
        ffi.cast("uint64_t *", stim.ctypes.data),
        max(n_slots, 1),
        ffi.cast("int64_t *", plan.ops.ctypes.data),
        len(plan.ops),
        ffi.cast("int64_t *", row_slot.ctypes.data),
        plan.n_rows,
        ffi.cast("uint8_t *", np.ascontiguousarray(sched).ctypes.data),
        plan.period,
        (state >> 64) & mask,
        state & mask,
        (inc >> 64) & mask,
        inc & mask,
        n_cycles,
        n_words,
    )
    if status == 2:
        raise SimulationError(
            "non-zero byte rejection sampling did not converge"
        )
    if status != 0:
        raise SimulationError(
            f"native stimulus generation failed (status {status})"
        )
    return stim


def _extract_counts(
    kernel: _LoadedKernel,
    rec: np.ndarray,
    rec_slot: np.ndarray,
    record_index,
    n_rec: int,
    n_lanes: int,
    n_words: int,
    tests,
    hash_bits: int,
    n_threads: int,
) -> "list[np.ndarray]":
    """Fused bit-plane extraction + dense histogram counts in C.

    ``tests`` is a sequence of :class:`CountSpec`; the result is one
    int64 counts array (length ``spec.n_bins``) per test, ready for
    ``numpy.bincount``-compatible consumers.
    """
    test_off = [0]
    seg_off = [0]
    bit_plane: List[int] = []
    bit_pos: List[int] = []
    hashed = np.zeros(max(len(tests), 1), dtype=np.uint8)
    cnt_off = np.zeros(len(tests) + 1, dtype=np.int64)
    for index, spec in enumerate(tests):
        for segment in spec.segments:
            for cycle, net, position in segment:
                slot = int(rec_slot[cycle]) if 0 <= cycle < len(
                    rec_slot
                ) else -1
                rec_idx = record_index.get(net, -1)
                if slot < 0 or rec_idx < 0:
                    raise SimulationError(
                        f"count spec references unrecorded "
                        f"(cycle {cycle}, net {net})"
                    )
                bit_plane.append(slot * n_rec + rec_idx)
                bit_pos.append(int(position))
            seg_off.append(len(bit_plane))
        test_off.append(len(seg_off) - 1)
        hashed[index] = 1 if spec.hashed else 0
        cnt_off[index + 1] = cnt_off[index] + int(spec.n_bins)
    test_off_arr = np.asarray(test_off, dtype=np.int64)
    seg_off_arr = np.asarray(seg_off, dtype=np.int64)
    bit_plane_arr = np.asarray(
        bit_plane if bit_plane else [0], dtype=np.int64
    )
    bit_pos_arr = np.asarray(bit_pos if bit_pos else [0], dtype=np.int64)
    counts = np.zeros(max(int(cnt_off[-1]), 1), dtype=np.int64)
    threads = max(1, min(int(n_threads), _MAX_THREADS, max(len(tests), 1)))
    keybuf = np.zeros((threads, max(n_lanes, 1)), dtype=np.uint64)
    ffi = _pipe_ffi()
    status = kernel.lib.repro_extract(
        ffi.cast("uint64_t *", rec.ctypes.data),
        n_words,
        n_lanes,
        ffi.cast("int64_t *", test_off_arr.ctypes.data),
        len(tests),
        ffi.cast("int64_t *", seg_off_arr.ctypes.data),
        ffi.cast("int64_t *", bit_plane_arr.ctypes.data),
        ffi.cast("int64_t *", bit_pos_arr.ctypes.data),
        ffi.cast("uint8_t *", hashed.ctypes.data),
        ffi.cast("int64_t *", cnt_off.ctypes.data),
        64 - int(hash_bits),
        ffi.cast("int64_t *", counts.ctypes.data),
        ffi.cast("uint64_t *", keybuf.ctypes.data),
        threads,
    )
    if status != 0:
        raise SimulationError(
            f"native extraction failed (status {status})"
        )
    return [
        counts[int(cnt_off[i]):int(cnt_off[i + 1])]
        for i in range(len(tests))
    ]


# --------------------------------------------------------------- simulator


class NativeSimulator:
    """Drop-in :class:`CompiledSimulator` running the fused C kernel.

    Same ``run`` contract and bit-identical :class:`Trace` output; the
    whole multi-cycle block executes in one foreign call, split across
    ``n_threads`` pthread workers by word range (clamped to the word
    count, so single-word blocks never pay thread overhead).
    """

    def __init__(
        self,
        netlist: Netlist,
        n_lanes: int,
        keep_nets: Optional[Iterable[int]] = None,
        n_threads: Optional[int] = None,
        record_nets: Optional[Iterable[int]] = None,
    ):
        if n_lanes <= 0:
            raise SimulationError("n_lanes must be positive")
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.n_words = words_for_lanes(n_lanes)
        self.n_threads = (
            native_default_threads(words_for_lanes(n_lanes))
            if n_threads is None
            else max(1, min(int(n_threads), _MAX_THREADS))
        )
        if keep_nets is None:
            self.program = compile_netlist(netlist)
            keep_list: List[int] = []
        else:
            keep_list = list(keep_nets)
            from repro.netlist.slice import slice_program

            self.program = slice_program(netlist, keep_list)
        program = self.program
        # Pin the rows callers may record -- stable nets, the cone roots
        # of a slice, and any declared record set -- so liveness
        # compaction never recycles them.  Recording a net outside this
        # set later triggers one kernel rebuild with a grown pin set.
        pin = {
            program.state_row(net)
            for net in netlist.stable_nets()
            if program.is_live(net)
        }
        pin.update(
            program.state_row(net)
            for net in keep_list
            if program.is_live(net)
        )
        if record_nets is not None:
            pin.update(
                program.state_row(net)
                for net in record_nets
                if program.is_live(net)
            )
        self._pin_rows = pin
        self._plan = _row_plan(program, sorted(pin))
        self._kernel = build_kernel(program, self._plan)
        inputs = program.input_nets
        if len(inputs) == 1:
            only = inputs[0]
            self._gather = lambda provided: (provided[only],)
        elif inputs:
            self._gather = operator.itemgetter(*inputs)
        else:
            self._gather = None

    @property
    def input_nets(self) -> Tuple[int, ...]:
        """Primary-input net ids in dense-stimulus row order."""
        return tuple(self.program.input_nets)

    def expand_stimulus(
        self, stimulus: Stimulus, n_cycles: int
    ) -> np.ndarray:
        """Pre-expand a per-cycle stimulus callable into the dense form.

        Returns the ``(n_cycles, n_inputs, n_words)`` uint64 array the
        kernel consumes (rows ordered as :attr:`input_nets`).  ``run``
        accepts this array directly in place of the callable, letting
        callers stage stimulus once and replay it without paying the
        per-cycle dict gather again.
        """
        n_inputs = len(self.program.input_nets)
        stim = np.zeros(
            (n_cycles, max(n_inputs, 1), self.n_words), np.uint64
        )
        if n_inputs:
            flat = stim.reshape(n_cycles, -1)
            gather = self._gather
            for cycle in range(n_cycles):
                provided = stimulus(cycle)
                try:
                    np.concatenate(gather(provided), out=flat[cycle])
                except (KeyError, ValueError, TypeError):
                    self._expand_cycle(provided, cycle, stim)
        return stim

    def run(
        self,
        stimulus,
        n_cycles: int,
        record_nets: Optional[Iterable[int]] = None,
        record_cycles: Optional[Iterable[int]] = None,
    ) -> Trace:
        """Simulate ``n_cycles`` cycles; same contract as the other engines.

        ``stimulus`` is either the standard per-cycle callable or a dense
        ``(n_cycles, n_inputs, n_words)`` uint64 array from
        :meth:`expand_stimulus`.
        """
        netlist = self.netlist
        program = self.program
        if record_nets is None:
            record_nets = [
                net for net in netlist.stable_nets() if program.is_live(net)
            ]
        record_list = list(record_nets)
        cycle_filter = None if record_cycles is None else set(record_cycles)
        trace = Trace(self.n_lanes, record_list)
        if n_cycles <= 0:
            return trace

        n_words = self.n_words
        n_inputs = len(program.input_nets)
        # The kernel consumes a dense (n_cycles, n_inputs, n_words)
        # array in one call; expand the per-cycle callable unless the
        # caller staged the dense form already (expand_stimulus).
        if isinstance(stimulus, np.ndarray):
            expected = (n_cycles, max(n_inputs, 1), n_words)
            if stimulus.dtype != np.uint64 or stimulus.shape != expected:
                raise SimulationError(
                    f"dense stimulus must be a uint64 array of shape "
                    f"{expected}, got {stimulus.dtype} {stimulus.shape}"
                )
            stim = np.ascontiguousarray(stimulus)
        else:
            stim = self.expand_stimulus(stimulus, n_cycles)

        rec, rec_slot = self._run_dense(
            stim, n_cycles, record_list, cycle_filter
        )

        # Trace rows are views into the freshly-written rec buffer -- it
        # is owned solely by this call, so no copy is needed and the
        # views keep it alive.
        values = trace.values
        for cycle in range(n_cycles):
            slot = int(rec_slot[cycle])
            if slot < 0:
                values.append({})
            else:
                values.append(dict(zip(record_list, rec[slot])))
        return trace

    def _run_dense(
        self,
        stim: np.ndarray,
        n_cycles: int,
        record_list: "list[int]",
        cycle_filter,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One fused kernel call; returns the raw (rec, rec_slot) pair.

        ``rec`` is ``(n_slots, n_rec, n_words)`` with ``rec_slot[cycle]``
        naming each recorded cycle's slot (-1 when skipped).
        """
        program = self.program
        state_rows = np.asarray(
            [program.state_row(net) for net in record_list], dtype=np.int64
        )
        if state_rows.size and not self._plan.pinned[state_rows].all():
            # The record set reaches rows the liveness plan recycled:
            # grow the pin set (monotonically, so alternating record
            # sets converge) and rebuild once; the on-disk cache makes
            # repeats cheap.  Declare the set via ``record_nets`` at
            # construction to avoid the extra build.
            self._pin_rows.update(int(row) for row in state_rows)
            self._plan = _row_plan(program, sorted(self._pin_rows))
            self._kernel = build_kernel(program, self._plan)
        record_rows = self._plan.slot_of[state_rows]
        n_words = self.n_words

        rec_slot = np.full(n_cycles, -1, dtype=np.int64)
        slots = 0
        for cycle in range(n_cycles):
            if cycle_filter is None or cycle in cycle_filter:
                rec_slot[cycle] = slots
                slots += 1
        n_rec = len(record_list)
        rec = np.zeros((max(slots, 1), max(n_rec, 1), n_words), np.uint64)
        if record_rows.size == 0:
            record_rows = np.zeros(1, dtype=np.int64)

        ffi = _ffi()
        status = self._kernel.lib.repro_run(
            ffi.cast("uint64_t *", stim.ctypes.data),
            ffi.cast("uint64_t *", rec.ctypes.data),
            ffi.cast("int64_t *", record_rows.ctypes.data),
            n_rec,
            ffi.cast("int64_t *", rec_slot.ctypes.data),
            n_cycles,
            n_words,
            self.n_threads,
        )
        if status != 0:
            raise SimulationError(
                f"native kernel execution failed (status {status})"
            )
        return rec, rec_slot

    def run_pipeline(
        self,
        plan,
        n_cycles: int,
        record_nets: Iterable[int],
        record_cycles: Iterable[int],
        tests,
        hash_bits: int,
    ) -> Tuple["list[np.ndarray]", "dict"]:
        """Whole evaluation block in C: stimulus, simulate, extract, count.

        ``plan`` is a :class:`repro.leakage.stimplan.StimulusPlan`
        driving every primary input of this simulator's program (plans
        built against the full DUT also work on cone slices: draws for
        sliced-away inputs still consume the PCG64 stream, exactly as
        the Python interpreter would).  ``tests`` is a sequence of
        :class:`CountSpec`; the result is one dense int64 counts array
        per test plus a ``{stage: seconds}`` timing dict
        (``stimulus`` / ``simulate`` / ``extract``).

        Bit-compatibility: the counts equal
        ``numpy.bincount`` of the Python path's observation keys for the
        same seed -- see ``tests/test_native_pipeline.py``.
        """
        from time import perf_counter

        kernel = build_pipeline_kernel()
        record_list = list(record_nets)
        program = self.program
        covered = set(net for net in plan.row_nets if net >= 0)
        for pi in program.input_nets:
            if pi not in covered:
                raise SimulationError(
                    f"stimulus plan does not drive primary input "
                    f"{self.netlist.net_name(pi)!r}"
                )
        if plan.n_words != self.n_words:
            raise SimulationError(
                f"stimulus plan is {plan.n_words} words wide, "
                f"simulator needs {self.n_words}"
            )
        slot_of_net = {
            net: slot for slot, net in enumerate(program.input_nets)
        }
        t0 = perf_counter()
        stim = _stimgen_dense(
            kernel,
            plan,
            slot_of_net,
            len(program.input_nets),
            n_cycles,
            self.n_words,
        )
        t1 = perf_counter()
        cycle_filter = set(record_cycles)
        rec, rec_slot = self._run_dense(
            stim, n_cycles, record_list, cycle_filter
        )
        t2 = perf_counter()
        record_index = {net: i for i, net in enumerate(record_list)}
        counts = _extract_counts(
            kernel,
            rec,
            rec_slot,
            record_index,
            len(record_list),
            self.n_lanes,
            self.n_words,
            tests,
            hash_bits,
            self.n_threads,
        )
        t3 = perf_counter()
        timings = {
            "stimulus": t1 - t0,
            "simulate": t2 - t1,
            "extract": t3 - t2,
        }
        return counts, timings

    def _expand_cycle(
        self, provided: dict, cycle: int, stim: np.ndarray
    ) -> None:
        """Slow validating path behind the vectorized stimulus expansion.

        Entered only when the fast concatenate raises -- reproduces the
        per-input diagnostics of the other engines (missing primary
        input, wrong word-vector shape) or completes the odd-typed but
        valid cycle the stack could not fuse.
        """
        n_words = self.n_words
        for slot, pi in enumerate(self.program.input_nets):
            if pi not in provided:
                raise SimulationError(
                    f"stimulus missing primary input "
                    f"{self.netlist.net_name(pi)!r} at cycle {cycle}"
                )
            words = np.asarray(provided[pi], dtype=np.uint64)
            if words.shape != (n_words,):
                raise SimulationError(
                    f"stimulus for {self.netlist.net_name(pi)!r} has "
                    f"shape {words.shape}, expected ({n_words},)"
                )
            stim[cycle, slot] = words


class NativeScheduledSimulator:
    """Scheduled-cone simulation on the generic native interpreter.

    Wraps :class:`repro.netlist.slice.ScheduledSimulator` construction
    (cone computation, per-cycle dispatch compilation, schedule
    validation rules) and lowers its per-cycle structures onto the
    ``repro_sched_run`` entry point of the pipeline kernel: flat gate-op
    arrays with per-cycle offsets interpreted in C, tiled and threaded
    over word columns.  ``run`` has the exact contract of the wrapped
    simulator -- same errors for non-root records, missing inputs, and
    schedule mismatches; bit-identical traces.  ``run_pipeline`` adds
    the in-kernel stimulus/extract/histogram stages of
    :meth:`NativeSimulator.run_pipeline`.

    Construction raises :class:`~repro.errors.SimulationError` when the
    pipeline kernel is unavailable; callers fall back to the Python
    scheduled path and record the degradation.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_lanes: int,
        roots: Iterable[int],
        record_cycles: Iterable[int],
        n_cycles: int,
        schedule,
        n_threads: Optional[int] = None,
    ):
        from repro.netlist.slice import ScheduledSimulator

        self._kernel = build_pipeline_kernel()
        sched = ScheduledSimulator(
            netlist, n_lanes, roots, record_cycles, n_cycles, schedule
        )
        self._sched = sched
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.n_words = sched.n_words
        self.n_cycles = n_cycles
        self.roots = sched.roots
        self.record_cycles = sched.record_cycles
        self.n_threads = (
            native_default_threads(self.n_words)
            if n_threads is None
            else max(1, min(int(n_threads), _MAX_THREADS))
        )

        sched_nets = sorted(sched._schedule)
        union = sorted(
            set(net for per in sched._cycle_inputs for net in per)
            | set(sched_nets)
        )
        self._slot_of_net = {net: i for i, net in enumerate(union)}
        self._stim_nets = union
        self.n_slots = len(union)

        def flatten(per_cycle_pairs):
            off = np.zeros(n_cycles + 1, dtype=np.int64)
            first: List[int] = []
            second: List[int] = []
            for t, (a, b) in enumerate(per_cycle_pairs):
                first.extend(int(x) for x in a)
                second.extend(int(x) for x in b)
                off[t + 1] = len(first)
            return (
                off,
                np.asarray(first if first else [0], dtype=np.int64),
                np.asarray(second if second else [0], dtype=np.int64),
            )

        self._in_off, self._in_slot, self._in_net = flatten(
            (
                [self._slot_of_net[net] for net in per],
                list(per),
            )
            for per in sched._cycle_inputs
        )
        self._rd_off, self._rd_net, self._rd_reg = flatten(
            sched._cycle_reads
        )
        self._cap_off, self._cap_net, self._cap_reg = flatten(
            sched._cycle_captures
        )

        # Schedule validation: every scheduled net, every cycle (the
        # python path checks them all each cycle regardless of need).
        n_sched = len(sched_nets)
        self._chk_off = np.arange(
            0, (n_cycles + 1) * n_sched, max(n_sched, 1), dtype=np.int64
        )
        if n_sched == 0:
            self._chk_off = np.zeros(n_cycles + 1, dtype=np.int64)
        chk_slot = np.asarray(
            [self._slot_of_net[net] for net in sched_nets] * n_cycles
            if n_sched
            else [0],
            dtype=np.int64,
        )
        chk_bit = np.asarray(
            [
                1 if sched._schedule[net][t] else 0
                for t in range(n_cycles)
                for net in sched_nets
            ]
            if n_sched
            else [0],
            dtype=np.uint8,
        )
        self._chk_slot, self._chk_bit = chk_slot, chk_bit
        self._sched_nets = sched_nets

        op_off = np.zeros(n_cycles + 1, dtype=np.int64)
        op_code: List[int] = []
        op_out: List[int] = []
        op_a: List[int] = []
        op_b: List[int] = []
        op_c: List[int] = []
        for t in range(n_cycles):
            for op in sched._cycle_ops[t]:
                code = _CELL_CODE.get(op.cell_type)
                if code is None:  # pragma: no cover - never dispatched
                    raise SimulationError(
                        f"cell type {op.cell_type} has no native lowering"
                    )
                n = int(op.out.size)
                op_code.extend([code] * n)
                op_out.extend(int(x) for x in op.out)
                op_a.extend(int(x) for x in op.in0)
                op_b.extend(
                    (int(x) for x in op.in1) if op.in1.size else [0] * n
                )
                op_c.extend(
                    (int(x) for x in op.in2) if op.in2.size else [0] * n
                )
            op_off[t + 1] = len(op_code)
        self._op_off = op_off
        self._op_code = np.asarray(
            op_code if op_code else [0], dtype=np.int64
        )
        self._op_out = np.asarray(op_out if op_out else [0], dtype=np.int64)
        self._op_a = np.asarray(op_a if op_a else [0], dtype=np.int64)
        self._op_b = np.asarray(op_b if op_b else [0], dtype=np.int64)
        self._op_c = np.asarray(op_c if op_c else [0], dtype=np.int64)
        self._const1 = np.asarray(
            sorted(sched._const1) if sched._const1 else [0], dtype=np.int64
        )
        self._n_const1 = len(sched._const1)
        self._n_dffs = sched._n_dffs

    def stats(self):
        """Active vs. full cell evaluations (see ScheduledSimulator)."""
        return self._sched.stats()

    def _check_record_list(self, record_nets):
        record_list = (
            list(self.roots) if record_nets is None else list(record_nets)
        )
        root_set = set(self.roots)
        for net in record_list:
            if net not in root_set:
                raise SimulationError(
                    f"net {net} is not a root of this scheduled slice"
                )
        return record_list

    def _run_dense(
        self, stim: np.ndarray, record_list: "list[int]"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One interpreter call; returns the raw (rec, rec_slot) pair."""
        n_cycles = self.n_cycles
        n_words = self.n_words
        rec_slot = np.full(n_cycles, -1, dtype=np.int64)
        for slot, cycle in enumerate(self.record_cycles):
            if 0 <= cycle < n_cycles:
                rec_slot[cycle] = slot
        n_rec = len(record_list)
        rec = np.zeros(
            (max(len(self.record_cycles), 1), max(n_rec, 1), n_words),
            np.uint64,
        )
        rec_net = np.asarray(
            record_list if record_list else [0], dtype=np.int64
        )
        ffi = _pipe_ffi()

        def cast(arr, ctype="int64_t *"):
            return ffi.cast(ctype, arr.ctypes.data)

        status = self._kernel.lib.repro_sched_run(
            ffi.cast("uint64_t *", stim.ctypes.data),
            ffi.cast("uint64_t *", rec.ctypes.data),
            cast(rec_net),
            n_rec,
            cast(rec_slot),
            cast(self._in_off),
            cast(self._in_slot),
            cast(self._in_net),
            cast(self._chk_off),
            cast(self._chk_slot),
            cast(self._chk_bit, "uint8_t *"),
            cast(self._rd_off),
            cast(self._rd_net),
            cast(self._rd_reg),
            cast(self._cap_off),
            cast(self._cap_net),
            cast(self._cap_reg),
            cast(self._op_off),
            cast(self._op_code),
            cast(self._op_out),
            cast(self._op_a),
            cast(self._op_b),
            cast(self._op_c),
            cast(self._const1),
            self._n_const1,
            self.netlist.n_nets,
            self._n_dffs,
            max(self.n_slots, 1),
            n_cycles,
            n_words,
            self.n_threads,
        )
        if status == 3:
            raise SimulationError(
                "stimulus for a scheduled net does not match its "
                "declared per-cycle value"
            )
        if status != 0:
            raise SimulationError(
                f"native scheduled kernel failed (status {status})"
            )
        return rec, rec_slot

    def _expand_stimulus(self, stimulus) -> np.ndarray:
        """Per-cycle callable to the dense (n_cycles, slots, nw) form.

        Reproduces the python path's missing-input / bad-shape errors
        for the nets each cycle actually needs; other driven nets are
        ignored (the interpreter only reads needed slots).
        """
        netlist = self.netlist
        n_words = self.n_words
        sched = self._sched
        stim = np.zeros(
            (self.n_cycles, max(self.n_slots, 1), n_words), np.uint64
        )
        slot_of_net = self._slot_of_net
        for cycle in range(self.n_cycles):
            provided = stimulus(cycle)
            row = stim[cycle]
            for pi in sched._cycle_inputs[cycle]:
                if pi not in provided:
                    raise SimulationError(
                        f"stimulus missing primary input "
                        f"{netlist.net_name(pi)!r} at cycle {cycle}"
                    )
                words = np.asarray(provided[pi], dtype=np.uint64)
                if words.shape != (n_words,):
                    raise SimulationError(
                        f"stimulus for {netlist.net_name(pi)!r} has shape "
                        f"{words.shape}, expected ({n_words},)"
                    )
                row[slot_of_net[pi]] = words
            for net in self._sched_nets:
                if net not in provided:
                    raise SimulationError(
                        f"stimulus missing scheduled input "
                        f"{netlist.net_name(net)!r} at cycle {cycle}"
                    )
                words = np.asarray(provided[net], dtype=np.uint64)
                if words.shape != (n_words,):
                    raise SimulationError(
                        f"stimulus for {netlist.net_name(net)!r} has shape "
                        f"{words.shape}, expected ({n_words},)"
                    )
                row[slot_of_net[net]] = words
        return stim

    def run(self, stimulus, record_nets: Optional[Iterable[int]] = None):
        """Simulate and record; same contract as ScheduledSimulator.run."""
        record_list = self._check_record_list(record_nets)
        stim = self._expand_stimulus(stimulus)
        rec, rec_slot = self._run_dense(stim, record_list)
        trace = Trace(self.n_lanes, record_list)
        values = trace.values
        for cycle in range(self.n_cycles):
            slot = int(rec_slot[cycle])
            if slot < 0:
                values.append({})
            else:
                values.append(dict(zip(record_list, rec[slot])))
        return trace

    def run_pipeline(
        self,
        plan,
        record_nets,
        tests,
        hash_bits: int,
    ) -> Tuple["list[np.ndarray]", "dict"]:
        """Whole scheduled block in C; see NativeSimulator.run_pipeline.

        The plan must drive every needed input and every scheduled net
        (a full-DUT plan does); the interpreter validates the scheduled
        nets' generated words against the declared schedule exactly like
        the python path.
        """
        from time import perf_counter

        record_list = self._check_record_list(record_nets)
        covered = set(net for net in plan.row_nets if net >= 0)
        needed = set(
            net for per in self._sched._cycle_inputs for net in per
        ) | set(self._sched_nets)
        for net in sorted(needed):
            if net not in covered:
                raise SimulationError(
                    f"stimulus plan does not drive needed input "
                    f"{self.netlist.net_name(net)!r}"
                )
        if plan.n_words != self.n_words:
            raise SimulationError(
                f"stimulus plan is {plan.n_words} words wide, "
                f"simulator needs {self.n_words}"
            )
        t0 = perf_counter()
        stim = _stimgen_dense(
            self._kernel,
            plan,
            self._slot_of_net,
            self.n_slots,
            self.n_cycles,
            self.n_words,
        )
        t1 = perf_counter()
        rec, rec_slot = self._run_dense(stim, record_list)
        t2 = perf_counter()
        record_index = {net: i for i, net in enumerate(record_list)}
        counts = _extract_counts(
            self._kernel,
            rec,
            rec_slot,
            record_index,
            len(record_list),
            self.n_lanes,
            self.n_words,
            tests,
            hash_bits,
            self.n_threads,
        )
        t3 = perf_counter()
        timings = {
            "stimulus": t1 - t0,
            "simulate": t2 - t1,
            "extract": t3 - t2,
        }
        return counts, timings
