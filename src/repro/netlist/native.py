"""Native fused-kernel execution of compiled gate programs.

The :class:`~repro.netlist.compile.CompiledSimulator` still pays one numpy
dispatch per cell type per level per cycle -- interpreter overhead that
dominates when the word count is small (a 64-lane block is a single
uint64 word).  This module goes the rest of the way: it generates C
source from a :class:`~repro.netlist.compile.GateProgram`'s levelized
dispatch table -- every op group becomes a plain ``for`` loop over baked
static index arrays -- compiles it to a shared object with the system C
compiler, and drives the **entire multi-cycle simulation in one foreign
call** through ``cffi``'s ``ffi.dlopen``.

Lane words are embarrassingly parallel: every per-word quantity (gate
outputs, register state, constants, recorded words) depends only on its
own word column, so the kernel splits the word range across an internal
pthread pool with zero synchronization inside a cycle.  Thread-level
parallelism inside one call sidesteps the process fork/pickle overhead
that made the process-pool executor *slower* than serial on small hosts
(``BENCH_parallel.json``'s historical 0.8x).

Build products are cached twice: compiled ``.so`` files on disk keyed by
a content digest of the generated source (itself derived from the
program's content hash, so the existing program cache keying carries
over -- full programs by netlist hash, cone slices by slice key), and
``dlopen`` handles in a bounded per-process LRU exposed through
:func:`native_kernel_cache_info` and the service ``/metrics`` endpoint.

:class:`NativeSimulator` is a drop-in replacement for
:class:`CompiledSimulator` -- same constructor shape (including
``keep_nets`` cone slicing), same ``run`` contract, same
:class:`~repro.netlist.simulate.Trace` output, **bit-identical** words.
Construction raises :class:`~repro.errors.SimulationError` when no C
toolchain (or ``cffi``) is available; callers degrade down the
:mod:`repro.engines` ladder (native -> compiled -> bitsliced) and record
the degradation.  Set ``REPRO_NATIVE_DISABLE=1`` to force the
unavailable leg (CI's no-toolchain job).
"""

from __future__ import annotations

import hashlib
import operator
import os
import shutil
import subprocess
import tempfile
import threading
from collections import OrderedDict
from typing import Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.netlist.cells import CellType
from repro.netlist.compile import GateProgram, compile_netlist
from repro.netlist.core import Netlist
from repro.netlist.simulate import Stimulus, Trace, words_for_lanes

__all__ = [
    "NativeSimulator",
    "native_available",
    "native_unavailable_reason",
    "native_default_threads",
    "generate_kernel_source",
    "build_kernel",
    "native_kernel_cache_info",
    "clear_native_kernel_cache",
    "NativeKernelCacheInfo",
]

#: Bumping this invalidates every cached kernel (source digest changes).
_CODEGEN_VERSION = 3

#: Upper bound on kernel threads (also baked into the C thread arrays).
_MAX_THREADS = 64

#: Words simulated per cache tile.  The kernel runs the whole multi-cycle
#: simulation tile-by-tile against a compact ``n_rows x TILE`` state
#: buffer: word columns are fully independent, so a narrow tile keeps the
#: entire working set (~n_rows * 32 bytes) inside L2 while the constant
#: stride lets the compiler unroll and vectorize every gate loop.
_TILE_WORDS = 4

_CDEF = """
int repro_run(const uint64_t *stim, uint64_t *rec,
              const int64_t *rec_rows, int64_t n_rec,
              const int64_t *rec_slot, int64_t n_cycles,
              int64_t n_words, int64_t n_threads);
"""

# ------------------------------------------------------------ availability


def _find_cc() -> Optional[str]:
    """The C compiler to use, or None when no toolchain is on PATH."""
    env_cc = os.environ.get("CC")
    if env_cc:
        return shutil.which(env_cc) or None
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def native_unavailable_reason() -> Optional[str]:
    """None when the native engine can build kernels, else why not."""
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        return "native engine disabled via REPRO_NATIVE_DISABLE"
    try:
        import cffi  # noqa: F401
    except ImportError:
        return "cffi is not installed"
    if _find_cc() is None:
        return "no C compiler found (checked $CC, cc, gcc, clang)"
    return None


def native_available() -> bool:
    """True when kernels can be generated, compiled and loaded."""
    return native_unavailable_reason() is None


def native_default_threads() -> int:
    """Kernel thread-pool width: ``REPRO_NATIVE_THREADS`` or cpu count.

    The kernel additionally clamps to the word count, so a 64-lane block
    (one word) always runs single-threaded regardless of this value.
    """
    env = os.environ.get("REPRO_NATIVE_THREADS")
    if env:
        try:
            return max(1, min(int(env), _MAX_THREADS))
        except ValueError:
            pass
    return max(1, min(os.cpu_count() or 1, _MAX_THREADS))


# ------------------------------------------------------- state-slot plan


class RowPlan(NamedTuple):
    """Kernel state-slot assignment for one program.

    ``slot_of[row]`` maps a program state row to its kernel slot (``-1``
    for rows the kernel never touches); ``pinned[row]`` marks rows whose
    slot is exclusive for the whole cycle -- only those are recordable.
    ``orders[g]`` is the emission permutation of op group ``g``: cells
    within a level are mutually independent, so each group is reordered
    by the definition recency of its first operand, which clusters loads
    on recently-written (cache-hot) slots.  The liveness allocation below
    is computed over this same order, so slot reuse stays sound.
    """

    slot_of: np.ndarray
    pinned: np.ndarray
    n_slots: int
    orders: tuple


_ROW_PLANS: "OrderedDict[tuple, RowPlan]" = OrderedDict()
_ROW_PLAN_CAP = 32


def _compute_row_plan(
    program: GateProgram, pinned_rows: Optional[np.ndarray]
) -> RowPlan:
    """Liveness-based slot reuse over the levelized cell schedule.

    The full AES core holds ~21k nets but only ~3k are *stable*
    (probeable); the remaining intermediate rows are written and fully
    consumed within a handful of levels.  Pinning inputs, constants,
    register rows and the caller's recordable rows while recycling every
    other row through a LIFO free stack shrinks the per-tile working set
    by several fold -- the hot top-of-stack slots stay L1-resident
    instead of streaming the whole state array through L2 every level.

    Reuse is safe because the schedule is identical every cycle and
    levelization guarantees def-before-use: a non-pinned row's live
    range is ``[def, last read]`` inside a single cycle, and nothing
    reads it across the cycle boundary (records and register captures
    only touch pinned rows).  ``pinned_rows=None`` pins everything
    (identity-equivalent plan, every row recordable).
    """
    n = program.n_state_rows
    pinned = np.zeros(max(n, 1), dtype=bool)
    if pinned_rows is None:
        pinned[:] = True
    else:
        if pinned_rows.size:
            pinned[pinned_rows] = True
        if program.input_nets:
            pinned[
                [program.state_row(pi) for pi in program.input_nets]
            ] = True
        if program.const1.size:
            pinned[program.const1] = True
        if program.dff_d.size:
            pinned[program.dff_d] = True
            pinned[program.dff_q] = True

    # Definition position of every row in the unsorted schedule, used as
    # the in-level sort key (see RowPlan.orders).
    def_pos = np.full(max(n, 1), -1, dtype=np.int64)
    pos = 0
    for op in program.ops:
        for j in range(op.n_cells):
            def_pos[op.out[j]] = pos
            pos += 1
    orders = tuple(
        np.argsort(def_pos[op.in0], kind="stable") for op in program.ops
    )

    outs: List[int] = []
    reads: List[List[int]] = []
    for op, order in zip(program.ops, orders):
        in1 = op.in1 if op.in1.size else None
        in2 = op.in2 if op.in2.size else None
        for j in order:
            outs.append(int(op.out[j]))
            cell_reads = [int(op.in0[j])]
            if in1 is not None:
                cell_reads.append(int(in1[j]))
            if in2 is not None:
                cell_reads.append(int(in2[j]))
            reads.append(cell_reads)

    written = np.zeros(max(n, 1), dtype=bool)
    if outs:
        written[outs] = True
    last_read = np.full(max(n, 1), -1, dtype=np.int64)
    for pos, cell_reads in enumerate(reads):
        for row in cell_reads:
            last_read[row] = pos
            if not written[row]:
                # Read-but-never-driven rows must keep their zeroed slot.
                pinned[row] = True

    slot_of = np.full(max(n, 1), -1, dtype=np.int64)
    released = np.zeros(max(n, 1), dtype=bool)
    free: List[int] = []
    next_slot = 0
    for pos, (out, cell_reads) in enumerate(zip(outs, reads)):
        for row in cell_reads:
            if (
                not pinned[row]
                and last_read[row] == pos
                and not released[row]
            ):
                released[row] = True
                free.append(int(slot_of[row]))
        if not pinned[out]:
            slot_of[out] = free.pop() if free else next_slot
            if slot_of[out] == next_slot:
                next_slot += 1
            released[out] = False
            if last_read[out] < 0:  # dead store: slot reusable right away
                released[out] = True
                free.append(int(slot_of[out]))

    # Pinned rows follow the reusable region, ordered for streaming
    # writes: inputs, constants, register restores, then gate outputs in
    # schedule order, register captures, and finally undriven reads.
    order: List[int] = []
    order.extend(program.state_row(pi) for pi in program.input_nets)
    order.extend(int(r) for r in program.const1)
    order.extend(int(r) for r in program.dff_q)
    order.extend(out for out in outs if pinned[out])
    order.extend(int(r) for r in program.dff_d)
    order.extend(
        row for cell_reads in reads for row in cell_reads if pinned[row]
    )
    base = next_slot
    for row in order:
        row = int(row)
        if pinned[row] and slot_of[row] < 0:
            slot_of[row] = base
            base += 1
    for row in np.nonzero(pinned & (slot_of < 0))[0]:
        slot_of[row] = base
        base += 1
    return RowPlan(
        slot_of=slot_of, pinned=pinned, n_slots=int(base), orders=orders
    )


def _row_plan(
    program: GateProgram,
    pinned_rows: Optional[Iterable[int]] = None,
) -> RowPlan:
    """Memoized :func:`_compute_row_plan` (keyed on program + pin set)."""
    if pinned_rows is None:
        arr = None
        pin_key = "all"
    else:
        arr = np.unique(np.asarray(list(pinned_rows), dtype=np.int64))
        pin_key = hashlib.sha256(arr.tobytes()).hexdigest()[:16]
    key = (program.content_hash, pin_key)
    with _KERNEL_LOCK:
        plan = _ROW_PLANS.get(key)
        if plan is not None:
            _ROW_PLANS.move_to_end(key)
            return plan
    plan = _compute_row_plan(program, arr)
    with _KERNEL_LOCK:
        _ROW_PLANS[key] = plan
        while len(_ROW_PLANS) > _ROW_PLAN_CAP:
            _ROW_PLANS.popitem(last=False)
    return plan


# ---------------------------------------------------------------- codegen

#: cell type -> C expression over a[w] / b[w] / c[w] (in0/in1/in2).
_CELL_EXPR = {
    CellType.BUF: "a[w]",
    CellType.NOT: "~a[w]",
    CellType.AND: "a[w] & b[w]",
    CellType.NAND: "~(a[w] & b[w])",
    CellType.OR: "a[w] | b[w]",
    CellType.NOR: "~(a[w] | b[w])",
    CellType.XOR: "a[w] ^ b[w]",
    CellType.XNOR: "~(a[w] ^ b[w])",
    CellType.MUX: "(b[w] & ~a[w]) | (c[w] & a[w])",
}


def _emit_array(name: str, values: np.ndarray) -> str:
    body = ",".join(str(int(v)) for v in values)
    return f"static const int64_t {name}[] = {{{body}}};\n"


def generate_kernel_source(
    program: GateProgram, plan: Optional[RowPlan] = None
) -> str:
    """C source for one program: baked indices, fused cycle loop, pthreads.

    The kernel replicates :meth:`CompiledSimulator.run`'s cycle semantics
    exactly: stimulus into input rows, register outputs from captured
    state, level-major combinational ops, record at filter cycles,
    register capture -- with ``const1`` rows preset to all-ones.  Stimulus
    is pre-expanded by the caller to a dense
    ``(n_cycles, n_inputs, n_words)`` array so the whole run is one call.

    Execution is tiled: word columns are mutually independent, so the
    kernel replays the full cycle loop once per ``TILE``-word tile
    against a compact ``n_slots x TILE`` local state whose working set
    stays cache-resident; a partial last tile pads to ``TILE`` and simply
    never stores the pad columns.

    ``plan`` is the :class:`RowPlan` mapping program state rows to
    kernel slots (liveness-compacted; see :func:`_compute_row_plan`).
    ``None`` pins every row -- slot assignment is then a locality
    permutation and every row stays recordable.  Runtime ``rec_rows``
    passed to the kernel must already be kernel slots.
    """
    if plan is None:
        plan = _row_plan(program)

    def slots(rows: Iterable[int]) -> np.ndarray:
        mapped = plan.slot_of[np.asarray(list(rows), dtype=np.int64)]
        if mapped.size and int(mapped.min()) < 0:
            raise SimulationError(
                "internal: row plan left a referenced row unallocated"
            )
        return mapped

    lines: List[str] = []
    emit = lines.append
    emit(f"/* repro native kernel v{_CODEGEN_VERSION} for program "
         f"{program.content_hash} */\n")
    emit("#include <stdint.h>\n#include <stdlib.h>\n"
         "#include <string.h>\n#include <pthread.h>\n\n")

    n_in = len(program.input_nets)
    n_dff = int(program.dff_q.size)
    n_rows = max(plan.n_slots, 1)
    emit(f"#define N_IN {n_in}\n#define N_DFF {n_dff}\n"
         f"#define N_ROWS {n_rows}\n#define TILE {_TILE_WORDS}\n\n")
    if n_in:
        # Rows are state rows (slices remap net ids to compact rows).
        emit(_emit_array(
            "IN_ROWS",
            slots(program.state_row(pi) for pi in program.input_nets),
        ))
    if program.const1.size:
        emit(_emit_array("C1_ROWS", slots(program.const1)))
    if n_dff:
        emit(_emit_array("DFF_D", slots(program.dff_d)))
        emit(_emit_array("DFF_Q", slots(program.dff_q)))
    for g, op in enumerate(program.ops):
        # Emit each group through the plan's in-level permutation: cells
        # within a level are independent, and ordering them by operand
        # definition recency keeps hot slots in cache.  The liveness
        # allocation above was computed over this same order.
        order = plan.orders[g]
        emit(_emit_array(f"OP{g}_O", slots(op.out[order])))
        emit(_emit_array(f"OP{g}_A", slots(op.in0[order])))
        if op.in1.size:
            emit(_emit_array(f"OP{g}_B", slots(op.in1[order])))
        if op.in2.size:
            emit(_emit_array(f"OP{g}_C", slots(op.in2[order])))
    emit("\n")

    emit("static int run_range(const uint64_t *stim,\n"
         "    uint64_t *rec, const int64_t *rec_rows, int64_t n_rec,\n"
         "    const int64_t *rec_slot, int64_t n_cycles, int64_t nw,\n"
         "    int64_t w0, int64_t w1)\n{\n"
         "    int64_t c, i, k, t0;\n"
         "    uint64_t *loc = (uint64_t *)malloc(\n"
         "        (size_t)N_ROWS * TILE * sizeof(uint64_t));\n"
         "    if (!loc) return 1;\n")
    if n_dff:
        emit("    uint64_t *reg = (uint64_t *)malloc(\n"
             "        (size_t)(N_DFF ? N_DFF : 1) * TILE"
             " * sizeof(uint64_t));\n"
             "    if (!reg) { free(loc); return 1; }\n")
    emit("    for (t0 = w0; t0 < w1; t0 += TILE) {\n"
         "        int64_t tw = w1 - t0 < TILE ? w1 - t0 : TILE;\n"
         "        memset(loc, 0, (size_t)N_ROWS * TILE"
         " * sizeof(uint64_t));\n")
    if program.const1.size:
        emit(f"        for (i = 0; i < {int(program.const1.size)}; ++i) {{\n"
             "            uint64_t *d = loc + (size_t)C1_ROWS[i] * TILE;\n"
             "            for (k = 0; k < TILE; ++k) d[k] = ~(uint64_t)0;\n"
             "        }\n")
    if n_dff:
        emit("        memset(reg, 0, (size_t)N_DFF * TILE"
             " * sizeof(uint64_t));\n")
    emit("        for (c = 0; c < n_cycles; ++c) {\n")
    if n_in:
        emit("            const uint64_t *sc = stim"
             " + (size_t)c * N_IN * nw + t0;\n"
             "            for (i = 0; i < N_IN; ++i) {\n"
             "                const uint64_t *s = sc + (size_t)i * nw;\n"
             "                uint64_t *d = loc + (size_t)IN_ROWS[i] * TILE;\n"
             "                for (k = 0; k < tw; ++k) d[k] = s[k];\n"
             "            }\n")
    if n_dff:
        emit("            for (i = 0; i < N_DFF; ++i) {\n"
             "                uint64_t *d = loc + (size_t)DFF_Q[i] * TILE;\n"
             "                const uint64_t *r = reg + (size_t)i * TILE;\n"
             "                for (k = 0; k < TILE; ++k) d[k] = r[k];\n"
             "            }\n")
    for g, op in enumerate(program.ops):
        expr = _CELL_EXPR.get(op.cell_type)
        if expr is None:  # pragma: no cover - compile_netlist never emits
            raise SimulationError(
                f"cell type {op.cell_type} has no native lowering"
            )
        emit(f"            for (i = 0; i < {op.n_cells}; ++i) {{\n"
             f"                uint64_t *o = loc"
             f" + (size_t)OP{g}_O[i] * TILE;\n"
             f"                const uint64_t *a = loc"
             f" + (size_t)OP{g}_A[i] * TILE;\n")
        if op.in1.size:
            emit(f"                const uint64_t *b = loc"
                 f" + (size_t)OP{g}_B[i] * TILE;\n")
        if op.in2.size:
            emit(f"                const uint64_t *c_ = loc"
                 f" + (size_t)OP{g}_C[i] * TILE;\n")
        emit("                for (k = 0; k < TILE; ++k) "
             f"o[k] = {expr.replace('c[w]', 'c_[w]').replace('[w]', '[k]')};\n"
             "            }\n")
    emit("            if (n_rec > 0 && rec_slot[c] >= 0) {\n"
         "                int64_t slot = rec_slot[c];\n"
         "                for (i = 0; i < n_rec; ++i) {\n"
         "                    const uint64_t *s = loc\n"
         "                        + (size_t)rec_rows[i] * TILE;\n"
         "                    uint64_t *d = rec\n"
         "                        + ((size_t)slot * n_rec + (size_t)i) * nw"
         " + t0;\n"
         "                    for (k = 0; k < tw; ++k) d[k] = s[k];\n"
         "                }\n"
         "            }\n")
    if n_dff:
        emit("            for (i = 0; i < N_DFF; ++i) {\n"
             "                const uint64_t *s = loc"
             " + (size_t)DFF_D[i] * TILE;\n"
             "                uint64_t *r = reg + (size_t)i * TILE;\n"
             "                for (k = 0; k < TILE; ++k) r[k] = s[k];\n"
             "            }\n")
    emit("        }\n    }\n")
    if n_dff:
        emit("    free(reg);\n")
    emit("    free(loc);\n    return 0;\n}\n\n")

    emit(
        "typedef struct {\n"
        "    const uint64_t *stim; uint64_t *rec;\n"
        "    const int64_t *rec_rows; int64_t n_rec;\n"
        "    const int64_t *rec_slot; int64_t n_cycles; int64_t nw;\n"
        "    int64_t w0; int64_t w1; int status;\n"
        "} knl_job;\n\n"
        "static void *knl_worker(void *arg)\n{\n"
        "    knl_job *j = (knl_job *)arg;\n"
        "    j->status = run_range(j->stim, j->rec, j->rec_rows,\n"
        "        j->n_rec, j->rec_slot, j->n_cycles, j->nw, j->w0, j->w1);\n"
        "    return 0;\n}\n\n"
        "int repro_run(const uint64_t *stim, uint64_t *rec,\n"
        "    const int64_t *rec_rows, int64_t n_rec,\n"
        "    const int64_t *rec_slot, int64_t n_cycles, int64_t nw,\n"
        "    int64_t n_threads)\n{\n"
        f"    knl_job jobs[{_MAX_THREADS}];\n"
        f"    pthread_t tids[{_MAX_THREADS}];\n"
        f"    int created[{_MAX_THREADS}];\n"
        "    int64_t n_tiles, chunk, t, spawned = 0;\n"
        "    int status = 0;\n"
        "    n_tiles = (nw + TILE - 1) / TILE;\n"
        "    if (n_threads < 1) n_threads = 1;\n"
        "    if (n_threads > n_tiles) n_threads = n_tiles;\n"
        f"    if (n_threads > {_MAX_THREADS}) n_threads = {_MAX_THREADS};\n"
        "    if (n_threads <= 1)\n"
        "        return run_range(stim, rec, rec_rows, n_rec,\n"
        "            rec_slot, n_cycles, nw, 0, nw);\n"
        "    chunk = (n_tiles + n_threads - 1) / n_threads;\n"
        "    for (t = 0; t < n_threads; ++t) {\n"
        "        int64_t a = t * chunk * TILE, b = a + chunk * TILE;\n"
        "        if (a >= nw) break;\n"
        "        if (b > nw) b = nw;\n"
        "        jobs[spawned].stim = stim;\n"
        "        jobs[spawned].rec = rec;\n"
        "        jobs[spawned].rec_rows = rec_rows;\n"
        "        jobs[spawned].n_rec = n_rec;\n"
        "        jobs[spawned].rec_slot = rec_slot;\n"
        "        jobs[spawned].n_cycles = n_cycles;\n"
        "        jobs[spawned].nw = nw;\n"
        "        jobs[spawned].w0 = a; jobs[spawned].w1 = b;\n"
        "        jobs[spawned].status = 0;\n"
        "        ++spawned;\n"
        "    }\n"
        "    for (t = 1; t < spawned; ++t) {\n"
        "        created[t] = pthread_create(&tids[t], 0, knl_worker,\n"
        "            &jobs[t]) == 0;\n"
        "        if (!created[t])\n"
        "            knl_worker(&jobs[t]); /* degrade to inline */\n"
        "    }\n"
        "    knl_worker(&jobs[0]);\n"
        "    for (t = 1; t < spawned; ++t)\n"
        "        if (created[t]) pthread_join(tids[t], 0);\n"
        "    for (t = 0; t < spawned; ++t)\n"
        "        if (jobs[t].status) status = jobs[t].status;\n"
        "    return status;\n}\n"
    )
    return "".join(lines)


# ------------------------------------------------------- build + caching


class NativeKernelCacheInfo(NamedTuple):
    """Snapshot of the per-process loaded-kernel cache."""

    entries: int
    capacity: int
    hits: int
    misses: int
    builds: int


class _LoadedKernel(NamedTuple):
    lib: object
    so_path: str
    digest: str


#: dlopen'ed kernels, keyed by source digest.  Evicted entries are only
#: dereferenced (never dlclosed): a live simulator may still hold the
#: lib, and the handle count is bounded by the cache capacity anyway.
_KERNEL_CACHE: "OrderedDict[str, _LoadedKernel]" = OrderedDict()
_KERNEL_CACHE_SIZE = 32
_KERNEL_STATS = {"hits": 0, "misses": 0, "builds": 0}
_KERNEL_LOCK = threading.Lock()
_FFI = None


def native_kernel_cache_info() -> NativeKernelCacheInfo:
    """Entries, capacity and lifetime hit/miss/build counts."""
    with _KERNEL_LOCK:
        return NativeKernelCacheInfo(
            entries=len(_KERNEL_CACHE),
            capacity=_KERNEL_CACHE_SIZE,
            hits=_KERNEL_STATS["hits"],
            misses=_KERNEL_STATS["misses"],
            builds=_KERNEL_STATS["builds"],
        )


def clear_native_kernel_cache() -> None:
    """Drop loaded-kernel references and reset statistics (tests)."""
    with _KERNEL_LOCK:
        _KERNEL_CACHE.clear()
        _KERNEL_STATS.update(hits=0, misses=0, builds=0)


def _ffi():
    global _FFI
    if _FFI is None:
        from cffi import FFI

        ffi = FFI()
        ffi.cdef(_CDEF)
        _FFI = ffi
    return _FFI


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        path = configured
    else:
        path = os.path.join(
            os.path.expanduser("~"), ".cache", "repro-native"
        )
    try:
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        fallback = os.path.join(tempfile.gettempdir(), "repro-native")
        os.makedirs(fallback, exist_ok=True)
        return fallback


#: Whether the toolchain accepts ``-march=native`` (probed once; the
#: flag unlocks SIMD on the gate loops but is not universally supported).
_MARCH_NATIVE: Optional[bool] = None


def _cc_flags(cc: str) -> List[str]:
    global _MARCH_NATIVE
    flags = ["-O3", "-shared", "-fPIC", "-pthread"]
    if _MARCH_NATIVE is None:
        probe = os.path.join(
            tempfile.gettempdir(), f".repro-march-{os.getpid()}.c"
        )
        probe_so = probe[:-2] + ".so"
        try:
            with open(probe, "w") as handle:
                handle.write("int repro_probe(void){return 0;}\n")
            result = subprocess.run(
                [cc, "-march=native", *flags, "-o", probe_so, probe],
                capture_output=True, timeout=60,
            )
            _MARCH_NATIVE = result.returncode == 0
        except (OSError, subprocess.TimeoutExpired):
            _MARCH_NATIVE = False
        finally:
            for path in (probe, probe_so):
                try:
                    os.unlink(path)
                except OSError:
                    pass
    return (["-march=native"] if _MARCH_NATIVE else []) + flags


def _compile_source(source: str, digest: str, cc: str,
                    flags: List[str]) -> str:
    """Compile generated C to a shared object; returns the .so path.

    The on-disk artifact is keyed by the source+flags digest so
    concurrent worker processes share builds; writes go to a temp name
    and move into place atomically, so a racing builder at worst
    compiles twice.
    """
    directory = _cache_dir()
    so_path = os.path.join(directory, f"k_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    c_path = os.path.join(directory, f"k_{digest}.c")
    tmp_so = os.path.join(directory, f".k_{digest}.{os.getpid()}.so")
    with open(c_path, "w") as handle:
        handle.write(source)
    cmd = [cc, *flags, "-o", tmp_so, c_path]
    try:
        result = subprocess.run(
            cmd, capture_output=True, text=True, timeout=600
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise SimulationError(
            f"native kernel build failed to invoke {cc}: {exc}"
        ) from exc
    if result.returncode != 0:
        tail = (result.stderr or result.stdout or "").strip()[-2000:]
        raise SimulationError(
            f"native kernel build failed (exit {result.returncode}): {tail}"
        )
    os.replace(tmp_so, so_path)
    _KERNEL_STATS["builds"] += 1
    return so_path


def build_kernel(
    program: GateProgram, plan: Optional[RowPlan] = None
) -> _LoadedKernel:
    """Generate, compile (or reuse) and dlopen the kernel for a program.

    ``plan`` selects the state-slot assignment (default: pin-all).
    Raises :class:`SimulationError` when the toolchain is missing, the
    compile fails, or the engine is disabled via ``REPRO_NATIVE_DISABLE``.
    """
    reason = native_unavailable_reason()
    if reason is not None:
        raise SimulationError(f"native engine unavailable: {reason}")
    cc = _find_cc()
    if cc is None:  # pragma: no cover - already covered by the reason check
        raise SimulationError("native kernel build failed: no C compiler")
    flags = _cc_flags(cc)
    source = generate_kernel_source(program, plan)
    digest = hashlib.sha256(
        (source + "\0" + " ".join(flags)).encode()
    ).hexdigest()[:20]
    with _KERNEL_LOCK:
        cached = _KERNEL_CACHE.get(digest)
        if cached is not None:
            _KERNEL_CACHE.move_to_end(digest)
            _KERNEL_STATS["hits"] += 1
            return cached
        _KERNEL_STATS["misses"] += 1
        so_path = _compile_source(source, digest, cc, flags)
        try:
            lib = _ffi().dlopen(so_path)
        except OSError as exc:
            raise SimulationError(
                f"native kernel dlopen failed for {so_path}: {exc}"
            ) from exc
        kernel = _LoadedKernel(lib=lib, so_path=so_path, digest=digest)
        _KERNEL_CACHE[digest] = kernel
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_SIZE:
            _KERNEL_CACHE.popitem(last=False)
        return kernel


# --------------------------------------------------------------- simulator


class NativeSimulator:
    """Drop-in :class:`CompiledSimulator` running the fused C kernel.

    Same ``run`` contract and bit-identical :class:`Trace` output; the
    whole multi-cycle block executes in one foreign call, split across
    ``n_threads`` pthread workers by word range (clamped to the word
    count, so single-word blocks never pay thread overhead).
    """

    def __init__(
        self,
        netlist: Netlist,
        n_lanes: int,
        keep_nets: Optional[Iterable[int]] = None,
        n_threads: Optional[int] = None,
        record_nets: Optional[Iterable[int]] = None,
    ):
        if n_lanes <= 0:
            raise SimulationError("n_lanes must be positive")
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.n_words = words_for_lanes(n_lanes)
        self.n_threads = (
            native_default_threads() if n_threads is None else
            max(1, min(int(n_threads), _MAX_THREADS))
        )
        if keep_nets is None:
            self.program = compile_netlist(netlist)
            keep_list: List[int] = []
        else:
            keep_list = list(keep_nets)
            from repro.netlist.slice import slice_program

            self.program = slice_program(netlist, keep_list)
        program = self.program
        # Pin the rows callers may record -- stable nets, the cone roots
        # of a slice, and any declared record set -- so liveness
        # compaction never recycles them.  Recording a net outside this
        # set later triggers one kernel rebuild with a grown pin set.
        pin = {
            program.state_row(net)
            for net in netlist.stable_nets()
            if program.is_live(net)
        }
        pin.update(
            program.state_row(net)
            for net in keep_list
            if program.is_live(net)
        )
        if record_nets is not None:
            pin.update(
                program.state_row(net)
                for net in record_nets
                if program.is_live(net)
            )
        self._pin_rows = pin
        self._plan = _row_plan(program, sorted(pin))
        self._kernel = build_kernel(program, self._plan)
        inputs = program.input_nets
        if len(inputs) == 1:
            only = inputs[0]
            self._gather = lambda provided: (provided[only],)
        elif inputs:
            self._gather = operator.itemgetter(*inputs)
        else:
            self._gather = None

    @property
    def input_nets(self) -> Tuple[int, ...]:
        """Primary-input net ids in dense-stimulus row order."""
        return tuple(self.program.input_nets)

    def expand_stimulus(
        self, stimulus: Stimulus, n_cycles: int
    ) -> np.ndarray:
        """Pre-expand a per-cycle stimulus callable into the dense form.

        Returns the ``(n_cycles, n_inputs, n_words)`` uint64 array the
        kernel consumes (rows ordered as :attr:`input_nets`).  ``run``
        accepts this array directly in place of the callable, letting
        callers stage stimulus once and replay it without paying the
        per-cycle dict gather again.
        """
        n_inputs = len(self.program.input_nets)
        stim = np.zeros(
            (n_cycles, max(n_inputs, 1), self.n_words), np.uint64
        )
        if n_inputs:
            flat = stim.reshape(n_cycles, -1)
            gather = self._gather
            for cycle in range(n_cycles):
                provided = stimulus(cycle)
                try:
                    np.concatenate(gather(provided), out=flat[cycle])
                except (KeyError, ValueError, TypeError):
                    self._expand_cycle(provided, cycle, stim)
        return stim

    def run(
        self,
        stimulus,
        n_cycles: int,
        record_nets: Optional[Iterable[int]] = None,
        record_cycles: Optional[Iterable[int]] = None,
    ) -> Trace:
        """Simulate ``n_cycles`` cycles; same contract as the other engines.

        ``stimulus`` is either the standard per-cycle callable or a dense
        ``(n_cycles, n_inputs, n_words)`` uint64 array from
        :meth:`expand_stimulus`.
        """
        netlist = self.netlist
        program = self.program
        if record_nets is None:
            record_nets = [
                net for net in netlist.stable_nets() if program.is_live(net)
            ]
        record_list = list(record_nets)
        state_rows = np.asarray(
            [program.state_row(net) for net in record_list], dtype=np.int64
        )
        if state_rows.size and not self._plan.pinned[state_rows].all():
            # The record set reaches rows the liveness plan recycled:
            # grow the pin set (monotonically, so alternating record
            # sets converge) and rebuild once; the on-disk cache makes
            # repeats cheap.  Declare the set via ``record_nets`` at
            # construction to avoid the extra build.
            self._pin_rows.update(int(row) for row in state_rows)
            self._plan = _row_plan(program, sorted(self._pin_rows))
            self._kernel = build_kernel(program, self._plan)
        record_rows = self._plan.slot_of[state_rows]
        cycle_filter = None if record_cycles is None else set(record_cycles)
        trace = Trace(self.n_lanes, record_list)
        if n_cycles <= 0:
            return trace

        n_words = self.n_words
        n_inputs = len(program.input_nets)
        # The kernel consumes a dense (n_cycles, n_inputs, n_words)
        # array in one call; expand the per-cycle callable unless the
        # caller staged the dense form already (expand_stimulus).
        if isinstance(stimulus, np.ndarray):
            expected = (n_cycles, max(n_inputs, 1), n_words)
            if stimulus.dtype != np.uint64 or stimulus.shape != expected:
                raise SimulationError(
                    f"dense stimulus must be a uint64 array of shape "
                    f"{expected}, got {stimulus.dtype} {stimulus.shape}"
                )
            stim = np.ascontiguousarray(stimulus)
        else:
            stim = self.expand_stimulus(stimulus, n_cycles)

        rec_slot = np.full(n_cycles, -1, dtype=np.int64)
        slots = 0
        for cycle in range(n_cycles):
            if cycle_filter is None or cycle in cycle_filter:
                rec_slot[cycle] = slots
                slots += 1
        n_rec = len(record_list)
        rec = np.zeros((max(slots, 1), max(n_rec, 1), n_words), np.uint64)
        if record_rows.size == 0:
            record_rows = np.zeros(1, dtype=np.int64)

        ffi = _ffi()
        status = self._kernel.lib.repro_run(
            ffi.cast("uint64_t *", stim.ctypes.data),
            ffi.cast("uint64_t *", rec.ctypes.data),
            ffi.cast("int64_t *", record_rows.ctypes.data),
            n_rec,
            ffi.cast("int64_t *", rec_slot.ctypes.data),
            n_cycles,
            n_words,
            self.n_threads,
        )
        if status != 0:
            raise SimulationError(
                f"native kernel execution failed (status {status})"
            )

        # Trace rows are views into the freshly-written rec buffer -- it
        # is owned solely by this call, so no copy is needed and the
        # views keep it alive.
        values = trace.values
        for cycle in range(n_cycles):
            slot = int(rec_slot[cycle])
            if slot < 0:
                values.append({})
            else:
                values.append(dict(zip(record_list, rec[slot])))
        return trace

    def _expand_cycle(
        self, provided: dict, cycle: int, stim: np.ndarray
    ) -> None:
        """Slow validating path behind the vectorized stimulus expansion.

        Entered only when the fast concatenate raises -- reproduces the
        per-input diagnostics of the other engines (missing primary
        input, wrong word-vector shape) or completes the odd-typed but
        valid cycle the stack could not fuse.
        """
        n_words = self.n_words
        for slot, pi in enumerate(self.program.input_nets):
            if pi not in provided:
                raise SimulationError(
                    f"stimulus missing primary input "
                    f"{self.netlist.net_name(pi)!r} at cycle {cycle}"
                )
            words = np.asarray(provided[pi], dtype=np.uint64)
            if words.shape != (n_words,):
                raise SimulationError(
                    f"stimulus for {self.netlist.net_name(pi)!r} has "
                    f"shape {words.shape}, expected ({n_words},)"
                )
            stim[cycle, slot] = words
