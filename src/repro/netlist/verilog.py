"""Structural Verilog export.

Produces a flat gate-level module using NanGate45-style cell names, the same
kind of netlist the paper feeds to PROLEAD.  Net names are sanitised into
Verilog identifiers with the hierarchical path kept inside escaped
identifiers.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.netlist.cells import CellType
from repro.netlist.core import Netlist

_PRIMITIVES: Dict[CellType, str] = {
    CellType.BUF: "buf",
    CellType.NOT: "not",
    CellType.AND: "and",
    CellType.NAND: "nand",
    CellType.OR: "or",
    CellType.NOR: "nor",
    CellType.XOR: "xor",
    CellType.XNOR: "xnor",
}

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(name: str) -> str:
    clean = _IDENT_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "n_" + clean
    return clean


def to_verilog(netlist: Netlist) -> str:
    """Render the netlist as a structural Verilog module.

    Registers become always-blocks clocked by an added ``clk`` port; all
    other cells become gate primitives (or an assign for MUX/constants).
    """
    names: Dict[int, str] = {}
    used: Dict[str, int] = {}
    for net in range(netlist.n_nets):
        base = _sanitize(netlist.net_name(net))
        count = used.get(base, 0)
        used[base] = count + 1
        names[net] = base if count == 0 else f"{base}__{count}"

    inputs = [names[n] for n in netlist.inputs]
    outputs = [names[n] for n in netlist.outputs]
    has_dff = any(True for _ in netlist.dff_cells())
    ports = (["clk"] if has_dff else []) + inputs + outputs

    lines: List[str] = []
    lines.append(f"module {_sanitize(netlist.name)} (")
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    if has_dff:
        lines.append("  input clk;")
    for name in inputs:
        lines.append(f"  input {name};")
    for name in outputs:
        lines.append(f"  output {name};")

    dff_outputs = {c.output for c in netlist.dff_cells()}
    declared = set(netlist.inputs)
    for net in range(netlist.n_nets):
        if net in declared:
            continue
        keyword = "reg" if net in dff_outputs else "wire"
        lines.append(f"  {keyword} {names[net]};")

    instance = 0
    for cell in netlist.cells:
        kind = cell.cell_type
        out = names[cell.output]
        ins = [names[n] for n in cell.inputs]
        if kind is CellType.DFF:
            continue
        if kind is CellType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif kind is CellType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        elif kind is CellType.MUX:
            sel, d0, d1 = ins
            lines.append(f"  assign {out} = {sel} ? {d1} : {d0};")
        else:
            primitive = _PRIMITIVES[kind]
            args = ", ".join([out] + ins)
            lines.append(f"  {primitive} g{instance} ({args});")
            instance += 1

    if has_dff:
        lines.append("  always @(posedge clk) begin")
        for cell in netlist.dff_cells():
            lines.append(
                f"    {names[cell.output]} <= {names[cell.inputs[0]]};"
            )
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
