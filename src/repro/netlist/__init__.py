"""Gate-level netlist IR, builder, passes, export and simulation.

This package is the hardware substrate of the reproduction.  The paper's
designs were written in Verilog and synthesized with Yosys to a NanGate45
netlist; here circuits are built directly at gate level with
:class:`repro.netlist.builder.CircuitBuilder`, which yields the same
gate/register graph that the probing-model analysis operates on.
"""

from repro.netlist.cells import CellType
from repro.netlist.core import Cell, Netlist, netlist_content_hash
from repro.netlist.builder import CircuitBuilder
from repro.netlist.topo import (
    combinational_cone,
    levelize,
    stable_support,
    transitive_input_support,
)
from repro.netlist.simulate import BitslicedSimulator, Trace, evaluate_combinational
from repro.netlist.compile import (
    CompiledSimulator,
    GateProgram,
    compile_netlist,
    program_cache_info,
    set_program_cache_capacity,
)
from repro.netlist.native import (
    NativeSimulator,
    clear_native_kernel_cache,
    native_available,
    native_default_threads,
    native_kernel_cache_info,
    native_unavailable_reason,
)
from repro.netlist.slice import (
    ScheduledSimulator,
    SliceStats,
    scheduled_cone,
    sequential_cone,
    slice_key,
    slice_program,
    slice_stats,
)
from repro.netlist.stats import NetlistStats, netlist_stats
from repro.netlist.opt import optimize
from repro.netlist.verilog import to_verilog
from repro.netlist.verilog_import import from_verilog

__all__ = [
    "optimize",
    "from_verilog",
    "CellType",
    "Cell",
    "Netlist",
    "CircuitBuilder",
    "levelize",
    "combinational_cone",
    "stable_support",
    "transitive_input_support",
    "BitslicedSimulator",
    "CompiledSimulator",
    "NativeSimulator",
    "native_available",
    "native_unavailable_reason",
    "native_default_threads",
    "native_kernel_cache_info",
    "clear_native_kernel_cache",
    "GateProgram",
    "compile_netlist",
    "netlist_content_hash",
    "program_cache_info",
    "set_program_cache_capacity",
    "ScheduledSimulator",
    "SliceStats",
    "scheduled_cone",
    "sequential_cone",
    "slice_key",
    "slice_program",
    "slice_stats",
    "Trace",
    "evaluate_combinational",
    "NetlistStats",
    "netlist_stats",
    "to_verilog",
]
