"""Probe-driven fan-in slicing of netlists and compiled gate programs.

Probing-model evaluations only ever *read* the stable support nets of their
probe classes, yet the simulators execute the entire design every cycle.
This module computes the **sequential fan-in cone** of an arbitrary net set
-- the transitive closure of drivers through registers, across cycles -- and
slices a compiled :class:`~repro.netlist.compile.GateProgram` down to it:

* dead vectorized dispatches are dropped entirely (a dispatch keeps only
  the cells whose outputs are in the cone);
* dead state rows are compacted away (the ``(n_nets, n_words)`` state
  matrix shrinks to ``(n_live, n_words)``), with a net-index remap kept on
  the program so :class:`~repro.netlist.simulate.Trace` extraction and
  histogram table ids are unchanged;
* slices are content-hash cached alongside full programs in the bounded
  program cache, keyed by (netlist hash, cone digest).

Because the cone is closed under fan-in, every live net computes exactly
the same uint64 words as in the full program -- sliced evaluation is
**bit-identical**, only faster, by roughly the full/cone cell ratio (the
E11 whole-core workload probes one S-box inside a ~21k-cell AES core and
simulates ~16x fewer cells).  This mirrors how PROLEAD's glitch-extended
probe sets and aLEAKator's verification slices confine analysis to the
relevant part of the design.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import NetlistError, SimulationError
from repro.netlist.cells import CellType
from repro.netlist.compile import (
    GateOp,
    GateProgram,
    compile_netlist,
    netlist_content_hash,
    program_cache_get,
    program_cache_put,
)
from repro.netlist.core import Netlist

#: Memoized cones, keyed by (netlist content hash, root-set digest).
_CONE_MEMO: "OrderedDict[Tuple[str, str], FrozenSet[int]]" = OrderedDict()
_CONE_MEMO_SIZE = 64

#: Memoized per-cycle cones, keyed by (netlist hash, parameter digest).
_SCHEDULED_MEMO: (
    "OrderedDict[Tuple[str, str], Tuple[FrozenSet[int], ...]]"
) = OrderedDict()
_SCHEDULED_MEMO_SIZE = 16

#: Memoized flat driver tables, keyed by netlist content hash.
_ARRAYS_MEMO: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
_ARRAYS_MEMO_SIZE = 8

#: Net-kind codes used by the vectorized traversals.
_KIND_INPUT = 0
_KIND_DFF = 1
_KIND_CONST0 = 2
_KIND_CONST1 = 3
_KIND_MUX = 4
_KIND_COMB = 5
_KIND_NONE = 6

#: Stable per-CellType dispatch order (0 is reserved for folded copies).
_CTYPE_LIST: List[CellType] = list(CellType)
_CTYPE_ORDER: Dict[CellType, int] = {
    ct: i + 1 for i, ct in enumerate(_CTYPE_LIST)
}


def _driver_arrays(netlist: Netlist) -> Dict[str, object]:
    """Flat per-net driver tables for vectorized cone traversal.

    For every net: its driver kind code, the driver's input nets padded to
    arity 3 with ``-1`` (``in0`` holds D for registers), its register index
    (enumeration order of :meth:`Netlist.dff_cells`), its CellType order
    code and its combinational level.  Memoized per netlist content hash --
    both :func:`scheduled_cone` and :class:`ScheduledSimulator` index these
    arrays with whole net-set arrays instead of walking Python cell objects.
    """
    key = netlist_content_hash(netlist)
    cached = _ARRAYS_MEMO.get(key)
    if cached is not None:
        _ARRAYS_MEMO.move_to_end(key)
        return cached
    from repro.netlist.topo import levelize

    n = netlist.n_nets
    kind = np.full(n, _KIND_NONE, dtype=np.int8)
    ctype = np.full(n, -1, dtype=np.int16)
    in0 = np.full(n, -1, dtype=np.intp)
    in1 = np.full(n, -1, dtype=np.intp)
    in2 = np.full(n, -1, dtype=np.intp)
    dff_index = np.full(n, -1, dtype=np.intp)
    if netlist.inputs:
        kind[np.asarray(netlist.inputs, dtype=np.intp)] = _KIND_INPUT
    n_dffs = 0
    for cell in netlist.cells:
        out = cell.output
        cell_type = cell.cell_type
        if cell_type is CellType.DFF:
            kind[out] = _KIND_DFF
            dff_index[out] = n_dffs
            in0[out] = cell.inputs[0]
            n_dffs += 1
            continue
        if cell_type is CellType.CONST0:
            kind[out] = _KIND_CONST0
            continue
        if cell_type is CellType.CONST1:
            kind[out] = _KIND_CONST1
            continue
        kind[out] = (
            _KIND_MUX if cell_type is CellType.MUX else _KIND_COMB
        )
        ctype[out] = _CTYPE_ORDER[cell_type]
        inputs = cell.inputs
        in0[out] = inputs[0]
        if len(inputs) > 1:
            in1[out] = inputs[1]
        if len(inputs) > 2:
            in2[out] = inputs[2]

    order = levelize(netlist)
    level_list = [0] * n
    for cell in order:
        if cell.cell_type in (CellType.CONST0, CellType.CONST1):
            continue
        best = 0
        for src in cell.inputs:
            if level_list[src] > best:
                best = level_list[src]
        level_list[cell.output] = best + 1

    arrays: Dict[str, object] = {
        "kind": kind,
        "ctype": ctype,
        "in0": in0,
        "in1": in1,
        "in2": in2,
        "dff_index": dff_index,
        "level": np.asarray(level_list, dtype=np.int64),
        "n_dffs": n_dffs,
        "n_comb_cells": len(order),
    }
    _ARRAYS_MEMO[key] = arrays
    while len(_ARRAYS_MEMO) > _ARRAYS_MEMO_SIZE:
        _ARRAYS_MEMO.popitem(last=False)
    return arrays


def _schedule_table(
    netlist: Netlist,
    values: Mapping[int, Tuple[int, ...]],
    n_cycles: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Schedule as (per-net row index, (n_scheduled, n_cycles) bool matrix)."""
    sched_row = np.full(netlist.n_nets, -1, dtype=np.intp)
    nets = sorted(values)
    sched_bits = np.zeros((len(nets), n_cycles), dtype=bool)
    for i, net in enumerate(nets):
        sched_row[net] = i
        sched_bits[i] = np.asarray(values[net][:n_cycles], dtype=bool)
    return sched_row, sched_bits


def _digest_nets(nets: Iterable[int]) -> str:
    """Order-invariant SHA-256 of a net-index set."""
    text = ",".join(map(str, sorted(set(nets))))
    return hashlib.sha256(text.encode()).hexdigest()


def sequential_cone(netlist: Netlist, nets: Iterable[int]) -> FrozenSet[int]:
    """Transitive fan-in of ``nets``, through registers, across cycles.

    Generalizes :func:`repro.netlist.topo.combinational_cone`: instead of
    stopping at stable signals, the traversal crosses every register from
    its Q output to its D input, so the result is everything that can
    influence the given nets at *any* cycle.  The cone is inclusive of the
    roots and closed under fan-in: every input of every cell whose output
    is in the cone is in the cone too -- the property that makes simulating
    only the cone bit-identical for every net in it.
    """
    roots = list(set(nets))
    for net in roots:
        if not 0 <= net < netlist.n_nets:
            raise NetlistError(f"net index {net} out of range")
    key = (netlist_content_hash(netlist), _digest_nets(roots))
    cached = _CONE_MEMO.get(key)
    if cached is not None:
        _CONE_MEMO.move_to_end(key)
        return cached
    cone = set()
    stack = roots
    while stack:
        current = stack.pop()
        if current in cone:
            continue
        cone.add(current)
        driver = netlist.driver(current)
        if driver is None:
            continue
        stack.extend(driver.inputs)
    result = frozenset(cone)
    _CONE_MEMO[key] = result
    while len(_CONE_MEMO) > _CONE_MEMO_SIZE:
        _CONE_MEMO.popitem(last=False)
    return result


def clear_cone_memo() -> None:
    """Drop memoized sequential cones (test isolation helper)."""
    _CONE_MEMO.clear()
    _SCHEDULED_MEMO.clear()


def _validate_schedule(
    netlist: Netlist,
    schedule: Mapping[int, Sequence[int]],
    n_cycles: int,
) -> Dict[int, Tuple[int, ...]]:
    """Check a control schedule and normalize it to int tuples."""
    inputs = set(netlist.inputs)
    normalized: Dict[int, Tuple[int, ...]] = {}
    for net, bits in schedule.items():
        if net not in inputs:
            raise NetlistError(
                f"scheduled net {net} is not a primary input"
            )
        values = tuple(int(b) for b in bits)
        if len(values) < n_cycles:
            raise NetlistError(
                f"schedule for net {net} covers {len(values)} cycles, "
                f"need {n_cycles}"
            )
        if any(v not in (0, 1) for v in values):
            raise NetlistError(f"schedule for net {net} has non-bit values")
        normalized[net] = values
    return normalized


def scheduled_cone(
    netlist: Netlist,
    nets: Iterable[int],
    record_cycles: Iterable[int],
    n_cycles: int,
    schedule: Mapping[int, Sequence[int]],
) -> Tuple[FrozenSet[int], ...]:
    """Per-cycle fan-in cones under a known public control schedule.

    :func:`sequential_cone` is cycle-agnostic: in a recirculating design
    (a cipher core whose state registers feed themselves through
    load/capture muxes) the static cone reaches essentially the whole
    netlist, and slicing buys nothing.  But protocol-driven designs fix
    the values of their control inputs per cycle -- and a MUX whose
    select is a *scheduled* control only ever propagates its selected
    branch.  This traversal walks backward over ``(net, cycle)`` pairs
    from the roots at each record cycle, crossing each register from Q at
    cycle ``t`` to D at ``t - 1`` and, at a scheduled MUX, following only
    the branch selected at that cycle.  Feedback paths through de-selected
    mux branches are cut exactly, so round-1 observations of a cipher core
    reach back only to the load cycle instead of the whole design.

    Returns one frozenset of needed nets per cycle (length ``n_cycles``).
    Scheduled nets must be primary inputs driven with the declared scalar
    value on every lane; :class:`ScheduledSimulator` verifies this at run
    time, which makes sliced execution bit-identical (the bitsliced
    constant encoding fills all 64 bits of each word, so the de-selected
    branch is masked out entirely).
    """
    roots = sorted(set(nets))
    for net in roots:
        if not 0 <= net < netlist.n_nets:
            raise NetlistError(f"net index {net} out of range")
    if n_cycles <= 0:
        raise NetlistError("n_cycles must be positive")
    cycles = sorted(set(int(t) for t in record_cycles))
    if not cycles:
        raise NetlistError("at least one record cycle is required")
    if cycles[0] < 0 or cycles[-1] >= n_cycles:
        raise NetlistError(
            f"record cycles {cycles[0]}..{cycles[-1]} outside "
            f"[0, {n_cycles})"
        )
    values = _validate_schedule(netlist, schedule, n_cycles)

    digest = hashlib.sha256()
    digest.update(_digest_nets(roots).encode())
    digest.update(repr((cycles, n_cycles, sorted(values.items()))).encode())
    key = (netlist_content_hash(netlist), digest.hexdigest())
    cached = _SCHEDULED_MEMO.get(key)
    if cached is not None:
        _SCHEDULED_MEMO.move_to_end(key)
        return cached

    # Frontier-vectorized traversal: registers are the only edges that
    # cross cycles (Q at t -> D at t-1), so cycles can be processed
    # latest-first, expanding each cycle's within-cycle closure with whole
    # frontier arrays instead of one (net, cycle) pair at a time.
    arrays = _driver_arrays(netlist)
    kind = arrays["kind"]
    in0, in1, in2 = arrays["in0"], arrays["in1"], arrays["in2"]
    sched_row, sched_bits = _schedule_table(netlist, values, n_cycles)
    needed_mask = np.zeros((n_cycles, netlist.n_nets), dtype=bool)
    root_array = np.asarray(roots, dtype=np.intp)
    seeds: List[List[np.ndarray]] = [[] for _ in range(n_cycles)]
    for t in cycles:
        seeds[t].append(root_array)
    for t in range(n_cycles - 1, -1, -1):
        if not seeds[t]:
            continue
        mask = needed_mask[t]
        frontier = np.unique(np.concatenate(seeds[t]))
        frontier = frontier[~mask[frontier]]
        while frontier.size:
            mask[frontier] = True
            kinds = kind[frontier]
            if t > 0:
                dff_nets = frontier[kinds == _KIND_DFF]
                if dff_nets.size:
                    seeds[t - 1].append(in0[dff_nets])
            parts: List[np.ndarray] = []
            mux_nets = frontier[kinds == _KIND_MUX]
            if mux_nets.size:
                rows = sched_row[in0[mux_nets]]
                scheduled = rows >= 0
                folded = mux_nets[scheduled]
                if folded.size:
                    select = sched_bits[rows[scheduled], t]
                    parts.append(
                        np.where(select, in2[folded], in1[folded])
                    )
                free = mux_nets[~scheduled]
                if free.size:
                    parts.extend((in0[free], in1[free], in2[free]))
            comb_nets = frontier[kinds == _KIND_COMB]
            if comb_nets.size:
                for table in (in0, in1, in2):
                    sources = table[comb_nets]
                    parts.append(sources[sources >= 0])
            if not parts:
                break
            candidates = np.unique(np.concatenate(parts))
            frontier = candidates[~mask[candidates]]

    result = tuple(
        frozenset(map(int, np.flatnonzero(needed_mask[t])))
        for t in range(n_cycles)
    )
    _SCHEDULED_MEMO[key] = result
    while len(_SCHEDULED_MEMO) > _SCHEDULED_MEMO_SIZE:
        _SCHEDULED_MEMO.popitem(last=False)
    return result


def slice_key(netlist: Netlist, nets: Iterable[int]) -> str:
    """Cache/identity key of the slice induced by ``nets``.

    Two selections with the same sequential cone share one sliced program
    (and one key): the adaptive scheduler may prune probes without changing
    the cone, in which case nothing is recompiled and telemetry reports no
    re-slice.
    """
    cone = sequential_cone(netlist, nets)
    return f"{netlist_content_hash(netlist)}:slice:{_digest_nets(cone)}"


@dataclass(frozen=True)
class SliceStats:
    """Size of a slice relative to its full program (for telemetry)."""

    n_cells_full: int
    n_cells: int
    n_dispatches_full: int
    n_dispatches: int
    n_state_full: int
    n_state: int
    n_dffs_full: int
    n_dffs: int

    @property
    def cell_ratio(self) -> float:
        """Full/slice combinational-cell ratio (>= 1)."""
        return self.n_cells_full / max(1, self.n_cells)

    @property
    def dispatch_ratio(self) -> float:
        """Full/slice vectorized-dispatch ratio (>= 1)."""
        return self.n_dispatches_full / max(1, self.n_dispatches)

    @property
    def state_ratio(self) -> float:
        """Full/slice state-row ratio (>= 1)."""
        return self.n_state_full / max(1, self.n_state)

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe form, ratios included."""
        return {
            "cells_full": self.n_cells_full,
            "cells": self.n_cells,
            "cell_ratio": round(self.cell_ratio, 3),
            "dispatches_full": self.n_dispatches_full,
            "dispatches": self.n_dispatches,
            "dispatch_ratio": round(self.dispatch_ratio, 3),
            "state_full": self.n_state_full,
            "state": self.n_state,
            "state_ratio": round(self.state_ratio, 3),
            "dffs_full": self.n_dffs_full,
            "dffs": self.n_dffs,
        }


def slice_stats(netlist: Netlist, nets: Iterable[int]) -> SliceStats:
    """Size of the slice induced by ``nets`` vs. the full program."""
    full = compile_netlist(netlist)
    sliced = slice_program(netlist, nets)
    return SliceStats(
        n_cells_full=full.n_comb_cells,
        n_cells=sliced.n_comb_cells,
        n_dispatches_full=full.n_dispatches,
        n_dispatches=sliced.n_dispatches,
        n_state_full=full.n_state_rows,
        n_state=sliced.n_state_rows,
        n_dffs_full=int(full.dff_q.size),
        n_dffs=int(sliced.dff_q.size),
    )


def slice_program(
    netlist: Netlist,
    keep_nets: Iterable[int],
    use_cache: bool = True,
) -> GateProgram:
    """Slice the netlist's compiled program to the cone of ``keep_nets``.

    The returned program executes only the cells whose outputs lie in
    ``sequential_cone(netlist, keep_nets)`` and allocates state rows only
    for cone nets; its ``net_map`` translates original net ids so recorded
    traces keep original net keys.  Slices share the bounded program cache
    with full programs under :func:`slice_key`.
    """
    keep_list = list(keep_nets)
    cone = sequential_cone(netlist, keep_list)
    key = f"{netlist_content_hash(netlist)}:slice:{_digest_nets(cone)}"
    if use_cache:
        cached = program_cache_get(key)
        if cached is not None:
            return cached

    full = compile_netlist(netlist, use_cache=use_cache)
    live = np.fromiter(sorted(cone), dtype=np.intp, count=len(cone))
    net_map = np.full(full.n_nets, -1, dtype=np.intp)
    net_map[live] = np.arange(live.size, dtype=np.intp)

    ops = []
    for op in full.ops:
        mask = net_map[op.out] >= 0
        if not mask.any():
            continue
        if mask.all():
            mask = slice(None)
        ops.append(
            GateOp(
                cell_type=op.cell_type,
                out=net_map[op.out[mask]],
                in0=net_map[op.in0[mask]],
                in1=net_map[op.in1[mask]] if op.in1.size else op.in1,
                in2=net_map[op.in2[mask]] if op.in2.size else op.in2,
            )
        )
    dff_mask = net_map[full.dff_q] >= 0
    program = GateProgram(
        content_hash=key,
        n_nets=full.n_nets,
        input_nets=tuple(pi for pi in full.input_nets if pi in cone),
        ops=tuple(ops),
        const0=net_map[full.const0[net_map[full.const0] >= 0]],
        const1=net_map[full.const1[net_map[full.const1] >= 0]],
        dff_d=net_map[full.dff_d[dff_mask]],
        dff_q=net_map[full.dff_q[dff_mask]],
        n_levels=full.n_levels,
        n_state=int(live.size),
        net_map=net_map,
    )
    if use_cache:
        program_cache_put(key, program)
    return program


class ScheduledSimulator:
    """Bitsliced simulation restricted to per-cycle scheduled cones.

    Executes, at each cycle, only the cells whose outputs
    :func:`scheduled_cone` proved necessary to reproduce the root nets at
    the record cycles -- in a protocol-driven design with recirculating
    registers this skips nearly every cell on nearly every cycle, where
    the static :func:`sequential_cone` would retain the whole netlist.

    Per-cycle active sets are compiled at construction into vectorized
    dispatches (contiguous index arrays grouped by level and cell type
    over an ``(n_nets, n_words)`` state matrix, exactly like
    :class:`~repro.netlist.compile.CompiledSimulator`); a MUX whose select
    is scheduled is folded into a copy of its selected branch.  Every
    stimulus word driven on a scheduled net is verified against the
    declared schedule (all lanes, all 64 bits of each word), so the result
    is bit-identical to the full simulation at every recorded
    (net, cycle) pair -- a wrong schedule raises instead of silently
    diverging.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_lanes: int,
        roots: Iterable[int],
        record_cycles: Iterable[int],
        n_cycles: int,
        schedule: Mapping[int, Sequence[int]],
    ):
        from repro.netlist.simulate import words_for_lanes

        if n_lanes <= 0:
            raise SimulationError("n_lanes must be positive")
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.n_words = words_for_lanes(n_lanes)
        self.n_cycles = n_cycles
        self.roots = sorted(set(roots))
        self.record_cycles = sorted(set(int(t) for t in record_cycles))
        self._schedule = _validate_schedule(netlist, schedule, n_cycles)
        self._needed = scheduled_cone(
            netlist, self.roots, self.record_cycles, n_cycles, schedule
        )

        arrays = _driver_arrays(netlist)
        kind = arrays["kind"]
        ctype = arrays["ctype"]
        in0, in1, in2 = arrays["in0"], arrays["in1"], arrays["in2"]
        dff_index = arrays["dff_index"]
        level = arrays["level"]
        self._n_comb_cells = arrays["n_comb_cells"]
        self._n_dffs = arrays["n_dffs"]
        sched_row, sched_bits = _schedule_table(
            netlist, self._schedule, n_cycles
        )
        needed_arrays = [
            np.sort(np.fromiter(per, dtype=np.intp, count=len(per)))
            for per in self._needed
        ]

        #: per cycle: list of GateOps (level-major), input nets, register
        #: read/capture index arrays, and the active cell count.
        self._cycle_ops: List[List[GateOp]] = []
        self._cycle_inputs: List[List[int]] = []
        self._cycle_reads: List[Tuple[np.ndarray, np.ndarray]] = []
        self._cycle_captures: List[Tuple[np.ndarray, np.ndarray]] = []
        self._const0: set = set()
        self._const1: set = set()
        self._active_cell_cycles = 0
        empty = np.empty(0, dtype=np.intp)
        for t in range(n_cycles):
            nets = needed_arrays[t]
            kinds = kind[nets]
            inputs_t = nets[kinds == _KIND_INPUT]
            read_q = nets[kinds == _KIND_DFF]
            self._const0.update(map(int, nets[kinds == _KIND_CONST0]))
            self._const1.update(map(int, nets[kinds == _KIND_CONST1]))
            # Scheduled muxes fold into copies of their selected branch;
            # muxes with a live (unscheduled) select dispatch normally.
            comb_nets = nets[kinds == _KIND_COMB]
            mux_nets = nets[kinds == _KIND_MUX]
            folded = folded_src = empty
            if mux_nets.size:
                rows = sched_row[in0[mux_nets]]
                scheduled = rows >= 0
                folded = mux_nets[scheduled]
                if folded.size:
                    select = sched_bits[rows[scheduled], t]
                    folded_src = np.where(
                        select, in2[folded], in1[folded]
                    )
                comb_nets = np.concatenate(
                    [comb_nets, mux_nets[~scheduled]]
                )
            self._active_cell_cycles += int(comb_nets.size + folded.size)

            # One vectorized dispatch per (level, cell type); folded
            # copies sort first within their level (order code 0).
            # Ordering within a level is free -- same-level cells never
            # feed each other -- so level-major order is preserved.
            ops: List[GateOp] = []
            if folded.size or comb_nets.size:
                out_all = np.concatenate([folded, comb_nets])
                src_all = np.concatenate([folded_src, in0[comb_nets]])
                code_all = np.concatenate([
                    np.zeros(folded.size, dtype=np.int64),
                    ctype[comb_nets].astype(np.int64),
                ])
                composite = level[out_all] * 64 + code_all
                order = np.argsort(composite, kind="stable")
                out_all = out_all[order]
                src_all = src_all[order]
                composite = composite[order]
                boundaries = np.flatnonzero(np.diff(composite)) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [composite.size]))
                for start, end in zip(starts, ends):
                    code = int(composite[start]) % 64
                    outs = out_all[start:end]
                    if code == 0:
                        ops.append(GateOp(
                            cell_type=CellType.BUF,
                            out=outs,
                            in0=src_all[start:end],
                            in1=empty,
                            in2=empty,
                        ))
                        continue
                    cell_type = _CTYPE_LIST[code - 1]
                    arity = cell_type.arity
                    ops.append(GateOp(
                        cell_type=cell_type,
                        out=outs,
                        in0=in0[outs],
                        in1=in1[outs] if arity >= 2 else empty,
                        in2=in2[outs] if arity >= 3 else empty,
                    ))
            self._cycle_ops.append(ops)
            self._cycle_inputs.append(inputs_t.tolist())
            self._cycle_reads.append((read_q, dff_index[read_q]))
            if t + 1 < n_cycles:
                upcoming = needed_arrays[t + 1]
                dff_next = upcoming[kind[upcoming] == _KIND_DFF]
                self._cycle_captures.append(
                    (in0[dff_next], dff_index[dff_next])
                )
            else:
                self._cycle_captures.append((empty, empty))

    def stats(self) -> Dict[str, float]:
        """Active vs. full cell evaluations over the whole run."""
        full = self._n_comb_cells * self.n_cycles
        active = self._active_cell_cycles
        dispatches = sum(len(ops) for ops in self._cycle_ops)
        return {
            "cell_cycles_full": full,
            "cell_cycles": active,
            "cell_cycle_ratio": round(full / max(1, active), 3),
            "dispatches": dispatches,
            "n_cycles": self.n_cycles,
            "record_cycles": len(self.record_cycles),
        }

    def run(self, stimulus, record_nets: Optional[Iterable[int]] = None):
        """Simulate and record ``record_nets`` at the record cycles.

        ``record_nets`` defaults to the cone roots and must be a subset of
        them (the scheduled cone only guarantees values for the roots at
        the record cycles).  The stimulus must drive every needed primary
        input, with each scheduled net held at its declared per-cycle
        constant.  The simulator carries no mutable state between runs, so
        one instance can evaluate many stimulus streams.
        """
        from repro.netlist.simulate import Trace

        record_list = (
            list(self.roots) if record_nets is None else list(record_nets)
        )
        root_set = set(self.roots)
        for net in record_list:
            if net not in root_set:
                raise SimulationError(
                    f"net {net} is not a root of this scheduled slice"
                )
        record_set = set(self.record_cycles)
        trace = Trace(self.n_lanes, record_list)

        netlist = self.netlist
        n_words = self.n_words
        full_word = np.uint64(0xFFFFFFFFFFFFFFFF)
        state = np.zeros((netlist.n_nets, n_words), dtype=np.uint64)
        if self._const1:
            state[np.asarray(sorted(self._const1), dtype=np.intp)] = (
                full_word
            )
        reg_state = np.zeros((self._n_dffs, n_words), dtype=np.uint64)

        for cycle in range(self.n_cycles):
            provided = stimulus(cycle)
            for pi in self._cycle_inputs[cycle]:
                if pi not in provided:
                    raise SimulationError(
                        f"stimulus missing primary input "
                        f"{netlist.net_name(pi)!r} at cycle {cycle}"
                    )
                words = np.asarray(provided[pi], dtype=np.uint64)
                if words.shape != (n_words,):
                    raise SimulationError(
                        f"stimulus for {netlist.net_name(pi)!r} has shape "
                        f"{words.shape}, expected ({n_words},)"
                    )
                state[pi] = words
            for net, bits in self._schedule.items():
                if net not in provided:
                    raise SimulationError(
                        f"stimulus missing scheduled input "
                        f"{netlist.net_name(net)!r} at cycle {cycle}"
                    )
                expected = full_word if bits[cycle] else np.uint64(0)
                if not np.all(
                    np.asarray(provided[net], dtype=np.uint64) == expected
                ):
                    raise SimulationError(
                        f"stimulus for scheduled net "
                        f"{netlist.net_name(net)!r} at cycle {cycle} does "
                        f"not match its declared value {bits[cycle]}"
                    )
            read_q, read_reg = self._cycle_reads[cycle]
            if read_q.size:
                state[read_q] = reg_state[read_reg]
            self._execute(cycle, state)
            if cycle in record_set:
                trace.values.append(
                    {net: state[net].copy() for net in record_list}
                )
            else:
                trace.values.append({})
            cap_d, cap_reg = self._cycle_captures[cycle]
            if cap_d.size:
                reg_state[cap_reg] = state[cap_d]
        return trace

    def _execute(self, cycle: int, state: np.ndarray) -> None:
        for op in self._cycle_ops[cycle]:
            kind = op.cell_type
            if kind is CellType.BUF:
                state[op.out] = state[op.in0]
            elif kind is CellType.NOT:
                state[op.out] = ~state[op.in0]
            elif kind is CellType.AND:
                state[op.out] = state[op.in0] & state[op.in1]
            elif kind is CellType.NAND:
                state[op.out] = ~(state[op.in0] & state[op.in1])
            elif kind is CellType.OR:
                state[op.out] = state[op.in0] | state[op.in1]
            elif kind is CellType.NOR:
                state[op.out] = ~(state[op.in0] | state[op.in1])
            elif kind is CellType.XOR:
                state[op.out] = state[op.in0] ^ state[op.in1]
            elif kind is CellType.XNOR:
                state[op.out] = ~(state[op.in0] ^ state[op.in1])
            elif kind is CellType.MUX:
                select = state[op.in0]
                state[op.out] = (state[op.in1] & ~select) | (
                    state[op.in2] & select
                )
            else:  # pragma: no cover - consts/DFFs are not dispatched
                raise SimulationError(f"unexpected cell type {kind}")
