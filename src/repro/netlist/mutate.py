"""Netlist mutation utilities for fault injection.

An evaluation tool is only trustworthy if it is exercised against designs
*known to be broken* -- the point made by tool-validation work such as
aLEAKator and by the paper's own thesis that pen-and-paper arguments miss
netlist-level effects.  These helpers produce mutated copies of a netlist
(the original is never modified) implementing classic masking faults:

* :func:`registers_to_buffers` -- drop pipeline registers (a DOM gadget
  without its cross-domain registers is glitch-insecure);
* :func:`rewire_fanin` -- alias one wire onto another (e.g. feed two
  gadgets the same "fresh" mask, reproducing over-aggressive randomness
  reuse);
* :func:`stuck_net` -- stuck-at fault (e.g. a blinding mask stuck at 0
  leaves cross-domain products unprotected);
* :func:`add_xor_taps` -- add recombination logic (an unmasked shortcut
  past a masked function).

All helpers preserve net indices of the original netlist: existing nets
keep their index and name, new nets are appended.  Protocol descriptions
(share buses, mask wires) written against the original therefore remain
valid for the mutant.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.core import Cell, Netlist


def clone_netlist(netlist: Netlist, name: Optional[str] = None) -> Netlist:
    """Structure-preserving deep copy (new cells, same indices/names)."""
    return _rebuild(netlist, lambda cell: cell, name=name)


def _rebuild(
    netlist: Netlist,
    transform: Callable[[Cell], Optional[Cell]],
    name: Optional[str] = None,
    extra_nets: Sequence[str] = (),
) -> Netlist:
    """Copy ``netlist`` applying ``transform`` to every cell.

    ``transform`` returns a replacement :class:`Cell` (only ``cell_type``
    and ``inputs`` are honoured; the output net and name are kept), or
    ``None`` to drop the cell.  ``extra_nets`` are appended after the
    original nets so existing indices stay stable; callers add cells for
    them afterwards.
    """
    mutant = Netlist(name or netlist.name)
    for net_name in netlist.net_names:
        mutant.add_net(net_name)
    for extra in extra_nets:
        mutant.add_net(extra)
    for net in netlist.inputs:
        mutant.mark_input(net)
    for cell in netlist.cells:
        replacement = transform(cell)
        if replacement is None:
            continue
        mutant.add_cell(
            replacement.cell_type,
            tuple(replacement.inputs),
            cell.output,
            cell.name,
        )
    for net in netlist.outputs:
        mutant.mark_output(net)
    return mutant


def _replaced(cell: Cell, cell_type: CellType, inputs: Tuple[int, ...]) -> Cell:
    return Cell(cell.index, cell_type, inputs, cell.output, cell.name)


def rewire_fanin(
    netlist: Netlist,
    old_net: int,
    new_net: int,
    name: Optional[str] = None,
) -> Netlist:
    """Every cell reading ``old_net`` reads ``new_net`` instead.

    ``old_net`` keeps its driver (or input role) but loses its consumers --
    the classic way to alias two mask wires: rewire one mask input's fan-in
    onto the other and both gadgets now share one random bit.
    """
    for net in (old_net, new_net):
        if not 0 <= net < netlist.n_nets:
            raise NetlistError(f"net index {net} out of range")
    if old_net == new_net:
        raise NetlistError("rewire_fanin needs two distinct nets")

    def transform(cell: Cell) -> Cell:
        if old_net not in cell.inputs:
            return cell
        inputs = tuple(
            new_net if net == old_net else net for net in cell.inputs
        )
        return _replaced(cell, cell.cell_type, inputs)

    mutant = _rebuild(netlist, transform, name=name)
    mutant.validate()
    return mutant


def registers_to_buffers(
    netlist: Netlist,
    match: Callable[[Cell], bool],
    name: Optional[str] = None,
) -> Netlist:
    """Replace matching D flip-flops by buffers (combinational bypass).

    The mutated cells keep their output nets, so downstream logic is
    untouched -- but the nets stop being glitch-free stable signals, which
    is exactly the fault a missing DOM register causes in hardware.
    """
    matched = [
        cell
        for cell in netlist.cells
        if cell.cell_type is CellType.DFF and match(cell)
    ]
    if not matched:
        raise NetlistError("registers_to_buffers matched no register")
    indices = {cell.index for cell in matched}

    def transform(cell: Cell) -> Cell:
        if cell.index in indices:
            return _replaced(cell, CellType.BUF, cell.inputs)
        return cell

    mutant = _rebuild(netlist, transform, name=name)
    mutant.validate()
    return mutant


def stuck_net(
    netlist: Netlist,
    net: int,
    value: int,
    name: Optional[str] = None,
) -> Netlist:
    """Every consumer of ``net`` reads constant ``value`` instead.

    The net itself stays driven (so the netlist remains valid); only its
    fan-in edges are cut over to a new constant driver.
    """
    if not 0 <= net < netlist.n_nets:
        raise NetlistError(f"net index {net} out of range")
    if value not in (0, 1):
        raise NetlistError("stuck-at value must be 0 or 1")
    stuck_name = f"{netlist.net_name(net)}$stuck{value}"
    stuck_index = netlist.n_nets

    def transform(cell: Cell) -> Cell:
        if net not in cell.inputs:
            return cell
        inputs = tuple(
            stuck_index if candidate == net else candidate
            for candidate in cell.inputs
        )
        return _replaced(cell, cell.cell_type, inputs)

    mutant = _rebuild(
        netlist, transform, name=name, extra_nets=[stuck_name]
    )
    cell_type = CellType.CONST1 if value else CellType.CONST0
    mutant.add_cell(cell_type, (), stuck_index, stuck_name + "$cell")
    mutant.validate()
    return mutant


def add_xor_taps(
    netlist: Netlist,
    pairs: Iterable[Tuple[int, int]],
    prefix: str = "tap",
    name: Optional[str] = None,
) -> Tuple[Netlist, List[int]]:
    """Add XOR cells over net pairs; returns the mutant and the tap nets.

    XOR-ing the two shares of a value recombines it in plain logic -- the
    "unmasked shortcut" fault.  The taps are marked as outputs so they
    survive any later dead-logic sweep.
    """
    pair_list = list(pairs)
    if not pair_list:
        raise NetlistError("add_xor_taps needs at least one net pair")
    for a, b in pair_list:
        for net in (a, b):
            if not 0 <= net < netlist.n_nets:
                raise NetlistError(f"net index {net} out of range")
    extra = [f"{prefix}[{i}]" for i in range(len(pair_list))]
    mutant = _rebuild(netlist, lambda cell: cell, name=name, extra_nets=extra)
    taps = []
    base = netlist.n_nets
    for i, (a, b) in enumerate(pair_list):
        tap = base + i
        mutant.add_cell(CellType.XOR, (a, b), tap, f"{prefix}[{i}]$cell")
        mutant.mark_output(tap)
        taps.append(tap)
    mutant.validate()
    return mutant, taps


def dff_by_name(netlist: Netlist, substring: str) -> Callable[[Cell], bool]:
    """Predicate for :func:`registers_to_buffers`: name contains substring."""

    def match(cell: Cell) -> bool:
        return substring in cell.name

    return match
