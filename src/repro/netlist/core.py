"""Flat gate-level netlist data structure.

A :class:`Netlist` is a set of named nets, each driven by at most one cell or
declared as a primary input.  Hierarchy is recorded in net/cell names (dotted
paths produced by the builder's scopes), matching how the paper keeps a
hierarchical structure through synthesis to preserve the DOM gadget
boundaries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import NetlistError
from repro.netlist.cells import CellType


@dataclass(frozen=True)
class Cell:
    """One gate or register instance.

    ``inputs`` and ``output`` are net indices.  ``name`` is the hierarchical
    instance path.
    """

    index: int
    cell_type: CellType
    inputs: Tuple[int, ...]
    output: int
    name: str


class Netlist:
    """A flat netlist with named nets, primary inputs/outputs and cells."""

    def __init__(self, name: str = "top"):
        self.name = name
        self.net_names: List[str] = []
        self.cells: List[Cell] = []
        self.net_driver: List[Optional[int]] = []  # cell index or None
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self._input_set: set = set()
        self._name_to_net: Dict[str, int] = {}

    # ------------------------------------------------------------------ nets

    def add_net(self, name: str) -> int:
        """Create a new net and return its index.  Names must be unique."""
        if name in self._name_to_net:
            raise NetlistError(f"duplicate net name {name!r}")
        index = len(self.net_names)
        self.net_names.append(name)
        self.net_driver.append(None)
        self._name_to_net[name] = index
        return index

    def net(self, name: str) -> int:
        """Look a net up by name."""
        try:
            return self._name_to_net[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def net_name(self, index: int) -> str:
        """Return the name of a net."""
        return self.net_names[index]

    @property
    def n_nets(self) -> int:
        """Total number of nets."""
        return len(self.net_names)

    # ----------------------------------------------------------------- ports

    def mark_input(self, net: int) -> None:
        """Declare a net as a primary input."""
        if self.net_driver[net] is not None:
            raise NetlistError(
                f"net {self.net_name(net)!r} is driven by a cell; "
                "cannot also be a primary input"
            )
        if net not in self._input_set:
            self.inputs.append(net)
            self._input_set.add(net)

    def mark_output(self, net: int) -> None:
        """Declare a net as a primary output (may repeat)."""
        if net not in self.outputs:
            self.outputs.append(net)

    def is_input(self, net: int) -> bool:
        """True when the net is a primary input."""
        return net in self._input_set

    # ----------------------------------------------------------------- cells

    def add_cell(
        self,
        cell_type: CellType,
        inputs: Tuple[int, ...],
        output: int,
        name: str,
    ) -> Cell:
        """Instantiate a cell driving ``output``."""
        if len(inputs) != cell_type.arity:
            raise NetlistError(
                f"{cell_type.value} expects {cell_type.arity} inputs, "
                f"got {len(inputs)}"
            )
        for net in (*inputs, output):
            if not 0 <= net < self.n_nets:
                raise NetlistError(f"net index {net} out of range")
        if self.net_driver[output] is not None:
            raise NetlistError(
                f"net {self.net_name(output)!r} already has a driver"
            )
        if output in self._input_set:
            raise NetlistError(
                f"net {self.net_name(output)!r} is a primary input; "
                "cannot be driven by a cell"
            )
        cell = Cell(len(self.cells), cell_type, tuple(inputs), output, name)
        self.cells.append(cell)
        self.net_driver[output] = cell.index
        return cell

    def driver(self, net: int) -> Optional[Cell]:
        """Return the driving cell of a net, or None for inputs/floating."""
        index = self.net_driver[net]
        return None if index is None else self.cells[index]

    def comb_cells(self) -> Iterator[Cell]:
        """Iterate over combinational cells."""
        return (c for c in self.cells if not c.cell_type.is_sequential)

    def dff_cells(self) -> Iterator[Cell]:
        """Iterate over registers."""
        return (c for c in self.cells if c.cell_type.is_sequential)

    def stable_nets(self) -> List[int]:
        """Nets considered glitch-free in the robust probing model.

        These are the primary inputs and the register outputs: the signals a
        glitch-extended probe resolves to (PROLEAD's probe extension stops
        exactly at these).
        """
        stable = list(self.inputs)
        stable.extend(c.output for c in self.dff_cells())
        return stable

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check structural sanity; raises :class:`NetlistError` on problems."""
        for net in range(self.n_nets):
            if self.net_driver[net] is None and net not in self._input_set:
                raise NetlistError(
                    f"net {self.net_name(net)!r} is floating "
                    "(no driver and not a primary input)"
                )
        for out in self.outputs:
            if not 0 <= out < self.n_nets:
                raise NetlistError(f"output net index {out} out of range")

    # --------------------------------------------------------------- queries

    def fanout_map(self) -> List[List[int]]:
        """Return, per net, the list of cell indices reading that net."""
        fanout: List[List[int]] = [[] for _ in range(self.n_nets)]
        for cell in self.cells:
            for net in cell.inputs:
                fanout[net].append(cell.index)
        return fanout

    def __repr__(self) -> str:
        n_dff = sum(1 for _ in self.dff_cells())
        return (
            f"Netlist({self.name!r}, nets={self.n_nets}, "
            f"cells={len(self.cells)}, dffs={n_dff}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )


def netlist_content_hash(netlist: Netlist) -> str:
    """SHA-256 over the executable structure of a netlist.

    Covers everything that affects simulation -- net count, primary inputs,
    and every cell's (type, input nets, output net) in cell order -- and
    nothing that does not (net and instance names).  Two netlists with equal
    hashes execute the same gate program.

    The digest is memoized on the netlist instance: the evaluation service
    hashes the same design on every job submission (the hash is the leading
    component of the verdict-cache key), and rehashing a multi-thousand-cell
    S-box per HTTP request would dominate cache-hit latency.  The memo is
    keyed on (net count, cell count) so a netlist still being built -- the
    only in-place growth the IR allows -- invalidates it naturally.
    """
    memo = getattr(netlist, "_content_hash_memo", None)
    shape = (netlist.n_nets, len(netlist.cells))
    if memo is not None and memo[0] == shape:
        return memo[1]
    hasher = hashlib.sha256()
    hasher.update(f"nets:{netlist.n_nets};".encode())
    hasher.update(("in:" + ",".join(map(str, netlist.inputs)) + ";").encode())
    for cell in netlist.cells:
        hasher.update(
            (
                f"{cell.cell_type.value}:"
                + ",".join(map(str, cell.inputs))
                + f">{cell.output};"
            ).encode()
        )
    digest = hasher.hexdigest()
    try:
        netlist._content_hash_memo = (shape, digest)
    except AttributeError:  # __slots__ without the memo slot
        pass
    return digest
