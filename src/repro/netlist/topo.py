"""Topological utilities: levelization, cones, probe supports.

The glitch-extended probing model resolves a probe on a combinational net to
the set of *stable* signals (primary inputs and register outputs) in its
combinational fan-in cone; :func:`stable_support` computes exactly that set
and is the heart of the probe extraction in :mod:`repro.leakage.probes`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.core import Cell, Netlist


def levelize(netlist: Netlist) -> List[Cell]:
    """Order combinational cells so every cell follows its drivers.

    Register outputs and primary inputs are sources.  Raises
    :class:`NetlistError` on combinational loops.
    """
    order: List[Cell] = []
    ready: Set[int] = set(netlist.inputs)
    ready.update(c.output for c in netlist.dff_cells())

    pending = [c for c in netlist.comb_cells()]
    remaining_inputs: Dict[int, int] = {}
    consumers: Dict[int, List[Cell]] = {}
    queue: List[Cell] = []
    for cell in pending:
        missing = [n for n in cell.inputs if n not in ready]
        remaining_inputs[cell.index] = len(missing)
        for net in missing:
            consumers.setdefault(net, []).append(cell)
        if not missing:
            queue.append(cell)

    while queue:
        cell = queue.pop()
        order.append(cell)
        net = cell.output
        for consumer in consumers.get(net, ()):  # newly satisfied inputs
            remaining_inputs[consumer.index] -= 1
            if remaining_inputs[consumer.index] == 0:
                queue.append(consumer)

    if len(order) != len(pending):
        stuck = [c.name for c in pending if remaining_inputs[c.index] > 0]
        raise NetlistError(
            f"combinational loop or floating net involving cells: {stuck[:5]}"
        )
    return order


def combinational_cone(netlist: Netlist, net: int) -> Set[int]:
    """All nets in the combinational fan-in of ``net`` (inclusive).

    Traversal stops at stable signals (inputs and register outputs), which
    are included in the result.
    """
    stable = _stable_set(netlist)
    cone: Set[int] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in cone:
            continue
        cone.add(current)
        if current in stable:
            continue
        driver = netlist.driver(current)
        if driver is None:
            continue
        stack.extend(driver.inputs)
    return cone


def stable_support(netlist: Netlist, net: int) -> FrozenSet[int]:
    """Stable signals a glitch-extended probe on ``net`` observes.

    For a probe on a register output or a primary input the support is the
    signal itself.  For a combinational net it is every register output and
    primary input reachable backwards without crossing a register.
    """
    stable = _stable_set(netlist)
    return frozenset(n for n in combinational_cone(netlist, net) if n in stable)


def all_stable_supports(netlist: Netlist) -> Dict[int, FrozenSet[int]]:
    """Compute :func:`stable_support` for every net, sharing work.

    Processes cells in levelized order so each support is the union of the
    supports of the cell inputs.
    """
    stable = _stable_set(netlist)
    supports: Dict[int, FrozenSet[int]] = {n: frozenset((n,)) for n in stable}
    for net in range(netlist.n_nets):
        if netlist.net_driver[net] is None and net not in stable:
            supports[net] = frozenset()
    for cell in levelize(netlist):
        if cell.output in stable:
            continue
        merged: Set[int] = set()
        for inp in cell.inputs:
            merged.update(supports[inp])
        supports[cell.output] = frozenset(merged)
    return supports


def transitive_input_support(
    netlist: Netlist, net: int, max_cycles: int
) -> Set[Tuple[int, int]]:
    """Primary-input support of ``net`` across register stages.

    Returns pairs ``(input_net, age)`` meaning the value of that primary
    input ``age`` cycles before the observation influences ``net``.  Used by
    the exact leakage engine to bound enumeration.  ``max_cycles`` caps the
    traversal depth through registers.
    """
    input_set = set(netlist.inputs)
    result: Set[Tuple[int, int]] = set()
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = [(net, 0)]
    while stack:
        current, age = stack.pop()
        if (current, age) in seen:
            continue
        seen.add((current, age))
        if current in input_set:
            result.add((current, age))
            continue
        driver = netlist.driver(current)
        if driver is None:
            continue
        next_age = age + driver.cell_type.is_sequential
        if next_age > max_cycles:
            continue
        for inp in driver.inputs:
            stack.append((inp, next_age))
    return result


def combinational_depth(netlist: Netlist) -> int:
    """Longest combinational path length in gates."""
    depth: Dict[int, int] = {n: 0 for n in _stable_set(netlist)}
    longest = 0
    for cell in levelize(netlist):
        d = 1 + max((depth.get(n, 0) for n in cell.inputs), default=0)
        depth[cell.output] = d
        longest = max(longest, d)
    return longest


def _stable_set(netlist: Netlist) -> Set[int]:
    return set(netlist.stable_nets())
