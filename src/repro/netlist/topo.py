"""Topological utilities: levelization, cones, probe supports.

The glitch-extended probing model resolves a probe on a combinational net to
the set of *stable* signals (primary inputs and register outputs) in its
combinational fan-in cone; :func:`stable_support` computes exactly that set
and is the heart of the probe extraction in :mod:`repro.leakage.probes`.

Levelization and cone computations are pure functions of the netlist
*structure*, so their results are memoized per process under the netlist
content hash (:func:`repro.netlist.core.netlist_content_hash`).  Evaluation
campaigns construct one simulator per sampling block and resolve probe
supports per chunk; without the memo the same multi-thousand-cell traversal
reruns thousands of times per campaign.  The caches store only net and cell
*indices* -- never :class:`Cell` objects -- so two distinct netlist instances
with equal hashes (same structure, possibly different names) share entries
safely: cells are re-resolved through the queried instance.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.core import Cell, Netlist, netlist_content_hash

#: Entries kept per memo table; evaluation flows touch a handful of netlist
#: structures per process, so a small LRU never evicts in practice.
_MEMO_SIZE = 64

#: content hash -> tuple of cell indices in levelized order.
_LEVELIZE_MEMO: "OrderedDict[str, Tuple[int, ...]]" = OrderedDict()

#: content hash -> {net: stable support} for every net.
_SUPPORTS_MEMO: "OrderedDict[str, Dict[int, FrozenSet[int]]]" = OrderedDict()

#: (content hash, net) -> combinational cone of that net.
_CONE_MEMO: "OrderedDict[Tuple[str, int], FrozenSet[int]]" = OrderedDict()


def _memo_get(memo: OrderedDict, key):
    value = memo.get(key)
    if value is not None:
        memo.move_to_end(key)
    return value


def _memo_put(memo: OrderedDict, key, value) -> None:
    memo[key] = value
    while len(memo) > _MEMO_SIZE:
        memo.popitem(last=False)


def clear_topo_memo() -> None:
    """Drop every memoized levelization/cone result (test isolation)."""
    _LEVELIZE_MEMO.clear()
    _SUPPORTS_MEMO.clear()
    _CONE_MEMO.clear()


def topo_memo_info() -> Dict[str, int]:
    """Entry counts of the per-process topology memo tables."""
    return {
        "levelize": len(_LEVELIZE_MEMO),
        "supports": len(_SUPPORTS_MEMO),
        "cones": len(_CONE_MEMO),
    }


def levelize(netlist: Netlist) -> List[Cell]:
    """Order combinational cells so every cell follows its drivers.

    Register outputs and primary inputs are sources.  Raises
    :class:`NetlistError` on combinational loops.  The order is memoized
    per netlist content hash (as cell indices, re-resolved through the
    queried instance).
    """
    key = netlist_content_hash(netlist)
    cached = _memo_get(_LEVELIZE_MEMO, key)
    if cached is not None:
        cells = netlist.cells
        return [cells[i] for i in cached]

    order: List[Cell] = []
    ready: Set[int] = set(netlist.inputs)
    ready.update(c.output for c in netlist.dff_cells())

    pending = [c for c in netlist.comb_cells()]
    remaining_inputs: Dict[int, int] = {}
    consumers: Dict[int, List[Cell]] = {}
    queue: List[Cell] = []
    for cell in pending:
        missing = [n for n in cell.inputs if n not in ready]
        remaining_inputs[cell.index] = len(missing)
        for net in missing:
            consumers.setdefault(net, []).append(cell)
        if not missing:
            queue.append(cell)

    while queue:
        cell = queue.pop()
        order.append(cell)
        net = cell.output
        for consumer in consumers.get(net, ()):  # newly satisfied inputs
            remaining_inputs[consumer.index] -= 1
            if remaining_inputs[consumer.index] == 0:
                queue.append(consumer)

    if len(order) != len(pending):
        stuck = [c.name for c in pending if remaining_inputs[c.index] > 0]
        raise NetlistError(
            f"combinational loop or floating net involving cells: {stuck[:5]}"
        )
    _memo_put(_LEVELIZE_MEMO, key, tuple(c.index for c in order))
    return order


def combinational_cone(netlist: Netlist, net: int) -> Set[int]:
    """All nets in the combinational fan-in of ``net`` (inclusive).

    Traversal stops at stable signals (inputs and register outputs), which
    are included in the result.  Memoized per (netlist content hash, net).
    """
    key = (netlist_content_hash(netlist), net)
    cached = _memo_get(_CONE_MEMO, key)
    if cached is not None:
        return set(cached)
    stable = _stable_set(netlist)
    cone: Set[int] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in cone:
            continue
        cone.add(current)
        if current in stable:
            continue
        driver = netlist.driver(current)
        if driver is None:
            continue
        stack.extend(driver.inputs)
    _memo_put(_CONE_MEMO, key, frozenset(cone))
    return cone


def stable_support(netlist: Netlist, net: int) -> FrozenSet[int]:
    """Stable signals a glitch-extended probe on ``net`` observes.

    For a probe on a register output or a primary input the support is the
    signal itself.  For a combinational net it is every register output and
    primary input reachable backwards without crossing a register.
    """
    stable = _stable_set(netlist)
    return frozenset(n for n in combinational_cone(netlist, net) if n in stable)


def all_stable_supports(netlist: Netlist) -> Dict[int, FrozenSet[int]]:
    """Compute :func:`stable_support` for every net, sharing work.

    Processes cells in levelized order so each support is the union of the
    supports of the cell inputs.  Memoized per netlist content hash (the
    result holds only net indices, so equal-structure instances share it).
    """
    key = netlist_content_hash(netlist)
    cached = _memo_get(_SUPPORTS_MEMO, key)
    if cached is not None:
        return dict(cached)
    stable = _stable_set(netlist)
    supports: Dict[int, FrozenSet[int]] = {n: frozenset((n,)) for n in stable}
    for net in range(netlist.n_nets):
        if netlist.net_driver[net] is None and net not in stable:
            supports[net] = frozenset()
    for cell in levelize(netlist):
        if cell.output in stable:
            continue
        merged: Set[int] = set()
        for inp in cell.inputs:
            merged.update(supports[inp])
        supports[cell.output] = frozenset(merged)
    _memo_put(_SUPPORTS_MEMO, key, dict(supports))
    return supports


def transitive_input_support(
    netlist: Netlist, net: int, max_cycles: int
) -> Set[Tuple[int, int]]:
    """Primary-input support of ``net`` across register stages.

    Returns pairs ``(input_net, age)`` meaning the value of that primary
    input ``age`` cycles before the observation influences ``net``.  Used by
    the exact leakage engine to bound enumeration.  ``max_cycles`` caps the
    traversal depth through registers.
    """
    input_set = set(netlist.inputs)
    result: Set[Tuple[int, int]] = set()
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = [(net, 0)]
    while stack:
        current, age = stack.pop()
        if (current, age) in seen:
            continue
        seen.add((current, age))
        if current in input_set:
            result.add((current, age))
            continue
        driver = netlist.driver(current)
        if driver is None:
            continue
        next_age = age + driver.cell_type.is_sequential
        if next_age > max_cycles:
            continue
        for inp in driver.inputs:
            stack.append((inp, next_age))
    return result


def combinational_depth(netlist: Netlist) -> int:
    """Longest combinational path length in gates."""
    depth: Dict[int, int] = {n: 0 for n in _stable_set(netlist)}
    longest = 0
    for cell in levelize(netlist):
        d = 1 + max((depth.get(n, 0) for n in cell.inputs), default=0)
        depth[cell.output] = d
        longest = max(longest, d)
    return longest


def sequential_depth(netlist: Netlist) -> int:
    """Longest register chain from a primary input to any net.

    This is the number of settle cycles a pipeline needs before every wire
    holds its steady function of constant inputs.  Register feedback loops
    (which never settle) saturate at the register count.
    """
    dffs = list(netlist.dff_cells())
    if not dffs:
        return 0
    depth = [0] * netlist.n_nets
    order = levelize(netlist)
    for _ in range(len(dffs) + 1):
        changed = False
        for cell in order:
            d = max((depth[n] for n in cell.inputs), default=0)
            if d > depth[cell.output]:
                depth[cell.output] = d
                changed = True
        for cell in dffs:
            d = min(depth[cell.inputs[0]] + 1, len(dffs))
            if d > depth[cell.output]:
                depth[cell.output] = d
                changed = True
        if not changed:
            break
    return max(depth)


# --------------------------------------------------------------------- regions


@dataclass(frozen=True)
class GadgetRegion:
    """One registered gadget region of a hierarchical netlist.

    Regions partition the cells: every cell belongs to exactly one region, so
    any single probe lies inside exactly one region -- the property the
    first-order compositional certificate in :mod:`repro.leakage.certify`
    rests on.  ``input_nets`` are nets the region reads but does not drive;
    ``output_nets`` are nets it drives that are consumed outside (or are
    primary outputs); ``register_nets`` are the outputs of its registers.
    """

    name: str
    cells: Tuple[int, ...]
    input_nets: Tuple[int, ...]
    output_nets: Tuple[int, ...]
    register_nets: Tuple[int, ...]


def gadget_regions(netlist: Netlist) -> List[GadgetRegion]:
    """Decompose a netlist into registered gadget regions.

    The builder records gadget hierarchy in cell names (``g5.cross01`` lives
    in gadget ``g5``), exactly how the paper keeps DOM gadget boundaries
    through synthesis.  Cells are grouped by their top-level scope; unscoped
    glue (input complements, output buffers) is attached to the unique scope
    that consumes -- or, failing that, drives -- it.  Remaining unscoped
    cells are grouped by structural connectivity into ``top`` regions.
    """
    cells = netlist.cells
    scope: Dict[int, Optional[str]] = {}
    consumers: Dict[int, List[Cell]] = {}
    for cell in cells:
        scope[cell.index] = (
            cell.name.split(".", 1)[0] if "." in cell.name else None
        )
        for net in cell.inputs:
            consumers.setdefault(net, []).append(cell)

    changed = True
    while changed:
        changed = False
        for cell in cells:
            if scope[cell.index] is not None:
                continue
            downstream = {
                scope[c.index]
                for c in consumers.get(cell.output, ())
                if scope[c.index] is not None
            }
            if len(downstream) == 1:
                scope[cell.index] = next(iter(downstream))
                changed = True
                continue
            if downstream:
                continue  # ambiguous consumers: leave as shared glue
            upstream = set()
            for net in cell.inputs:
                driver = netlist.driver(net)
                if driver is not None and scope[driver.index] is not None:
                    upstream.add(scope[driver.index])
            if len(upstream) == 1:
                scope[cell.index] = next(iter(upstream))
                changed = True

    # Leftover glue: connected components over shared nets, named top*.
    leftover = [c for c in cells if scope[c.index] is None]
    parent = {c.index: c.index for c in leftover}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    leftover_by_output = {c.output: c for c in leftover}
    for cell in leftover:
        for net in cell.inputs:
            other = leftover_by_output.get(net)
            if other is not None:
                parent[find(cell.index)] = find(other.index)
    component_names: Dict[int, str] = {}
    for cell in sorted(leftover, key=lambda c: c.index):
        root = find(cell.index)
        if root not in component_names:
            suffix = "" if not component_names else f"_{len(component_names) + 1}"
            component_names[root] = f"top{suffix}"
        scope[cell.index] = component_names[root]

    groups: Dict[str, List[Cell]] = {}
    for cell in cells:
        groups.setdefault(scope[cell.index], []).append(cell)

    output_set = set(netlist.outputs)
    regions: List[GadgetRegion] = []
    for name, members in sorted(
        groups.items(), key=lambda kv: min(c.index for c in kv[1])
    ):
        produced = {c.output for c in members}
        member_indices = {c.index for c in members}
        inputs = sorted(
            {n for c in members for n in c.inputs if n not in produced}
        )
        outputs = sorted(
            net
            for net in produced
            if net in output_set
            or any(
                c.index not in member_indices
                for c in consumers.get(net, ())
            )
        )
        regions.append(
            GadgetRegion(
                name=name,
                cells=tuple(sorted(c.index for c in members)),
                input_nets=tuple(inputs),
                output_nets=tuple(outputs),
                register_nets=tuple(
                    sorted(
                        c.output
                        for c in members
                        if c.cell_type.is_sequential
                    )
                ),
            )
        )
    return regions


def fanin_cells(netlist: Netlist, nets: Iterable[int]) -> Set[int]:
    """Indices of every cell in the transitive fan-in of ``nets``.

    The closure crosses registers (unlike :func:`combinational_cone`), so
    the result is the full logic slice feeding the given nets.
    """
    seen: Set[int] = set()
    found: Set[int] = set()
    stack = list(nets)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        driver = netlist.driver(net)
        if driver is None:
            continue
        found.add(driver.index)
        stack.extend(driver.inputs)
    return found


def extract_subnetlist(
    netlist: Netlist,
    cell_indices: Iterable[int],
    name: Optional[str] = None,
) -> Tuple[Netlist, Dict[int, int]]:
    """Replay a cell subset as a standalone netlist, preserving net names.

    Nets the subset reads but does not drive become primary inputs --
    except nets driven by constant cells, which are copied in so the replica
    simulates standalone.  Original primary outputs produced by the subset
    stay outputs.  Returns the new netlist and the old->new net mapping,
    through which callers mark further outputs; preserved names mean any
    counterexample probe reported on the replica names a net of the
    original circuit.
    """
    chosen = set(cell_indices)
    members = [netlist.cells[i] for i in sorted(chosen)]
    needed = {n for c in members for n in c.inputs}
    for net in sorted(needed):
        driver = netlist.driver(net)
        if (
            driver is not None
            and driver.cell_type.is_constant
            and driver.index not in chosen
        ):
            chosen.add(driver.index)
            members.append(driver)
    produced = {c.output for c in members}

    sub = Netlist(name or f"{netlist.name}.sub")
    mapping: Dict[int, int] = {}
    for net in sorted({n for c in members for n in c.inputs} - produced):
        mapping[net] = sub.add_net(netlist.net_name(net))
        sub.mark_input(mapping[net])
    for cell in members:
        if cell.cell_type.is_sequential:
            mapping[cell.output] = sub.add_net(netlist.net_name(cell.output))
    for cell in levelize(netlist):
        if cell.index not in chosen:
            continue
        if cell.output not in mapping:
            mapping[cell.output] = sub.add_net(netlist.net_name(cell.output))
        sub.add_cell(
            cell.cell_type,
            tuple(mapping[n] for n in cell.inputs),
            mapping[cell.output],
            cell.name,
        )
    for cell in members:
        if not cell.cell_type.is_sequential:
            continue
        sub.add_cell(
            cell.cell_type,
            tuple(mapping[n] for n in cell.inputs),
            mapping[cell.output],
            cell.name,
        )
    for net in netlist.outputs:
        if net in produced:
            sub.mark_output(mapping[net])
    return sub, mapping


def _stable_set(netlist: Netlist) -> Set[int]:
    return set(netlist.stable_nets())
