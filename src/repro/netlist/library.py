"""A NanGate45-style standard-cell library for area reporting.

The paper synthesizes to the NanGate 45 nm open cell library.  For reporting
we attach representative X1-drive areas (in um^2, from the open NanGate45
datasheet values commonly quoted; approximate) to each IR cell type.  Areas
only feed the architecture-report experiment (E1) -- no probing-model result
depends on them.
"""

from __future__ import annotations

from typing import Dict

from repro.netlist.cells import CellType

#: Mapping from IR cell type to a NanGate45-like cell name.
CELL_NAMES: Dict[CellType, str] = {
    CellType.CONST0: "LOGIC0_X1",
    CellType.CONST1: "LOGIC1_X1",
    CellType.BUF: "BUF_X1",
    CellType.NOT: "INV_X1",
    CellType.AND: "AND2_X1",
    CellType.NAND: "NAND2_X1",
    CellType.OR: "OR2_X1",
    CellType.NOR: "NOR2_X1",
    CellType.XOR: "XOR2_X1",
    CellType.XNOR: "XNOR2_X1",
    CellType.MUX: "MUX2_X1",
    CellType.DFF: "DFF_X1",
}

#: Approximate cell areas in um^2 (NanGate45 X1 drive strengths).
CELL_AREAS: Dict[CellType, float] = {
    CellType.CONST0: 0.0,
    CellType.CONST1: 0.0,
    CellType.BUF: 0.798,
    CellType.NOT: 0.532,
    CellType.AND: 1.064,
    CellType.NAND: 0.798,
    CellType.OR: 1.064,
    CellType.NOR: 0.798,
    CellType.XOR: 1.596,
    CellType.XNOR: 1.596,
    CellType.MUX: 1.862,
    CellType.DFF: 4.522,
}

#: Gate-equivalent (GE) unit: area of one NAND2, the standard normalisation
#: used in masked-hardware papers when reporting area in kGE.
NAND2_AREA = CELL_AREAS[CellType.NAND]


def cell_area(cell_type: CellType) -> float:
    """Area of one cell instance in um^2."""
    return CELL_AREAS[cell_type]


def cell_gate_equivalents(cell_type: CellType) -> float:
    """Area of one cell instance in gate equivalents (NAND2 units)."""
    return CELL_AREAS[cell_type] / NAND2_AREA
