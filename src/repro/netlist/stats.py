"""Netlist statistics and area reports (experiment E1 backend)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.netlist.cells import CellType
from repro.netlist.core import Netlist
from repro.netlist.library import CELL_NAMES, NAND2_AREA, cell_area
from repro.netlist.topo import combinational_depth


@dataclass
class NetlistStats:
    """Gate counts, register count, depth and area of a netlist."""

    name: str
    cell_counts: Dict[CellType, int] = field(default_factory=dict)
    n_nets: int = 0
    n_inputs: int = 0
    n_outputs: int = 0
    comb_depth: int = 0
    area_um2: float = 0.0

    @property
    def n_cells(self) -> int:
        """Total cell instances."""
        return sum(self.cell_counts.values())

    @property
    def n_registers(self) -> int:
        """DFF instances."""
        return self.cell_counts.get(CellType.DFF, 0)

    @property
    def n_combinational(self) -> int:
        """Combinational cell instances."""
        return self.n_cells - self.n_registers

    @property
    def area_ge(self) -> float:
        """Area in gate equivalents (NAND2 units)."""
        return self.area_um2 / NAND2_AREA

    def format_table(self) -> str:
        """Render a Yosys-``stat``-style report."""
        lines = [
            f"=== {self.name} ===",
            f"  nets:         {self.n_nets}",
            f"  inputs:       {self.n_inputs}",
            f"  outputs:      {self.n_outputs}",
            f"  cells:        {self.n_cells}",
            f"  registers:    {self.n_registers}",
            f"  comb depth:   {self.comb_depth}",
            f"  area:         {self.area_um2:.2f} um^2 ({self.area_ge:.1f} GE)",
        ]
        for cell_type in CellType:
            count = self.cell_counts.get(cell_type, 0)
            if count:
                lines.append(f"    {CELL_NAMES[cell_type]:<12} {count}")
        return "\n".join(lines)


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute statistics for a netlist."""
    counts: Dict[CellType, int] = {}
    area = 0.0
    for cell in netlist.cells:
        counts[cell.cell_type] = counts.get(cell.cell_type, 0) + 1
        area += cell_area(cell.cell_type)
    return NetlistStats(
        name=netlist.name,
        cell_counts=counts,
        n_nets=netlist.n_nets,
        n_inputs=len(netlist.inputs),
        n_outputs=len(netlist.outputs),
        comb_depth=combinational_depth(netlist),
        area_um2=area,
    )
