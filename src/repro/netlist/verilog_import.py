"""Structural Verilog import (the subset :mod:`repro.netlist.verilog` emits).

Supported constructs:

* one module with a port list; ``input``/``output``/``wire``/``reg``
  declarations (scalar nets only);
* gate primitives ``and/or/nand/nor/xor/xnor/not/buf`` in the
  ``gate name (out, in...);`` form;
* ``assign`` of a constant (``1'b0``/``1'b1``), an alias (another net), or
  a ternary multiplexer ``sel ? a : b``;
* a single ``always @(posedge clk)`` block of non-blocking assignments,
  which become DFFs.

This gives export/import round-trips for every netlist the package builds,
and lets externally produced gate-level netlists (e.g. from Yosys with a
matching cell set) be analyzed by the leakage engines.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.core import Netlist

_PRIMITIVES = {
    "buf": CellType.BUF,
    "not": CellType.NOT,
    "and": CellType.AND,
    "nand": CellType.NAND,
    "or": CellType.OR,
    "nor": CellType.NOR,
    "xor": CellType.XOR,
    "xnor": CellType.XNOR,
}

_MODULE_RE = re.compile(
    r"module\s+(?P<name>\w+)\s*\((?P<ports>.*?)\);", re.DOTALL
)
_DECL_RE = re.compile(r"^(input|output|wire|reg)\s+(\w+)\s*;$")
_GATE_RE = re.compile(r"^(\w+)\s+\w+\s*\((?P<args>[^)]*)\)\s*;$")
_ASSIGN_CONST_RE = re.compile(r"^assign\s+(\w+)\s*=\s*1'b([01])\s*;$")
_ASSIGN_MUX_RE = re.compile(
    r"^assign\s+(\w+)\s*=\s*(\w+)\s*\?\s*(\w+)\s*:\s*(\w+)\s*;$"
)
_ASSIGN_ALIAS_RE = re.compile(r"^assign\s+(\w+)\s*=\s*(\w+)\s*;$")
_NONBLOCKING_RE = re.compile(r"^(\w+)\s*<=\s*(\w+)\s*;$")


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def from_verilog(text: str) -> Netlist:
    """Parse structural Verilog into a :class:`Netlist`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if module is None:
        raise NetlistError("no module declaration found")
    netlist = Netlist(module.group("name"))

    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise NetlistError("missing endmodule")
    body = body[:end]

    nets: Dict[str, int] = {}
    outputs: List[str] = []

    def net_of(name: str) -> int:
        if name not in nets:
            nets[name] = netlist.add_net(name)
        return nets[name]

    # Split into statements; the always block is handled separately.
    always_match = re.search(
        r"always\s*@\s*\(\s*posedge\s+(\w+)\s*\)\s*begin(?P<body>.*?)end",
        body,
        re.DOTALL,
    )
    always_body = ""
    if always_match:
        always_body = always_match.group("body")
        body = body[: always_match.start()] + body[always_match.end():]

    instance_counter = 0
    for raw in body.split(";"):
        statement = " ".join(raw.split())
        if not statement:
            continue
        statement += ";"
        decl = _DECL_RE.match(statement)
        if decl:
            kind, name = decl.groups()
            if name == "clk":
                continue
            index = net_of(name)
            if kind == "input":
                netlist.mark_input(index)
            elif kind == "output":
                outputs.append(name)
            continue
        const = _ASSIGN_CONST_RE.match(statement)
        if const:
            name, value = const.groups()
            kind = CellType.CONST1 if value == "1" else CellType.CONST0
            netlist.add_cell(kind, (), net_of(name), f"const_{name}")
            continue
        mux = _ASSIGN_MUX_RE.match(statement)
        if mux:
            out, select, d1, d0 = mux.groups()
            netlist.add_cell(
                CellType.MUX,
                (net_of(select), net_of(d0), net_of(d1)),
                net_of(out),
                f"mux_{out}",
            )
            continue
        alias = _ASSIGN_ALIAS_RE.match(statement)
        if alias:
            out, source = alias.groups()
            netlist.add_cell(
                CellType.BUF, (net_of(source),), net_of(out), f"buf_{out}"
            )
            continue
        gate = _GATE_RE.match(statement)
        if gate and gate.group(1) in _PRIMITIVES:
            kind = _PRIMITIVES[gate.group(1)]
            args = [a.strip() for a in gate.group("args").split(",")]
            out, ins = args[0], args[1:]
            if len(ins) != kind.arity:
                raise NetlistError(
                    f"{gate.group(1)} gate with {len(ins)} inputs"
                )
            netlist.add_cell(
                kind,
                tuple(net_of(n) for n in ins),
                net_of(out),
                f"g{instance_counter}",
            )
            instance_counter += 1
            continue
        raise NetlistError(f"unsupported statement: {statement!r}")

    for raw in always_body.split(";"):
        statement = " ".join(raw.split())
        if not statement:
            continue
        statement += ";"
        flop = _NONBLOCKING_RE.match(statement)
        if not flop:
            raise NetlistError(
                f"unsupported sequential statement: {statement!r}"
            )
        q, d = flop.groups()
        netlist.add_cell(
            CellType.DFF, (net_of(d),), net_of(q), f"dff_{q}"
        )

    for name in outputs:
        netlist.mark_output(nets[name])
    netlist.validate()
    return netlist
