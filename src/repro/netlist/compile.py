"""Compilation of a levelized netlist into a flat gate program.

The interpreting :class:`~repro.netlist.simulate.BitslicedSimulator` pays one
Python dispatch per gate per cycle, which dominates the runtime of
PROLEAD-scale campaigns.  This module compiles a netlist **once** into a
:class:`GateProgram` -- contiguous numpy index arrays grouped by
(combinational level, cell type) -- so simulation executes the whole netlist
level-by-level with **one vectorized dispatch per cell type per level**: all
AND gates of a level evaluate as a single ``values[in0] & values[in1]``
gather/scatter over a ``(n_nets, n_words)`` state matrix.

Programs are cached by a content hash of the netlist structure (cell types,
connectivity, primary inputs -- names are irrelevant to execution), so
repeated simulator construction, e.g. one per sampling block or per worker
process, compiles at most once per process.  The cache is a bounded LRU
(:func:`set_program_cache_capacity`) shared by full programs and cone
slices (:mod:`repro.netlist.slice`); hit/miss/eviction counts are exposed
through :func:`program_cache_info` and the evaluation service's
``/metrics`` endpoint.

:class:`CompiledSimulator` is a drop-in replacement for
:class:`~repro.netlist.simulate.BitslicedSimulator`: same ``run`` signature,
same :class:`~repro.netlist.simulate.Trace` output, and **bit-identical**
results -- both engines execute the same uint64 word operations, only the
dispatch granularity differs.  Passing ``keep_nets`` restricts execution to
the sequential fan-in cone of those nets (see :mod:`repro.netlist.slice`);
every live net still computes the exact same words.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.netlist.cells import CellType
from repro.netlist.core import Netlist, netlist_content_hash  # noqa: F401
from repro.netlist.simulate import Stimulus, Trace, words_for_lanes
from repro.netlist.topo import levelize

#: Compiled programs kept per process, keyed by netlist content hash (full
#: programs) or by slice key (cone slices; see :mod:`repro.netlist.slice`).
_PROGRAM_CACHE: "OrderedDict[str, GateProgram]" = OrderedDict()

#: Cache capacity; evaluation flows touch a handful of netlists per process.
_PROGRAM_CACHE_SIZE = 64

#: Lifetime lookup statistics of the program cache.
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


class ProgramCacheInfo(NamedTuple):
    """Snapshot of the per-process program cache."""

    entries: int
    capacity: int
    hits: int
    misses: int
    evictions: int


def program_cache_get(key: str) -> Optional["GateProgram"]:
    """LRU lookup with hit/miss accounting (shared with the slicer)."""
    cached = _PROGRAM_CACHE.get(key)
    if cached is not None:
        _PROGRAM_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    return None


def program_cache_put(key: str, program: "GateProgram") -> None:
    """Insert a program, evicting least-recently-used entries past capacity."""
    _PROGRAM_CACHE[key] = program
    while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_SIZE:
        _PROGRAM_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1


def clear_program_cache() -> None:
    """Drop every cached program and reset statistics (test isolation)."""
    _PROGRAM_CACHE.clear()
    _CACHE_STATS.update(hits=0, misses=0, evictions=0)


def program_cache_info() -> ProgramCacheInfo:
    """Entries, capacity and lifetime hit/miss/eviction counts."""
    return ProgramCacheInfo(
        entries=len(_PROGRAM_CACHE),
        capacity=_PROGRAM_CACHE_SIZE,
        hits=_CACHE_STATS["hits"],
        misses=_CACHE_STATS["misses"],
        evictions=_CACHE_STATS["evictions"],
    )


def set_program_cache_capacity(capacity: int) -> int:
    """Re-bound the program cache; returns the previous capacity.

    Shrinking below the current population evicts least-recently-used
    entries immediately.  Evaluation flows touch a handful of programs per
    process, so the default of 64 never evicts in practice; long-lived
    services slicing many distinct probe selections can lower (or raise)
    the bound to match their working set.
    """
    global _PROGRAM_CACHE_SIZE
    if capacity < 1:
        raise SimulationError("program cache capacity must be positive")
    previous = _PROGRAM_CACHE_SIZE
    _PROGRAM_CACHE_SIZE = capacity
    while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_SIZE:
        _PROGRAM_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    return previous


@dataclass(frozen=True)
class GateOp:
    """One vectorized dispatch: every cell of one type within one level.

    ``out``/``in0``/``in1``/``in2`` are parallel net-index arrays; unary
    cells leave ``in1``/``in2`` empty, binary cells leave ``in2`` empty.
    """

    cell_type: CellType
    out: np.ndarray
    in0: np.ndarray
    in1: np.ndarray
    in2: np.ndarray

    @property
    def n_cells(self) -> int:
        """Number of cells this dispatch evaluates."""
        return int(self.out.size)


@dataclass(frozen=True)
class GateProgram:
    """A netlist flattened into contiguous numpy op/index arrays.

    A *full* program indexes its state matrix directly by net id.  A
    *sliced* program (``net_map is not None``; see
    :func:`repro.netlist.slice.slice_program`) keeps only the state rows of
    its fan-in cone: op/register/constant arrays are pre-remapped to compact
    rows, ``input_nets`` keeps original net ids (they key the stimulus), and
    ``net_map`` translates original net ids to rows (-1 for dead nets).
    """

    content_hash: str
    n_nets: int
    input_nets: Tuple[int, ...]
    #: combinational dispatches in execution order (level-major).
    ops: Tuple[GateOp, ...]
    #: net indices driven constant 0 / constant 1.
    const0: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    const1: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    #: register D-input and Q-output net indices (parallel arrays).
    dff_d: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    dff_q: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    #: number of combinational levels (for reporting).
    n_levels: int = 0
    #: state rows of a sliced program; None means full (= ``n_nets``).
    n_state: Optional[int] = None
    #: original net id -> state row (-1 = dead); None means identity.
    net_map: Optional[np.ndarray] = None

    @property
    def n_dispatches(self) -> int:
        """Vectorized dispatches per simulated cycle."""
        return len(self.ops)

    @property
    def n_comb_cells(self) -> int:
        """Combinational cells covered by the op arrays."""
        return sum(op.n_cells for op in self.ops) + int(
            self.const0.size + self.const1.size
        )

    @property
    def n_state_rows(self) -> int:
        """Rows of the simulation state matrix."""
        return self.n_nets if self.n_state is None else self.n_state

    @property
    def is_sliced(self) -> bool:
        """True for a cone-sliced program."""
        return self.net_map is not None

    def state_row(self, net: int) -> int:
        """State row of an original net id; raises for dead nets."""
        if self.net_map is None:
            return net
        row = int(self.net_map[net])
        if row < 0:
            raise SimulationError(
                f"net {net} is outside this program's fan-in slice"
            )
        return row

    def is_live(self, net: int) -> bool:
        """True when the net has a state row in this program."""
        return self.net_map is None or self.net_map[net] >= 0


def _index_array(values: Iterable[int]) -> np.ndarray:
    return np.asarray(list(values), dtype=np.intp)


def compile_netlist(netlist: Netlist, use_cache: bool = True) -> GateProgram:
    """Compile (or fetch from the per-process cache) a netlist's program."""
    key = netlist_content_hash(netlist)
    if use_cache:
        cached = program_cache_get(key)
        if cached is not None:
            return cached

    order = levelize(netlist)
    level: Dict[int, int] = {net: 0 for net in netlist.inputs}
    for dff in netlist.dff_cells():
        level[dff.output] = 0

    const0: List[int] = []
    const1: List[int] = []
    grouped: Dict[Tuple[int, CellType], List] = {}
    max_level = 0
    for cell in order:
        if cell.cell_type is CellType.CONST0:
            const0.append(cell.output)
            level[cell.output] = 0
            continue
        if cell.cell_type is CellType.CONST1:
            const1.append(cell.output)
            level[cell.output] = 0
            continue
        cell_level = 1 + max(level.get(n, 0) for n in cell.inputs)
        level[cell.output] = cell_level
        max_level = max(max_level, cell_level)
        grouped.setdefault((cell_level, cell.cell_type), []).append(cell)

    ops: List[GateOp] = []
    for (lvl, cell_type) in sorted(
        grouped, key=lambda k: (k[0], k[1].value)
    ):
        cells = grouped[(lvl, cell_type)]
        arity = cell_type.arity
        ops.append(
            GateOp(
                cell_type=cell_type,
                out=_index_array(c.output for c in cells),
                in0=_index_array(c.inputs[0] for c in cells),
                in1=_index_array(
                    c.inputs[1] for c in cells
                ) if arity >= 2 else np.empty(0, np.intp),
                in2=_index_array(
                    c.inputs[2] for c in cells
                ) if arity >= 3 else np.empty(0, np.intp),
            )
        )

    dffs = list(netlist.dff_cells())
    program = GateProgram(
        content_hash=key,
        n_nets=netlist.n_nets,
        input_nets=tuple(netlist.inputs),
        ops=tuple(ops),
        const0=_index_array(const0),
        const1=_index_array(const1),
        dff_d=_index_array(c.inputs[0] for c in dffs),
        dff_q=_index_array(c.output for c in dffs),
        n_levels=max_level,
    )
    if use_cache:
        program_cache_put(key, program)
    return program


_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class CompiledSimulator:
    """Executes a compiled gate program over many parallel lanes.

    Semantics are identical to
    :class:`~repro.netlist.simulate.BitslicedSimulator` (positive-edge DFFs
    initialised to 0; inputs, register outputs, combinational settle,
    register capture) and so are the recorded words, bit for bit.

    With ``keep_nets`` the simulator executes the sliced program of the
    sequential fan-in cone of those nets: dead dispatches and dead state
    rows are gone, but every live net computes exactly the words the full
    program would -- the cone is closed under fan-in, so nothing a live net
    depends on is dropped.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_lanes: int,
        keep_nets: Optional[Iterable[int]] = None,
    ):
        if n_lanes <= 0:
            raise SimulationError("n_lanes must be positive")
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.n_words = words_for_lanes(n_lanes)
        if keep_nets is None:
            self.program = compile_netlist(netlist)
        else:
            from repro.netlist.slice import slice_program

            self.program = slice_program(netlist, keep_nets)

    def run(
        self,
        stimulus: Stimulus,
        n_cycles: int,
        record_nets: Optional[Iterable[int]] = None,
        record_cycles: Optional[Iterable[int]] = None,
    ) -> Trace:
        """Simulate ``n_cycles`` cycles and record the requested nets.

        Same contract as :meth:`BitslicedSimulator.run`; see there.  A
        sliced simulator defaults ``record_nets`` to the *live* stable nets
        and rejects requests for nets outside its cone.
        """
        netlist = self.netlist
        program = self.program
        if record_nets is None:
            record_nets = [
                net for net in netlist.stable_nets() if program.is_live(net)
            ]
        record_list = list(record_nets)
        # state_row() raises for nets outside the slice -- a dead net has no
        # row, and silently recording a wrong row would corrupt histograms.
        record_rows = [program.state_row(net) for net in record_list]
        input_rows = [
            program.state_row(pi) for pi in program.input_nets
        ]
        cycle_filter = None if record_cycles is None else set(record_cycles)
        trace = Trace(self.n_lanes, record_list)

        n_words = self.n_words
        state = np.zeros((program.n_state_rows, n_words), dtype=np.uint64)
        # Constant drivers never change; establish them once.
        if program.const1.size:
            state[program.const1] = _ALL_ONES
        reg_state = np.zeros((program.dff_q.size, n_words), dtype=np.uint64)

        for cycle in range(n_cycles):
            provided = stimulus(cycle)
            for pi, row in zip(program.input_nets, input_rows):
                if pi not in provided:
                    raise SimulationError(
                        f"stimulus missing primary input "
                        f"{netlist.net_name(pi)!r} at cycle {cycle}"
                    )
                words = np.asarray(provided[pi], dtype=np.uint64)
                if words.shape != (n_words,):
                    raise SimulationError(
                        f"stimulus for {netlist.net_name(pi)!r} has shape "
                        f"{words.shape}, expected ({n_words},)"
                    )
                state[row] = words
            if program.dff_q.size:
                state[program.dff_q] = reg_state
            self._execute(state)
            if cycle_filter is None or cycle in cycle_filter:
                trace.values.append(
                    {
                        net: state[row].copy()
                        for net, row in zip(record_list, record_rows)
                    }
                )
            else:
                trace.values.append({})
            if program.dff_d.size:
                reg_state = state[program.dff_d].copy()
        return trace

    def _execute(self, state: np.ndarray) -> None:
        for op in self.program.ops:
            kind = op.cell_type
            if kind is CellType.BUF:
                state[op.out] = state[op.in0]
            elif kind is CellType.NOT:
                state[op.out] = ~state[op.in0]
            elif kind is CellType.AND:
                state[op.out] = state[op.in0] & state[op.in1]
            elif kind is CellType.NAND:
                state[op.out] = ~(state[op.in0] & state[op.in1])
            elif kind is CellType.OR:
                state[op.out] = state[op.in0] | state[op.in1]
            elif kind is CellType.NOR:
                state[op.out] = ~(state[op.in0] | state[op.in1])
            elif kind is CellType.XOR:
                state[op.out] = state[op.in0] ^ state[op.in1]
            elif kind is CellType.XNOR:
                state[op.out] = ~(state[op.in0] ^ state[op.in1])
            elif kind is CellType.MUX:
                select = state[op.in0]
                state[op.out] = (state[op.in1] & ~select) | (
                    state[op.in2] & select
                )
            else:  # pragma: no cover - constants/DFFs are not in ops
                raise SimulationError(f"unexpected cell type {kind}")
