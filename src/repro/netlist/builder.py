"""Ergonomic construction of netlists.

:class:`CircuitBuilder` wraps a :class:`repro.netlist.core.Netlist` with
HDL-like operations returning net indices, automatic unique naming, and a
``scope`` context manager producing hierarchical dotted paths -- the Python
equivalent of instantiating Verilog sub-modules.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence

from repro.errors import NetlistError
from repro.netlist.cells import CellType
from repro.netlist.core import Netlist


class CircuitBuilder:
    """Builds a flat netlist through gate-level operations."""

    def __init__(self, name: str = "top"):
        self.netlist = Netlist(name)
        self._prefix: List[str] = []
        self._counter = 0
        self._const_nets = {0: None, 1: None}

    # ---------------------------------------------------------------- naming

    def _qualify(self, name: str) -> str:
        return ".".join((*self._prefix, name)) if self._prefix else name

    def _fresh_name(self, stem: str) -> str:
        self._counter += 1
        return self._qualify(f"{stem}_{self._counter}")

    @contextlib.contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Prefix nets/cells created inside with ``name.`` (nests)."""
        self._prefix.append(name)
        try:
            yield
        finally:
            self._prefix.pop()

    # ----------------------------------------------------------------- ports

    def input(self, name: str) -> int:
        """Create a named primary input net."""
        net = self.netlist.add_net(self._qualify(name))
        self.netlist.mark_input(net)
        return net

    def input_bus(self, name: str, width: int) -> List[int]:
        """Create ``width`` primary inputs named ``name[i]`` (LSB first)."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def output(self, net: int, name: Optional[str] = None) -> int:
        """Mark a net as primary output, optionally aliasing it via a BUF."""
        if name is not None:
            alias = self.netlist.add_net(self._qualify(name))
            self.netlist.add_cell(
                CellType.BUF, (net,), alias, self._fresh_name("buf")
            )
            net = alias
        self.netlist.mark_output(net)
        return net

    def output_bus(self, nets: Sequence[int], name: str) -> List[int]:
        """Mark a bus of nets as outputs named ``name[i]``."""
        return [self.output(net, f"{name}[{i}]") for i, net in enumerate(nets)]

    # ----------------------------------------------------------------- gates

    def _gate(
        self, cell_type: CellType, inputs: Sequence[int], name: Optional[str]
    ) -> int:
        net_name = self._qualify(name) if name else self._fresh_name(cell_type.value)
        out = self.netlist.add_net(net_name)
        self.netlist.add_cell(cell_type, tuple(inputs), out, net_name + "$cell")
        return out

    def constant(self, value: int) -> int:
        """Return a net tied to constant 0 or 1 (shared per builder)."""
        if value not in (0, 1):
            raise NetlistError("constant must be 0 or 1")
        if self._const_nets[value] is None:
            cell_type = CellType.CONST1 if value else CellType.CONST0
            self._const_nets[value] = self._gate(cell_type, (), f"const{value}")
        return self._const_nets[value]

    def buf(self, a: int, name: Optional[str] = None) -> int:
        """A buffer (identity) gate."""
        return self._gate(CellType.BUF, (a,), name)

    def not_(self, a: int, name: Optional[str] = None) -> int:
        """An inverter."""
        return self._gate(CellType.NOT, (a,), name)

    def and_(self, a: int, b: int, name: Optional[str] = None) -> int:
        """A 2-input AND gate."""
        return self._gate(CellType.AND, (a, b), name)

    def nand(self, a: int, b: int, name: Optional[str] = None) -> int:
        """A 2-input NAND gate."""
        return self._gate(CellType.NAND, (a, b), name)

    def or_(self, a: int, b: int, name: Optional[str] = None) -> int:
        """A 2-input OR gate."""
        return self._gate(CellType.OR, (a, b), name)

    def nor(self, a: int, b: int, name: Optional[str] = None) -> int:
        """A 2-input NOR gate."""
        return self._gate(CellType.NOR, (a, b), name)

    def xor(self, a: int, b: int, name: Optional[str] = None) -> int:
        """A 2-input XOR gate."""
        return self._gate(CellType.XOR, (a, b), name)

    def xnor(self, a: int, b: int, name: Optional[str] = None) -> int:
        """A 2-input XNOR gate."""
        return self._gate(CellType.XNOR, (a, b), name)

    def mux(self, select: int, d0: int, d1: int, name: Optional[str] = None) -> int:
        """2:1 multiplexer: returns ``d1`` when ``select`` is 1, else ``d0``."""
        return self._gate(CellType.MUX, (select, d0, d1), name)

    def reg(self, d: int, name: Optional[str] = None) -> int:
        """A D flip-flop; the returned net is the register output Q."""
        return self._gate(CellType.DFF, (d,), name)

    def reg_bus(self, nets: Sequence[int], name: Optional[str] = None) -> List[int]:
        """Register every net of a bus."""
        stem = name or "reg"
        return [self.reg(net, f"{stem}[{i}]") for i, net in enumerate(nets)]

    # ------------------------------------------------------- derived helpers

    def xor_reduce(self, nets: Sequence[int], name: Optional[str] = None) -> int:
        """XOR of one or more nets as a balanced tree."""
        nets = list(nets)
        if not nets:
            raise NetlistError("xor_reduce needs at least one net")
        while len(nets) > 1:
            nets = [
                self.xor(nets[i], nets[i + 1]) if i + 1 < len(nets) else nets[i]
                for i in range(0, len(nets), 2)
            ]
        if name is not None:
            return self.buf(nets[0], name)
        return nets[0]

    def and_reduce(self, nets: Sequence[int], name: Optional[str] = None) -> int:
        """AND of one or more nets as a balanced tree."""
        nets = list(nets)
        if not nets:
            raise NetlistError("and_reduce needs at least one net")
        while len(nets) > 1:
            nets = [
                self.and_(nets[i], nets[i + 1]) if i + 1 < len(nets) else nets[i]
                for i in range(0, len(nets), 2)
            ]
        if name is not None:
            return self.buf(nets[0], name)
        return nets[0]

    def xor_bus(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Bitwise XOR of two equal-width buses."""
        if len(a) != len(b):
            raise NetlistError("xor_bus requires equal widths")
        return [self.xor(x, y) for x, y in zip(a, b)]

    def not_bus(self, a: Sequence[int]) -> List[int]:
        """Bitwise NOT of a bus."""
        return [self.not_(x) for x in a]

    def gf2_linear(
        self, matrix: Sequence[int], bus: Sequence[int], constant: int = 0
    ) -> List[int]:
        """Apply a GF(2) matrix (rows as integers) + constant to a bus.

        Row ``i`` selects which input bits XOR into output bit ``i``; bit
        ``i`` of ``constant`` toggles an inversion on that output.  This is
        how linear layers (the AES affine map, tower isomorphisms) become
        XOR/XNOR networks.
        """
        outputs = []
        for i, row in enumerate(matrix):
            taps = [bus[j] for j in range(len(bus)) if (row >> j) & 1]
            if not taps:
                net = self.constant((constant >> i) & 1)
            else:
                net = self.xor_reduce(taps)
                if (constant >> i) & 1:
                    net = self.not_(net)
            outputs.append(net)
        return outputs

    # ----------------------------------------------------------------- build

    def build(self) -> Netlist:
        """Validate and return the completed netlist."""
        self.netlist.validate()
        return self.netlist
