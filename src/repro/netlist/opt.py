"""Netlist optimization passes.

These mirror the basic cleanups a synthesis flow (the paper used Yosys)
performs: constant folding, buffer elimination, structural hashing (CSE) and
dead-cell removal.

.. warning::
   Optimization changes the gate/register graph and therefore the probe
   structure of a masked design.  The security experiments always evaluate
   the *unoptimized* hierarchical netlists, matching the paper's instruction
   to keep the hierarchy intact during synthesis; the passes exist as
   substrate features (and to measure how fragile masked netlists are under
   aggressive synthesis, see the ablation benchmark).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.netlist.cells import COMMUTATIVE, CellType, evaluate_cell
from repro.netlist.core import Cell, Netlist
from repro.netlist.topo import levelize


class _Rebuilder:
    """Shared machinery for passes that rebuild a netlist cell by cell.

    Register outputs are pre-created so combinational feedback through
    registers is handled naturally; combinational cells are visited in
    levelized order and may be rewritten, merged or dropped by the pass.
    """

    def __init__(self, old: Netlist, suffix: str):
        self.old = old
        self.new = Netlist(old.name)
        self.net_map: Dict[int, int] = {}
        self._suffix = suffix
        for pi in old.inputs:
            new_net = self.new.add_net(old.net_name(pi))
            self.new.mark_input(new_net)
            self.net_map[pi] = new_net
        for dff in old.dff_cells():
            self.net_map[dff.output] = self.new.add_net(
                old.net_name(dff.output)
            )

    def map_inputs(self, cell: Cell) -> Tuple[int, ...]:
        return tuple(self.net_map[n] for n in cell.inputs)

    def emit(self, cell: Cell, inputs: Tuple[int, ...]) -> int:
        """Copy a combinational cell with remapped inputs."""
        out = self.new.add_net(self.old.net_name(cell.output))
        self.new.add_cell(cell.cell_type, inputs, out, cell.name)
        return out

    def alias(self, cell: Cell, target_new_net: int) -> int:
        """Replace a cell's output by an existing new net."""
        return target_new_net

    def finish(
        self, process: Callable[[Cell, Tuple[int, ...]], int]
    ) -> Netlist:
        for cell in levelize(self.old):
            self.net_map[cell.output] = process(cell, self.map_inputs(cell))
        for dff in self.old.dff_cells():
            self.new.add_cell(
                CellType.DFF,
                (self.net_map[dff.inputs[0]],),
                self.net_map[dff.output],
                dff.name,
            )
        for out in self.old.outputs:
            self.new.mark_output(self.net_map[out])
        self.new.validate()
        return self.new


def eliminate_buffers(netlist: Netlist) -> Netlist:
    """Remove BUF cells by forwarding their inputs."""
    rb = _Rebuilder(netlist, "nobuf")

    def process(cell: Cell, inputs: Tuple[int, ...]) -> int:
        if cell.cell_type is CellType.BUF:
            return inputs[0]
        return rb.emit(cell, inputs)

    return rb.finish(process)


def constant_fold(netlist: Netlist) -> Netlist:
    """Propagate CONST0/CONST1 through combinational logic."""
    rb = _Rebuilder(netlist, "cf")
    const_value: Dict[int, int] = {}
    const_net: Dict[int, Optional[int]] = {0: None, 1: None}

    def make_const(value: int, hint: str) -> int:
        if const_net[value] is None:
            net = rb.new.add_net(f"{hint}$const{value}")
            kind = CellType.CONST1 if value else CellType.CONST0
            rb.new.add_cell(kind, (), net, f"{hint}$const{value}_cell")
            const_net[value] = net
        return const_net[value]

    def process(cell: Cell, inputs: Tuple[int, ...]) -> int:
        kind = cell.cell_type
        if kind.is_constant:
            value = 1 if kind is CellType.CONST1 else 0
            net = make_const(value, netlist.net_name(cell.output))
            const_value[net] = value
            return net
        known = [const_value.get(n) for n in inputs]
        for value_in in known:
            if value_in is not None and (kind, value_in) in _DOMINATING:
                value = _DOMINATING[(kind, value_in)]
                net = make_const(value, netlist.net_name(cell.output))
                const_value[net] = value
                return net
        if all(v is not None for v in known):
            value = evaluate_cell(kind, tuple(known))
            net = make_const(value, netlist.net_name(cell.output))
            const_value[net] = value
            return net
        simplified = _simplify_partial(kind, inputs, known)
        if simplified is not None:
            target_kind, target_inputs = simplified
            if target_kind is CellType.BUF:
                return target_inputs[0]
            out = rb.new.add_net(netlist.net_name(cell.output))
            rb.new.add_cell(target_kind, target_inputs, out, cell.name)
            return out
        out = rb.emit(cell, inputs)
        return out

    return rb.finish(process)


#: (gate, constant input value) pairs that force the output to a constant.
_DOMINATING = {
    (CellType.AND, 0): 0,
    (CellType.NAND, 0): 1,
    (CellType.OR, 1): 1,
    (CellType.NOR, 1): 0,
}


def _simplify_partial(
    kind: CellType, inputs: Tuple[int, ...], known: Sequence[Optional[int]]
) -> Optional[Tuple[CellType, Tuple[int, ...]]]:
    """Simplify a 2-input gate when exactly one input is constant."""
    if len(inputs) != 2 or sum(v is not None for v in known) != 1:
        return None
    const_idx = 0 if known[0] is not None else 1
    other = inputs[1 - const_idx]
    value = known[const_idx]
    table = {
        (CellType.AND, 1): (CellType.BUF, (other,)),
        (CellType.NAND, 1): (CellType.NOT, (other,)),
        (CellType.OR, 0): (CellType.BUF, (other,)),
        (CellType.NOR, 0): (CellType.NOT, (other,)),
        (CellType.XOR, 0): (CellType.BUF, (other,)),
        (CellType.XOR, 1): (CellType.NOT, (other,)),
        (CellType.XNOR, 0): (CellType.NOT, (other,)),
        (CellType.XNOR, 1): (CellType.BUF, (other,)),
    }
    return table.get((kind, value))


def common_subexpression_elimination(netlist: Netlist) -> Netlist:
    """Merge structurally identical combinational cells."""
    rb = _Rebuilder(netlist, "cse")
    seen: Dict[Tuple, int] = {}

    def process(cell: Cell, inputs: Tuple[int, ...]) -> int:
        kind = cell.cell_type
        key_inputs = tuple(sorted(inputs)) if kind in COMMUTATIVE else inputs
        key = (kind, key_inputs)
        if kind.is_constant:
            key = (kind,)
        if key in seen:
            return seen[key]
        out = rb.emit(cell, inputs)
        seen[key] = out
        return out

    return rb.finish(process)


def dead_cell_elimination(netlist: Netlist) -> Netlist:
    """Drop cells (and registers) that cannot reach a primary output."""
    live_nets = set(netlist.outputs)
    changed = True
    drivers = netlist.net_driver
    while changed:
        changed = False
        for net in list(live_nets):
            driver_idx = drivers[net]
            if driver_idx is None:
                continue
            for inp in netlist.cells[driver_idx].inputs:
                if inp not in live_nets:
                    live_nets.add(inp)
                    changed = True

    new = Netlist(netlist.name)
    net_map: Dict[int, int] = {}
    for pi in netlist.inputs:
        mapped = new.add_net(netlist.net_name(pi))
        new.mark_input(mapped)
        net_map[pi] = mapped
    for cell in netlist.cells:
        if cell.output in live_nets and cell.output not in net_map:
            net_map[cell.output] = new.add_net(netlist.net_name(cell.output))
    for cell in netlist.cells:
        if cell.output not in live_nets:
            continue
        new.add_cell(
            cell.cell_type,
            tuple(net_map[n] for n in cell.inputs),
            net_map[cell.output],
            cell.name,
        )
    for out in netlist.outputs:
        new.mark_output(net_map[out])
    new.validate()
    return new


DEFAULT_PASSES = (
    eliminate_buffers,
    constant_fold,
    common_subexpression_elimination,
    dead_cell_elimination,
)


def optimize(
    netlist: Netlist,
    passes: Sequence[Callable[[Netlist], Netlist]] = DEFAULT_PASSES,
    max_iterations: int = 4,
) -> Netlist:
    """Run passes to a fixed point (bounded by ``max_iterations``)."""
    current = netlist
    for _ in range(max_iterations):
        before = len(current.cells)
        for pass_fn in passes:
            current = pass_fn(current)
        if len(current.cells) == before:
            break
    return current
