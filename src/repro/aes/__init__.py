"""Reference AES-128 (FIPS-197) and combinational GF(2^8) circuits.

The reference cipher is the correctness oracle for the masked designs; the
circuit generators provide the GF(2^8) multipliers used by the masking
conversions and the local inverter used inside the masked S-box (the paper's
reference [18] built a logic-minimized inverter; we generate an equivalent
one from the tower decomposition -- see DESIGN.md for the substitution note).
"""

from repro.aes.sbox import (
    AFFINE_CONSTANT,
    AFFINE_MATRIX,
    INV_SBOX_TABLE,
    SBOX_TABLE,
    affine_transform,
    inv_sbox,
    sbox,
)
from repro.aes.cipher import (
    aes128_decrypt_block,
    aes128_encrypt_block,
    key_expansion,
)
from repro.aes.gf_circuits import (
    build_gf256_inverter,
    build_gf256_multiplier,
    gf256_inverter_circuit,
    gf256_multiplier_circuit,
)

__all__ = [
    "SBOX_TABLE",
    "INV_SBOX_TABLE",
    "AFFINE_MATRIX",
    "AFFINE_CONSTANT",
    "sbox",
    "inv_sbox",
    "affine_transform",
    "aes128_encrypt_block",
    "aes128_decrypt_block",
    "key_expansion",
    "build_gf256_multiplier",
    "build_gf256_inverter",
    "gf256_multiplier_circuit",
    "gf256_inverter_circuit",
]
