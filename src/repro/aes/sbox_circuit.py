"""Unprotected S-box netlists (CPA attack targets).

The attack-side counterpart of the masked designs: a plain combinational
AES S-box, and a "keyed" variant (``SBox(pt xor key)`` with input/output
registers) that models the first round of an unprotected implementation --
the classic CPA target recovered in :mod:`repro.sca.cpa`.
"""

from __future__ import annotations

from typing import List

from repro.aes.gf_circuits import gf256_inverter_circuit
from repro.aes.sbox import AFFINE_CONSTANT, AFFINE_MATRIX
from repro.netlist.builder import CircuitBuilder
from repro.netlist.core import Netlist


def plain_sbox_circuit(
    builder: CircuitBuilder, x: List[int], name: str = "sbox"
) -> List[int]:
    """Instantiate a combinational AES S-box: affine(inverse(x))."""
    with builder.scope(name):
        inverse = gf256_inverter_circuit(builder, x, "inv")
        return builder.gf2_linear(AFFINE_MATRIX, inverse, AFFINE_CONSTANT)


def build_plain_sbox() -> Netlist:
    """Standalone combinational S-box with input x[8], output y[8]."""
    builder = CircuitBuilder("plain_sbox")
    x = builder.input_bus("x", 8)
    builder.output_bus(plain_sbox_circuit(builder, x), "y")
    return builder.build()


def build_keyed_sbox() -> Netlist:
    """``y = SBox(pt xor key)`` with registered input and output.

    Ports: ``pt[8]`` and ``key[8]`` inputs, ``y[8]`` output.  The registers
    give the Hamming-distance power model realistic switching activity --
    this is the canonical unprotected CPA target.
    """
    builder = CircuitBuilder("keyed_sbox")
    pt = builder.input_bus("pt", 8)
    key = builder.input_bus("key", 8)
    mixed = builder.xor_bus(pt, key)
    state = builder.reg_bus(mixed, "state")
    substituted = plain_sbox_circuit(builder, state)
    out = builder.reg_bus(substituted, "out")
    builder.output_bus(out, "y")
    return builder.build()
