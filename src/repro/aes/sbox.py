"""The AES S-box: inversion in GF(2^8) followed by an affine map (Eq. (2)).

The tables are *computed* from the field arithmetic rather than hardcoded, so
they double as a consistency check of :mod:`repro.gf`.
"""

from __future__ import annotations

from typing import List

from repro.gf.gf2 import gf2_matrix_vector
from repro.gf.gf256 import GF256

#: Rows (as integers) of the AES affine matrix: output bit i XORs input bits
#: {i, i+4, i+5, i+6, i+7} (indices mod 8).
AFFINE_MATRIX = tuple(
    (1 << i)
    | (1 << ((i + 4) % 8))
    | (1 << ((i + 5) % 8))
    | (1 << ((i + 6) % 8))
    | (1 << ((i + 7) % 8))
    for i in range(8)
)

#: The affine constant 0x63.
AFFINE_CONSTANT = 0x63


def affine_transform(value: int) -> int:
    """The AES affine map A(x) = M*x xor 0x63."""
    return gf2_matrix_vector(AFFINE_MATRIX, value) ^ AFFINE_CONSTANT


def _build_tables() -> List[int]:
    return [affine_transform(GF256.inverse_or_zero(x)) for x in range(256)]


#: The AES S-box as a lookup table, S[x] = A(x^-1).
SBOX_TABLE = tuple(_build_tables())

#: The inverse S-box.
INV_SBOX_TABLE = tuple(SBOX_TABLE.index(y) for y in range(256))


def sbox(value: int) -> int:
    """Apply the AES S-box."""
    return SBOX_TABLE[value & 0xFF]


def inv_sbox(value: int) -> int:
    """Apply the inverse AES S-box."""
    return INV_SBOX_TABLE[value & 0xFF]
