"""Combinational GF(2^8) circuits: multiplier and inverter generators.

* :func:`gf256_multiplier_circuit` -- schoolbook polynomial multiplier with a
  linear reduction network; used four times in the masked S-box's masking
  conversions (Section II-C of the paper).
* :func:`gf256_inverter_circuit` -- the *local inversion* of the masked
  S-box.  The paper's design uses the logic-minimized inverter of
  Boyar-Matthews-Peralta [18]; we generate a functionally identical
  combinational inverter from the GF(((2^2)^2)^2) tower decomposition
  (substitution documented in DESIGN.md).  Because the local inversion
  operates on a single multiplicative share, any correct combinational
  implementation exhibits the same probing-model behaviour at the S-box
  level: its glitch-extended probes resolve to the same register boundary.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import NetlistError
from repro.gf.gf2n import polynomial_mod
from repro.gf.gf256 import AES_POLYNOMIAL
from repro.gf.tower import (
    NU,
    TowerField,
    gf16_scale,
    gf16_square,
    gf4_square,
)
from repro.netlist.builder import CircuitBuilder
from repro.netlist.core import Netlist

Bus = List[int]


def _linear_matrix_from_function(func, width: int) -> Tuple[int, ...]:
    """Rows (as integers) of the matrix of a GF(2)-linear value function."""
    rows = []
    for i in range(width):
        row = 0
        for j in range(width):
            image = func(1 << j)
            row |= ((image >> i) & 1) << j
        rows.append(row)
    return tuple(rows)


_GF4_SQUARE_MATRIX = _linear_matrix_from_function(gf4_square, 2)
_GF16_SQUARE_MATRIX = _linear_matrix_from_function(gf16_square, 4)
_GF16_SCALE_NU_MATRIX = _linear_matrix_from_function(
    lambda x: gf16_scale(x, NU), 4
)


def _reduction_matrix() -> Tuple[int, ...]:
    """8x15 matrix reducing a degree-14 product modulo the AES polynomial."""
    rows = [0] * 8
    for k in range(15):
        reduced = polynomial_mod(1 << k, AES_POLYNOMIAL)
        for i in range(8):
            rows[i] |= ((reduced >> i) & 1) << k
    return tuple(rows)


_REDUCTION_MATRIX = _reduction_matrix()


def gf256_multiplier_circuit(
    builder: CircuitBuilder, a: Sequence[int], b: Sequence[int], name: str
) -> Bus:
    """Instantiate an AES-basis GF(2^8) multiplier; returns the product bus.

    Structure: 64 partial-product AND gates, XOR trees for the 15 polynomial
    product coefficients, then the linear reduction network.
    """
    if len(a) != 8 or len(b) != 8:
        raise NetlistError("GF(2^8) multiplier needs two 8-bit buses")
    with builder.scope(name):
        coefficients: List[List[int]] = [[] for _ in range(15)]
        for i in range(8):
            for j in range(8):
                coefficients[i + j].append(
                    builder.and_(a[i], b[j], f"pp{i}{j}")
                )
        product = [
            builder.xor_reduce(terms, f"p{k}")
            for k, terms in enumerate(coefficients)
        ]
        return builder.gf2_linear(_REDUCTION_MATRIX, product)


def _gf4_multiplier(
    builder: CircuitBuilder, a: Sequence[int], b: Sequence[int], name: str
) -> Bus:
    """GF(2^2) multiplier on bit-pair buses: 4 ANDs, 3 XORs."""
    with builder.scope(name):
        a0, a1 = a
        b0, b1 = b
        p00 = builder.and_(a0, b0)
        p01 = builder.and_(a0, b1)
        p10 = builder.and_(a1, b0)
        p11 = builder.and_(a1, b1)
        c0 = builder.xor(p00, p11)
        c1 = builder.xor(builder.xor(p11, p01), p10)
        return [c0, c1]


def _gf16_multiplier(
    builder: CircuitBuilder, a: Sequence[int], b: Sequence[int], name: str
) -> Bus:
    """GF(2^4) Karatsuba multiplier over GF(2^2)."""
    with builder.scope(name):
        al, ah = list(a[:2]), list(a[2:])
        bl, bh = list(b[:2]), list(b[2:])
        hh = _gf4_multiplier(builder, ah, bh, "hh")
        ll = _gf4_multiplier(builder, al, bl, "ll")
        a_sum = builder.xor_bus(ah, al)
        b_sum = builder.xor_bus(bh, bl)
        cross = _gf4_multiplier(builder, a_sum, b_sum, "cross")
        high = builder.xor_bus(cross, ll)
        # mu * hh with mu = W: (h1, h0) -> (h1 ^ h0) W + h1.
        scaled = [hh[1], builder.xor(hh[1], hh[0])]
        low = builder.xor_bus(ll, scaled)
        return low + high


def _gf16_inverter(
    builder: CircuitBuilder, a: Sequence[int], name: str
) -> Bus:
    """GF(2^4) inverter via the GF(2^2) norm (0 maps to 0)."""
    with builder.scope(name):
        al, ah = list(a[:2]), list(a[2:])
        ah_sq = builder.gf2_linear(_GF4_SQUARE_MATRIX, ah)
        # mu * ah^2
        scaled = [ah_sq[1], builder.xor(ah_sq[1], ah_sq[0])]
        product = _gf4_multiplier(builder, ah, al, "prod")
        al_sq = builder.gf2_linear(_GF4_SQUARE_MATRIX, al)
        delta = builder.xor_bus(builder.xor_bus(scaled, product), al_sq)
        # In GF(2^2) the inverse equals the square.
        delta_inv = builder.gf2_linear(_GF4_SQUARE_MATRIX, delta)
        high = _gf4_multiplier(builder, ah, delta_inv, "high")
        low = _gf4_multiplier(
            builder, builder.xor_bus(ah, al), delta_inv, "low"
        )
        return low + high


def gf256_inverter_circuit(
    builder: CircuitBuilder, a: Sequence[int], name: str
) -> Bus:
    """Instantiate a combinational GF(2^8) inverter (AES basis, 0 -> 0)."""
    if len(a) != 8:
        raise NetlistError("GF(2^8) inverter needs an 8-bit bus")
    with builder.scope(name):
        tower = builder.gf2_linear(TowerField.aes_to_tower_matrix, a)
        tl, th = tower[:4], tower[4:]
        th_sq = builder.gf2_linear(_GF16_SQUARE_MATRIX, th)
        theta_terms = builder.gf2_linear(_GF16_SCALE_NU_MATRIX, th_sq)
        product = _gf16_multiplier(builder, th, tl, "prod")
        tl_sq = builder.gf2_linear(_GF16_SQUARE_MATRIX, tl)
        theta = builder.xor_bus(
            builder.xor_bus(theta_terms, product), tl_sq
        )
        theta_inv = _gf16_inverter(builder, theta, "norm_inv")
        high = _gf16_multiplier(builder, th, theta_inv, "high")
        low = _gf16_multiplier(
            builder, builder.xor_bus(th, tl), theta_inv, "low"
        )
        return builder.gf2_linear(TowerField.tower_to_aes_matrix, low + high)


def build_gf256_multiplier() -> Netlist:
    """Standalone multiplier netlist with inputs a[8], b[8], output p[8]."""
    builder = CircuitBuilder("gf256_mul")
    a = builder.input_bus("a", 8)
    b = builder.input_bus("b", 8)
    product = gf256_multiplier_circuit(builder, a, b, "mul")
    builder.output_bus(product, "p")
    return builder.build()


def build_gf256_inverter() -> Netlist:
    """Standalone inverter netlist with input a[8], output y[8]."""
    builder = CircuitBuilder("gf256_inv")
    a = builder.input_bus("a", 8)
    inverse = gf256_inverter_circuit(builder, a, "inv")
    builder.output_bus(inverse, "y")
    return builder.build()
