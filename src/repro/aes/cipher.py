"""FIPS-197 AES-128 reference implementation.

Operates on 16-byte blocks held as ``bytes``; the state is column-major as in
the standard.  This is the unmasked oracle every masked construction is
checked against.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ReproError
from repro.gf.gf256 import gf256_multiply
from repro.aes.sbox import inv_sbox, sbox

N_ROUNDS = 10
BLOCK_BYTES = 16
KEY_BYTES = 16

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def key_expansion(key: bytes) -> List[List[int]]:
    """Expand a 16-byte key into 11 round keys (each 16 ints)."""
    if len(key) != KEY_BYTES:
        raise ReproError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (N_ROUNDS + 1)):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [sbox(b) for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(N_ROUNDS + 1):
        flat = []
        for w in words[4 * r : 4 * r + 4]:
            flat.extend(w)
        round_keys.append(flat)
    return round_keys


def add_round_key(state: List[int], round_key: Sequence[int]) -> List[int]:
    """XOR the round key into the state."""
    return [s ^ k for s, k in zip(state, round_key)]


def sub_bytes(state: List[int]) -> List[int]:
    """Apply the S-box to every state byte."""
    return [sbox(b) for b in state]


def inv_sub_bytes(state: List[int]) -> List[int]:
    """Apply the inverse S-box to every state byte."""
    return [inv_sbox(b) for b in state]


def shift_rows(state: List[int]) -> List[int]:
    """Cyclically shift row r left by r (state is column-major)."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[4 * col + row] = state[4 * ((col + row) % 4) + row]
    return out


def inv_shift_rows(state: List[int]) -> List[int]:
    """Inverse of :func:`shift_rows`."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[4 * ((col + row) % 4) + row] = state[4 * col + row]
    return out


def _mix_single_column(column: Sequence[int], matrix: Sequence[int]) -> List[int]:
    return [
        gf256_multiply(matrix[0], column[row])
        ^ gf256_multiply(matrix[1], column[(row + 1) % 4])
        ^ gf256_multiply(matrix[2], column[(row + 2) % 4])
        ^ gf256_multiply(matrix[3], column[(row + 3) % 4])
        for row in range(4)
    ]


def mix_columns(state: List[int]) -> List[int]:
    """The MixColumns linear layer."""
    out = []
    for col in range(4):
        out.extend(_mix_single_column(state[4 * col : 4 * col + 4], (2, 3, 1, 1)))
    return out


def inv_mix_columns(state: List[int]) -> List[int]:
    """Inverse MixColumns."""
    out = []
    for col in range(4):
        out.extend(
            _mix_single_column(state[4 * col : 4 * col + 4], (14, 11, 13, 9))
        )
    return out


def aes128_encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    if len(plaintext) != BLOCK_BYTES:
        raise ReproError("plaintext block must be 16 bytes")
    round_keys = key_expansion(key)
    state = add_round_key(list(plaintext), round_keys[0])
    for r in range(1, N_ROUNDS):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[r])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[N_ROUNDS])
    return bytes(state)


def aes128_decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128."""
    if len(ciphertext) != BLOCK_BYTES:
        raise ReproError("ciphertext block must be 16 bytes")
    round_keys = key_expansion(key)
    state = add_round_key(list(ciphertext), round_keys[N_ROUNDS])
    for r in range(N_ROUNDS - 1, 0, -1):
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        state = add_round_key(state, round_keys[r])
        state = inv_mix_columns(state)
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, round_keys[0])
    return bytes(state)
