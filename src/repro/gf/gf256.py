"""The AES field GF(2^8) with the FIPS-197 reduction polynomial.

Free functions mirror the notation of the paper: multiplication and inversion
in GF(256) are the operations written with an encircled-times in the paper's
Eq. (3) and in the masking-conversion equations of Section II-C.
"""

from __future__ import annotations

from repro.gf.gf2n import field

#: x^8 + x^4 + x^3 + x + 1, the AES reduction polynomial.
AES_POLYNOMIAL = 0x11B

#: The AES field as a :class:`repro.gf.gf2n.GF2n` instance.
GF256 = field(AES_POLYNOMIAL)


def gf256_multiply(a: int, b: int) -> int:
    """Multiply two elements of the AES field."""
    return GF256.multiply(a, b)


def gf256_inverse(a: int) -> int:
    """AES-style inverse in GF(2^8): 0 maps to 0."""
    return GF256.inverse_or_zero(a)


def gf256_power(a: int, exponent: int) -> int:
    """Raise an AES-field element to an integer power."""
    return GF256.power(a, exponent)


def gf256_strict_inverse(a: int) -> int:
    """True multiplicative inverse; raises on zero.

    The paper's multiplicative sharing (Eq. (3)) relies on this operation and
    is exactly where the zero-value problem originates: 0 has no inverse, so
    0 cannot be multiplicatively masked.
    """
    return GF256.inverse(a)
