"""Binary-field arithmetic.

* :mod:`repro.gf.gf2` -- bit-level helpers and GF(2) linear algebra.
* :mod:`repro.gf.gf2n` -- generic GF(2^n) fields defined by an irreducible
  polynomial, with log/antilog tables.
* :mod:`repro.gf.gf256` -- the AES field GF(2^8) / x^8+x^4+x^3+x+1.
* :mod:`repro.gf.tower` -- the GF(((2^2)^2)^2) tower decomposition and the
  isomorphism with the AES field, used to derive combinational inverters.
"""

from repro.gf.gf2 import (
    bit,
    gf2_matrix_inverse,
    gf2_matrix_multiply,
    gf2_matrix_vector,
    parity,
    popcount,
)
from repro.gf.gf2n import GF2n
from repro.gf.gf256 import GF256, gf256_inverse, gf256_multiply, gf256_power
from repro.gf.tower import TowerField

__all__ = [
    "bit",
    "parity",
    "popcount",
    "gf2_matrix_vector",
    "gf2_matrix_multiply",
    "gf2_matrix_inverse",
    "GF2n",
    "GF256",
    "gf256_multiply",
    "gf256_inverse",
    "gf256_power",
    "TowerField",
]
