"""Tower-field decomposition GF(((2^2)^2)^2) of the AES field.

The masked S-box of De Meyer et al. performs a *local* (unmasked) GF(2^8)
inversion on one multiplicative share, implemented in hardware as a
logic-minimized combinational circuit (their reference [18], Boyar-Matthews-
Peralta).  We derive an equivalent combinational inverter from the classical
tower decomposition:

* GF(2^2)   = GF(2)[W]  / (W^2 + W + 1)
* GF(2^4)   = GF(2^2)[Z] / (Z^2 + Z + mu),   mu   = W
* GF(2^8)_T = GF(2^4)[Y] / (Y^2 + Y + nu),   nu   found by search

together with the GF(2)-linear isomorphism between the AES polynomial basis
and the tower basis.  The substitution is documented in DESIGN.md: any
correct combinational inverter yields the same probing-model behaviour for
the *local* inversion because the inversion operates on a single share.

Element encodings (all little-endian bit vectors):

* GF(2^2): 2-bit integer ``b1*W + b0``.
* GF(2^4): 4-bit integer ``(high << 2) | low`` with high/low in GF(2^2).
* GF(2^8) tower: 8-bit integer ``(high << 4) | low`` with high/low in GF(2^4).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import FieldError
from repro.gf.gf2 import gf2_matrix_inverse, gf2_matrix_vector
from repro.gf.gf256 import GF256

#: The constant mu of the GF(2^4) extension, an element of GF(2^2).
MU = 0b10  # the element W

GF4_MUL_TABLE = tuple(
    tuple(
        (
            lambda a1, a0, b1, b0: (
                ((a1 & b1) ^ (a1 & b0) ^ (a0 & b1)) << 1
                | ((a0 & b0) ^ (a1 & b1))
            )
        )((a >> 1) & 1, a & 1, (b >> 1) & 1, b & 1)
        for b in range(4)
    )
    for a in range(4)
)


def gf4_multiply(a: int, b: int) -> int:
    """Multiply in GF(2^2)."""
    return GF4_MUL_TABLE[a][b]


def gf4_square(a: int) -> int:
    """Square in GF(2^2); also the inverse for non-zero elements."""
    a1 = (a >> 1) & 1
    a0 = a & 1
    return (a1 << 1) | (a0 ^ a1)


def gf4_inverse(a: int) -> int:
    """Inverse in GF(2^2) (0 maps to 0, matching the AES convention)."""
    return gf4_square(a)


def gf4_scale_mu(a: int) -> int:
    """Multiply a GF(2^2) element by mu = W."""
    a1 = (a >> 1) & 1
    a0 = a & 1
    return ((a1 ^ a0) << 1) | a1


def gf16_multiply(a: int, b: int) -> int:
    """Multiply in GF(2^4) represented over GF(2^2)."""
    ah, al = (a >> 2) & 0b11, a & 0b11
    bh, bl = (b >> 2) & 0b11, b & 0b11
    hh = gf4_multiply(ah, bh)
    ll = gf4_multiply(al, bl)
    cross = gf4_multiply(ah ^ al, bh ^ bl)
    high = cross ^ ll  # (ah*bl + al*bh + ah*bh) = cross ^ ll; plus hh from Z^2=Z+mu
    low = ll ^ gf4_scale_mu(hh)
    return (high << 2) | low


def gf16_square(a: int) -> int:
    """Square in GF(2^4)."""
    return gf16_multiply(a, a)


def gf16_scale(a: int, c: int) -> int:
    """Multiply a GF(2^4) element by a constant."""
    return gf16_multiply(a, c)


def gf16_inverse(a: int) -> int:
    """Inverse in GF(2^4) via the sub-field decomposition (0 maps to 0)."""
    ah, al = (a >> 2) & 0b11, a & 0b11
    # Delta = mu*ah^2 + ah*al + al^2 is the "norm" in GF(2^2).
    delta = gf4_scale_mu(gf4_square(ah)) ^ gf4_multiply(ah, al) ^ gf4_square(al)
    delta_inv = gf4_inverse(delta)
    high = gf4_multiply(ah, delta_inv)
    low = gf4_multiply(ah ^ al, delta_inv)
    return (high << 2) | low


def _find_nu() -> int:
    """Find the smallest nu in GF(2^4) making Y^2 + Y + nu irreducible.

    Y^2 + Y + nu is reducible over GF(2^4) iff nu is in the image of the
    GF(2)-linear map z -> z^2 + z.
    """
    image = {gf16_square(z) ^ z for z in range(16)}
    for nu in range(16):
        if nu not in image:
            return nu
    raise FieldError("no irreducible quadratic extension found")  # pragma: no cover


#: The constant nu of the GF(2^8) tower extension, an element of GF(2^4).
NU = _find_nu()


def tower_multiply(a: int, b: int) -> int:
    """Multiply in the tower representation of GF(2^8)."""
    ah, al = (a >> 4) & 0xF, a & 0xF
    bh, bl = (b >> 4) & 0xF, b & 0xF
    hh = gf16_multiply(ah, bh)
    ll = gf16_multiply(al, bl)
    cross = gf16_multiply(ah ^ al, bh ^ bl)
    high = cross ^ ll
    low = ll ^ gf16_scale(hh, NU)
    return (high << 4) | low


def tower_square(a: int) -> int:
    """Square in the tower representation."""
    return tower_multiply(a, a)


def tower_inverse(a: int) -> int:
    """Inverse in the tower representation (0 maps to 0).

    This is the value-level model of the combinational inverter circuit:
    ``theta = nu*ah^2 + ah*al + al^2`` followed by a GF(2^4) inversion and
    two GF(2^4) multiplications.
    """
    ah, al = (a >> 4) & 0xF, a & 0xF
    theta = gf16_scale(gf16_square(ah), NU) ^ gf16_multiply(ah, al) ^ gf16_square(al)
    theta_inv = gf16_inverse(theta)
    high = gf16_multiply(ah, theta_inv)
    low = gf16_multiply(ah ^ al, theta_inv)
    return (high << 4) | low


def _tower_power(a: int, exponent: int) -> int:
    result = 1
    base = a
    while exponent:
        if exponent & 1:
            result = tower_multiply(result, base)
        base = tower_multiply(base, base)
        exponent >>= 1
    return result


def _find_isomorphism() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Find GF(2)-linear maps between the AES basis and the tower basis.

    The map is determined by the image ``t`` of the AES element ``x`` (0x02):
    ``t`` must be a root of the AES polynomial x^8+x^4+x^3+x+1 evaluated with
    tower arithmetic.  We take the smallest root, deterministically.

    Returns ``(aes_to_tower, tower_to_aes)`` as row-integer matrices mapping
    little-endian bit vectors.
    """
    for t in range(2, 256):
        value = _tower_power(t, 8) ^ _tower_power(t, 4) ^ _tower_power(t, 3) ^ t ^ 1
        if value == 0:
            columns = [_tower_power(t, i) for i in range(8)]
            # columns[i] is the image of basis vector x^i; build the matrix
            # with rows as integers: row r bit c = bit r of columns[c].
            rows = tuple(
                sum(((columns[c] >> r) & 1) << c for c in range(8))
                for r in range(8)
            )
            inverse = gf2_matrix_inverse(rows)
            return rows, inverse
    raise FieldError("AES polynomial has no root in the tower field")  # pragma: no cover


_AES_TO_TOWER, _TOWER_TO_AES = _find_isomorphism()


class TowerField:
    """The tower representation of GF(2^8) and its AES-field isomorphism."""

    #: Matrix mapping AES-basis bit vectors to tower-basis bit vectors.
    aes_to_tower_matrix = _AES_TO_TOWER
    #: Matrix mapping tower-basis bit vectors back to the AES basis.
    tower_to_aes_matrix = _TOWER_TO_AES
    mu = MU
    nu = NU

    @staticmethod
    def to_tower(aes_value: int) -> int:
        """Map an AES-field element into the tower basis."""
        return gf2_matrix_vector(_AES_TO_TOWER, aes_value)

    @staticmethod
    def from_tower(tower_value: int) -> int:
        """Map a tower-basis element back to the AES basis."""
        return gf2_matrix_vector(_TOWER_TO_AES, tower_value)

    @staticmethod
    def multiply(a: int, b: int) -> int:
        """Tower-basis multiplication."""
        return tower_multiply(a, b)

    @staticmethod
    def inverse(a: int) -> int:
        """Tower-basis inversion (0 maps to 0)."""
        return tower_inverse(a)

    @classmethod
    def aes_inverse_via_tower(cls, aes_value: int) -> int:
        """Compute the AES-field inverse by a round-trip through the tower.

        Used as a cross-check that the isomorphism and the tower inversion
        agree with the table-based :data:`repro.gf.gf256.GF256` field.
        """
        return cls.from_tower(tower_inverse(cls.to_tower(aes_value)))


def verify_isomorphism() -> bool:
    """Exhaustively check that the isomorphism is a field homomorphism."""
    for a in range(256):
        for b in (1, 2, 3, 0x53, 0xCA, 0xFF):
            lhs = TowerField.to_tower(GF256.multiply(a, b))
            rhs = tower_multiply(TowerField.to_tower(a), TowerField.to_tower(b))
            if lhs != rhs:
                return False
    return True


__all__ = [
    "MU",
    "NU",
    "TowerField",
    "gf4_multiply",
    "gf4_square",
    "gf4_inverse",
    "gf4_scale_mu",
    "gf16_multiply",
    "gf16_square",
    "gf16_scale",
    "gf16_inverse",
    "tower_multiply",
    "tower_square",
    "tower_inverse",
    "verify_isomorphism",
]
