"""Generic binary extension fields GF(2^n).

A field is defined by an irreducible polynomial given as an integer whose
bits are the polynomial coefficients (bit ``i`` is the coefficient of
``x^i``).  Elements are integers in ``[0, 2^n)`` in the polynomial basis.

The class precomputes log/antilog tables for fields up to 16 bits, which
makes multiplication and inversion O(1) -- plenty for the 8-bit AES field and
the 2/4-bit tower sub-fields used throughout the project.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.errors import FieldError


def carryless_multiply(a: int, b: int) -> int:
    """Multiply two GF(2) polynomials (no reduction)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def polynomial_mod(value: int, modulus: int) -> int:
    """Reduce a GF(2) polynomial modulo another."""
    if modulus == 0:
        raise FieldError("modulus polynomial must be non-zero")
    mod_degree = modulus.bit_length() - 1
    while value.bit_length() - 1 >= mod_degree and value:
        shift = (value.bit_length() - 1) - mod_degree
        value ^= modulus << shift
    return value


def is_irreducible(poly: int) -> bool:
    """Test irreducibility of a GF(2) polynomial with Rabin's test.

    Uses the fact that ``x^(2^n) == x (mod poly)`` and, for every prime
    divisor ``p`` of ``n``, ``gcd(x^(2^(n/p)) - x, poly) == 1``.
    """
    degree = poly.bit_length() - 1
    if degree <= 0:
        return False
    if degree == 1:
        return True

    def square_mod(value: int) -> int:
        return polynomial_mod(carryless_multiply(value, value), poly)

    def poly_gcd(a: int, b: int) -> int:
        while b:
            a, b = b, polynomial_mod(a, b)
        return a

    # x^(2^degree) mod poly must equal x.
    power = 2  # the polynomial "x"
    for _ in range(degree):
        power = square_mod(power)
    if power != 2:
        return False

    for prime in _prime_factors(degree):
        power = 2
        for _ in range(degree // prime):
            power = square_mod(power)
        if poly_gcd(power ^ 2, poly) != 1:
            return False
    return True


def _prime_factors(n: int) -> List[int]:
    factors = []
    candidate = 2
    while candidate * candidate <= n:
        if n % candidate == 0:
            factors.append(candidate)
            while n % candidate == 0:
                n //= candidate
        candidate += 1
    if n > 1:
        factors.append(n)
    return factors


class GF2n:
    """A binary extension field GF(2^n) with table-based arithmetic."""

    def __init__(self, modulus: int):
        if not is_irreducible(modulus):
            raise FieldError(f"polynomial {modulus:#x} is not irreducible over GF(2)")
        self.modulus = modulus
        self.degree = modulus.bit_length() - 1
        self.order = 1 << self.degree
        if self.degree > 16:
            raise FieldError("table-based GF2n supports degrees up to 16")
        self._build_tables()

    def _build_tables(self) -> None:
        self.exp_table: List[int] = []
        self.log_table: List[int] = [0] * self.order
        generator = self._find_generator()
        element = 1
        for power in range(self.order - 1):
            self.exp_table.append(element)
            self.log_table[element] = power
            element = polynomial_mod(
                carryless_multiply(element, generator), self.modulus
            )
        self.generator = generator

    def _find_generator(self) -> int:
        group_order = self.order - 1
        primes = _prime_factors(group_order)
        for candidate in range(2, self.order):
            if all(
                self._power_no_table(candidate, group_order // p) != 1
                for p in primes
            ):
                return candidate
        raise FieldError("no multiplicative generator found")  # pragma: no cover

    def _power_no_table(self, base: int, exponent: int) -> int:
        result = 1
        while exponent:
            if exponent & 1:
                result = polynomial_mod(
                    carryless_multiply(result, base), self.modulus
                )
            base = polynomial_mod(carryless_multiply(base, base), self.modulus)
            exponent >>= 1
        return result

    def _check(self, value: int) -> None:
        if not 0 <= value < self.order:
            raise FieldError(
                f"element {value} out of range for GF(2^{self.degree})"
            )

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        self._check(a)
        self._check(b)
        return a ^ b

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        log_sum = (self.log_table[a] + self.log_table[b]) % (self.order - 1)
        return self.exp_table[log_sum]

    def power(self, a: int, exponent: int) -> int:
        """Raise ``a`` to an integer power (negative allowed for non-zero a)."""
        self._check(a)
        if a == 0:
            if exponent < 0:
                raise FieldError("zero has no negative powers")
            return 0 if exponent else 1
        log_a = self.log_table[a]
        return self.exp_table[(log_a * exponent) % (self.order - 1)]

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a non-zero element."""
        self._check(a)
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        return self.exp_table[(self.order - 1 - self.log_table[a]) % (self.order - 1)]

    def inverse_or_zero(self, a: int) -> int:
        """AES-style inverse: maps 0 to 0, otherwise the true inverse."""
        return 0 if a == 0 else self.inverse(a)

    def elements(self) -> range:
        """Iterate over all field elements."""
        return range(self.order)

    def __repr__(self) -> str:
        return f"GF2n(modulus={self.modulus:#x}, degree={self.degree})"


@lru_cache(maxsize=None)
def field(modulus: int) -> GF2n:
    """Return a cached GF2n instance for the given modulus."""
    return GF2n(modulus)
