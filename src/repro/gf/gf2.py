"""GF(2) bit helpers and linear algebra over GF(2).

Matrices over GF(2) are represented as tuples of row integers: row ``i`` is
an integer whose bit ``j`` is the entry ``M[i][j]``.  Vectors are plain
integers (bit ``j`` is component ``j``).  This compact representation is what
the netlist generators consume when they instantiate XOR networks for linear
maps such as the AES affine transformation or tower-field isomorphisms.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import FieldError

Matrix = Tuple[int, ...]


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (LSB = 0) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def popcount(value: int) -> int:
    """Return the number of set bits of a non-negative integer."""
    if value < 0:
        raise FieldError("popcount is defined for non-negative integers")
    return bin(value).count("1")


def parity(value: int) -> int:
    """Return the XOR of all bits of a non-negative integer."""
    return popcount(value) & 1


def gf2_matrix_vector(matrix: Sequence[int], vector: int) -> int:
    """Multiply a GF(2) matrix (rows as integers) by a bit-vector integer.

    Component ``i`` of the result is ``parity(matrix[i] & vector)``.
    """
    result = 0
    for i, row in enumerate(matrix):
        result |= parity(row & vector) << i
    return result


def gf2_matrix_multiply(a: Sequence[int], b: Sequence[int]) -> Matrix:
    """Multiply two GF(2) matrices given as row-integer sequences.

    ``a`` is ``n x k`` (n rows, each with k meaningful bits) and ``b`` is
    ``k x m``; the result is ``n x m``.
    """
    n_cols_b = max((r.bit_length() for r in b), default=0)
    rows = []
    for row_a in a:
        acc = 0
        for j in range(n_cols_b):
            col_bits = 0
            for i, row_b in enumerate(b):
                col_bits |= bit(row_b, j) << i
            acc |= parity(row_a & col_bits) << j
        rows.append(acc)
    return tuple(rows)


def gf2_matrix_identity(n: int) -> Matrix:
    """Return the ``n x n`` identity matrix."""
    return tuple(1 << i for i in range(n))


def gf2_matrix_transpose(matrix: Sequence[int], n_cols: int) -> Matrix:
    """Transpose a GF(2) matrix with ``n_cols`` columns."""
    rows = []
    for j in range(n_cols):
        acc = 0
        for i, row in enumerate(matrix):
            acc |= bit(row, j) << i
        rows.append(acc)
    return tuple(rows)


def gf2_matrix_inverse(matrix: Sequence[int]) -> Matrix:
    """Invert a square GF(2) matrix via Gauss-Jordan elimination.

    Raises :class:`FieldError` if the matrix is singular.
    """
    n = len(matrix)
    work = list(matrix)
    inverse = list(gf2_matrix_identity(n))
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if bit(work[r], col)),
            None,
        )
        if pivot is None:
            raise FieldError("matrix is singular over GF(2)")
        work[col], work[pivot] = work[pivot], work[col]
        inverse[col], inverse[pivot] = inverse[pivot], inverse[col]
        for row in range(n):
            if row != col and bit(work[row], col):
                work[row] ^= work[col]
                inverse[row] ^= inverse[col]
    return tuple(inverse)


def gf2_matrix_rank(matrix: Sequence[int]) -> int:
    """Return the rank of a GF(2) matrix (rows as integers)."""
    work = list(matrix)
    rank = 0
    n_cols = max((r.bit_length() for r in work), default=0)
    row_start = 0
    for col in range(n_cols):
        pivot = next(
            (r for r in range(row_start, len(work)) if bit(work[r], col)),
            None,
        )
        if pivot is None:
            continue
        work[row_start], work[pivot] = work[pivot], work[row_start]
        for row in range(len(work)):
            if row != row_start and bit(work[row], col):
                work[row] ^= work[row_start]
        row_start += 1
        rank += 1
    return rank
