"""The canonical evaluation parameter surface: :class:`EvaluationSpec`.

Before this module existed the same ~15 parameters were spelled four times
-- evaluator keyword arguments, :class:`~repro.leakage.campaign.
CampaignConfig` fields, the service job JSON, and CLI flags -- and every new
parameter had to be threaded through all four by hand.  ``EvaluationSpec``
is the single frozen source of truth all four layers now share:

* ``from_dict``/``to_dict`` round-trip the service wire format (the
  ``POST /v1/jobs`` body) with strict unknown-field rejection;
* ``from_args`` parses an ``argparse`` namespace (the CLI's ``campaign``
  and ``submit`` commands);
* ``campaign_config`` derives the :class:`CampaignConfig` a spec describes;
* ``cache_params``/``cache_key`` define the content-addressed verdict-cache
  identity.  The key covers exactly the *semantic* parameters (netlist
  structure hash, model, budget, seed, ...); execution details that provably
  do not change results -- engine, worker count, chunk size -- are excluded,
  and the canonical encoding is kept **byte-identical** to the pre-spec
  service for every non-adaptive job so existing verdict caches stay warm.
  Adaptive-scheduler parameters join the key only when ``adaptive`` is on,
  because they then change which samples each probe accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

import hashlib
import json

from repro import engines as engine_registry
from repro.errors import SpecError

#: Server-side default chunking: campaigns checkpoint (and the adaptive
#: scheduler decides) at this per-group sample granularity when the caller
#: did not ask for explicit chunks.
DEFAULT_CHUNK_SIZE = 8_192

#: Current HTTP API version (the ``/v1/...`` route prefix).
API_VERSION = "v1"

_MODELS = ("glitch", "glitch-transition")
_MODES = ("first", "pairs", "both", "exact")

#: Spec fields excluded from the verdict-cache identity: results are
#: bit-identical across them (tests/test_cross_engine.py,
#: tests/test_leakage_parallel.py, tests/test_leakage_campaign.py;
#: cone slicing: tests/test_slice.py; exact sharding:
#: tests/test_certify_shards.py -- shard counts merge to exactly the
#: serial histogram, so the shard size is pure execution detail).
EXECUTION_FIELDS = frozenset(
    {
        "engine",
        "workers",
        "chunk_size",
        "slice",
        "shard_lane_bits",
        "tenant",
        "priority",
    }
)

#: Admission priority lanes accepted by the service (must mirror
#: :data:`repro.service.queue.PRIORITIES`; duplicated here so the spec
#: module stays import-light).
_PRIORITIES = ("high", "normal", "low")

#: Exact-enumeration fields; part of the cache identity only when
#: ``mode == "exact"`` (the budget decides which probes get verdicts).
EXACT_FIELDS = ("max_enum_bits",)

#: Adaptive-scheduler fields; part of the cache identity only when
#: ``adaptive`` is true (they then decide how many samples each probe gets).
ADAPTIVE_FIELDS = (
    "decide_threshold",
    "null_threshold",
    "decide_chunks",
    "min_null_samples",
    "max_budget_factor",
)


@dataclass(frozen=True)
class EvaluationSpec:
    """Validated parameters of one leakage evaluation.

    One instance fully describes *what* to evaluate (design, scheme,
    probing model), *how much* (sample budget, windows, pair selection),
    *under which statistics* (threshold, seed), *how to schedule it*
    (uniform or adaptive per-probe budgets), and -- excluded from the cache
    identity -- *how to execute it* (engine, workers, chunk size).
    """

    design: str = "kronecker"
    scheme: str = "full"
    model: str = "glitch"
    n_simulations: int = 100_000
    n_windows: int = 1
    fixed_secret: int = 0
    threshold: float = 5.0
    mode: str = "first"
    max_pairs: Optional[int] = 500
    pair_seed: int = 1
    pair_offsets: Tuple[int, ...] = (0,)
    seed: int = 0
    # -- execution details (never part of the cache identity) -------------
    #: any engine registered in :mod:`repro.engines`; all registered
    #: engines are bit-identical, so the choice never enters the
    #: verdict-cache key.
    engine: str = engine_registry.DEFAULT_ENGINE
    workers: int = 1
    chunk_size: Optional[int] = None
    #: simulate only the sequential fan-in cone of the active probe
    #: supports (see :mod:`repro.netlist.slice`).  Bit-identical to full
    #: simulation, hence an execution detail outside the cache identity.
    slice: bool = True
    # -- adaptive per-probe scheduling -------------------------------------
    #: evaluate with the adaptive per-probe scheduler instead of a uniform
    #: budget (see :mod:`repro.leakage.adaptive`).
    adaptive: bool = False
    #: a probe is decided **leaky** once its -log10(p) stays at or above
    #: this level for ``decide_chunks`` consecutive chunk boundaries.
    decide_threshold: float = 5.0
    #: a probe is decided **null** once its -log10(p) stays at or below
    #: this level (with at least ``min_null_samples`` samples) for
    #: ``decide_chunks`` consecutive chunk boundaries.
    null_threshold: float = 4.0
    #: consecutive chunk boundaries a decision criterion must hold.
    decide_chunks: int = 2
    #: per-group samples a probe must have before a *null* decision counts.
    min_null_samples: int = DEFAULT_CHUNK_SIZE
    #: hard cap on budget escalation for stubborn undecided probes, as a
    #: multiple of ``n_simulations``; 1.0 disables escalation (the default:
    #: adaptive runs never exceed the uniform budget).
    max_budget_factor: float = 1.0
    # -- exact exhaustive enumeration (mode == "exact") --------------------
    #: per-probe enumeration budget in bits: a probe class whose free
    #: randomness + secret variables exceed this is reported infeasible.
    max_enum_bits: int = 24
    #: lanes per shard as a power of two; pure execution detail (sharded
    #: counts merge bit-identically to serial for any value).
    shard_lane_bits: int = 16
    # -- admission (never part of the cache identity) ----------------------
    #: tenant name for per-tenant admission quotas; pure admission detail
    #: -- two tenants submitting the same spec share one cached verdict.
    tenant: str = "default"
    #: admission priority lane ("high" > "normal" > "low"); low-priority
    #: work is shed first under queue backpressure.
    priority: str = "normal"

    # ------------------------------------------------------------- parsing

    @classmethod
    def from_dict(cls, data: Dict) -> "EvaluationSpec":
        """Parse and validate an untrusted spec dict (HTTP body, record)."""
        if not isinstance(data, dict):
            raise SpecError("job spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown job spec field(s): {sorted(unknown)}"
            )
        merged = dict(data)
        if "pair_offsets" in merged:
            try:
                merged["pair_offsets"] = tuple(
                    int(v) for v in merged["pair_offsets"]
                )
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    "pair_offsets must be a list of integers"
                ) from exc
        spec = cls(**merged)
        spec.validate()
        return spec

    @classmethod
    def from_args(cls, args) -> "EvaluationSpec":
        """Build a spec from an ``argparse`` namespace.

        This is the CLI's single mapping from flags to parameters; the
        ``campaign`` and ``submit`` commands both go through it, so a flag
        added here reaches the local and the remote path at once.  Flags a
        given sub-command does not define simply keep their defaults.
        """
        def get(name, default):
            value = getattr(args, name, None)
            return default if value is None else value

        if get("exact", False):
            mode = "exact"
        elif get("batch_probes", False):
            mode = "both"
        elif get("pairs", False):
            mode = "pairs"
        else:
            mode = "first"
        spec = cls(
            design=get("design", "kronecker"),
            scheme=get("scheme", "full"),
            model=(
                "glitch-transition"
                if get("transitions", False)
                else "glitch"
            ),
            n_simulations=get("simulations", 100_000),
            n_windows=get("windows", 1),
            fixed_secret=get("fixed", 0),
            threshold=get("threshold", 5.0),
            mode=mode,
            max_pairs=get("max_pairs", 500),
            pair_seed=get("pair_seed", 1),
            seed=get("seed", 0),
            engine=get("engine", engine_registry.DEFAULT_ENGINE),
            workers=get("workers", 1),
            chunk_size=getattr(args, "chunk_size", None),
            slice=get("slice", True),
            adaptive=get("adaptive", False),
            decide_threshold=get("decide_threshold", 5.0),
            null_threshold=get("null_threshold", 4.0),
            decide_chunks=get("decide_chunks", 2),
            min_null_samples=get("min_null_samples", DEFAULT_CHUNK_SIZE),
            max_budget_factor=get("adaptive_cap", 1.0),
            max_enum_bits=get("max_enum_bits", 24),
            shard_lane_bits=get("shard_lane_bits", 16),
            tenant=get("tenant", "default"),
            priority=get("priority", "normal"),
        )
        spec.validate()
        return spec

    # ---------------------------------------------------------- validation

    def validate(self) -> None:
        """Cheap structural validation (design existence is checked later)."""
        if self.model not in _MODELS:
            raise SpecError("model must be 'glitch' or 'glitch-transition'")
        if self.mode not in _MODES:
            raise SpecError(
                "mode must be 'first', 'pairs', 'both', or 'exact'"
            )
        try:
            engine_registry.get_engine(self.engine)
        except engine_registry.EngineError as exc:
            raise SpecError(str(exc)) from None
        for name in ("design", "scheme"):
            if not isinstance(getattr(self, name), str):
                raise SpecError(f"{name} must be a string")
        for name in ("fixed_secret", "seed", "pair_seed"):
            if not isinstance(getattr(self, name), int):
                raise SpecError(f"{name} must be an integer")
        if not isinstance(self.threshold, (int, float)):
            raise SpecError("threshold must be a number")
        if self.max_pairs is not None and (
            not isinstance(self.max_pairs, int) or self.max_pairs < 1
        ):
            raise SpecError("max_pairs must be a positive integer")
        if not isinstance(self.n_simulations, int) or self.n_simulations < 1:
            raise SpecError("n_simulations must be a positive integer")
        if not isinstance(self.n_windows, int) or self.n_windows < 1:
            raise SpecError("n_windows must be a positive integer")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise SpecError("workers must be a positive integer")
        if self.chunk_size is not None and (
            not isinstance(self.chunk_size, int) or self.chunk_size < 1
        ):
            raise SpecError("chunk_size must be a positive integer")
        if not isinstance(self.slice, bool):
            raise SpecError("slice must be a boolean")
        if not isinstance(self.adaptive, bool):
            raise SpecError("adaptive must be a boolean")
        for name in ("decide_threshold", "null_threshold"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise SpecError(f"{name} must be a positive number")
        if self.null_threshold > self.decide_threshold:
            raise SpecError(
                "null_threshold must not exceed decide_threshold "
                "(the band between them stays undecided)"
            )
        if not isinstance(self.decide_chunks, int) or self.decide_chunks < 1:
            raise SpecError("decide_chunks must be a positive integer")
        if (
            not isinstance(self.min_null_samples, int)
            or self.min_null_samples < 1
        ):
            raise SpecError("min_null_samples must be a positive integer")
        if (
            not isinstance(self.max_budget_factor, (int, float))
            or self.max_budget_factor < 1.0
        ):
            raise SpecError("max_budget_factor must be at least 1.0")
        if not isinstance(self.max_enum_bits, int) or not (
            1 <= self.max_enum_bits <= 40
        ):
            raise SpecError("max_enum_bits must be an integer in [1, 40]")
        if not isinstance(self.shard_lane_bits, int) or not (
            1 <= self.shard_lane_bits <= 32
        ):
            raise SpecError("shard_lane_bits must be an integer in [1, 32]")
        if (
            not isinstance(self.tenant, str)
            or not self.tenant
            or len(self.tenant) > 64
        ):
            raise SpecError(
                "tenant must be a non-empty string of at most 64 characters"
            )
        if self.priority not in _PRIORITIES:
            raise SpecError(
                f"priority must be one of {list(_PRIORITIES)}"
            )

    # ------------------------------------------------------- serialization

    def to_dict(self) -> Dict:
        """JSON-safe round-trip form; ``from_dict(to_dict())`` == self."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    # ----------------------------------------------------- cache identity

    def cache_params(self, netlist_hash: str) -> Dict:
        """The semantic identity of this spec's verdict.

        For non-adaptive specs this is exactly the pre-spec service's
        parameter dict, so existing cache keys remain valid byte for byte.
        Adaptive specs add an ``"adaptive"`` sub-object: the scheduler
        changes per-probe sample counts, so its parameters are semantic.
        Exact specs likewise add an ``"exact"`` sub-object carrying the
        enumeration budget (it decides which probes get verdicts); the
        shard size stays out -- sharded counts merge bit-identically.
        """
        params = {
            "netlist_hash": netlist_hash,
            "model": self.model,
            "n_simulations": self.n_simulations,
            "n_windows": self.n_windows,
            "fixed_secret": self.fixed_secret,
            "threshold": self.threshold,
            "mode": self.mode,
            "max_pairs": self.max_pairs,
            "pair_seed": self.pair_seed,
            "pair_offsets": list(self.pair_offsets),
            "seed": self.seed,
        }
        if self.adaptive:
            params["adaptive"] = {
                name: getattr(self, name) for name in ADAPTIVE_FIELDS
            }
        if self.mode == "exact":
            params["exact"] = {
                name: getattr(self, name) for name in EXACT_FIELDS
            }
        return params

    def cache_key(self, netlist_hash: str) -> str:
        """Canonical SHA-256 addressing this spec's verdict."""
        return canonical_key(self.cache_params(netlist_hash))

    # ------------------------------------------------------------ derived

    def adaptive_config(self):
        """The scheduler parameters, or ``None`` for uniform budgets."""
        if not self.adaptive:
            return None
        from repro.leakage.adaptive import AdaptiveConfig

        return AdaptiveConfig(
            decide_threshold=self.decide_threshold,
            null_threshold=self.null_threshold,
            decide_chunks=self.decide_chunks,
            min_null_samples=self.min_null_samples,
            max_budget_factor=self.max_budget_factor,
        )

    def campaign_config(
        self,
        checkpoint: Optional[str] = None,
        default_chunking: bool = False,
        time_budget: Optional[float] = None,
        on_budget: str = "truncate",
        early_stop: Optional[float] = None,
        stall_timeout: Optional[float] = None,
    ):
        """The :class:`CampaignConfig` this spec describes.

        ``default_chunking`` applies the service-side default chunk size
        when the spec did not request chunks (jobs always checkpoint, and
        the adaptive scheduler needs chunk boundaries to decide at).
        Execution extras that are not part of the spec -- checkpoint path,
        wall-clock budget, early stop -- ride in as keyword arguments.
        """
        from repro.leakage.campaign import CampaignConfig

        chunk = self.chunk_size
        if chunk is None and (default_chunking or self.adaptive):
            chunk = min(self.n_simulations, DEFAULT_CHUNK_SIZE)
        return CampaignConfig(
            n_simulations=self.n_simulations,
            n_windows=self.n_windows,
            fixed_secret=self.fixed_secret,
            threshold=self.threshold,
            chunk_size=chunk,
            checkpoint=checkpoint,
            time_budget=time_budget,
            on_budget=on_budget,
            early_stop=early_stop,
            mode=self.mode,
            max_pairs=self.max_pairs,
            pair_seed=self.pair_seed,
            pair_offsets=self.pair_offsets,
            workers=self.workers,
            adaptive=self.adaptive_config(),
            stall_timeout=stall_timeout,
        )


def canonical_key(params: Dict) -> str:
    """SHA-256 of the canonical JSON encoding of ``params``.

    Canonical means sorted keys and minimal separators, so the digest is
    invariant under dict ordering and whitespace -- the same parameters
    always address the same verdict.
    """
    text = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
