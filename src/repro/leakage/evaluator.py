"""The Monte-Carlo fixed-vs-random leakage evaluator.

This is the PROLEAD reproduction: it simulates the design under test with a
fixed-secret group and a random-secret group, resolves every probe under the
chosen extended probing model, and G-tests each probe class's observation
histogram between the groups.  Second-order (bivariate) evaluation tests the
*joint* observation of every pair of probe classes, as the paper does for
the second-order Kronecker design.

Sampling layout: lanes are independent traces; within a trace, observation
*windows* spaced further apart than the pipeline depth contribute additional
independent samples (inputs and randomness are i.i.d. per cycle, so the
pipeline forgets everything between windows).

Statistics: observations wider than ``hash_bits`` are bucketed through a
fixed mixing hash before testing.  A full contingency table over a very wide
observation is hopelessly sparse at practical sample sizes, which makes the
chi-square approximation of the G-test anti-conservative (our fixed-vs-fixed
null experiments show -log10(p) in the tens); bucketing bounds the table at
``2^hash_bits`` cells while preserving any distribution difference with
overwhelming probability.  The default of 10 bits keeps expected cell counts
comfortably large at the sample sizes used throughout (the G-test's null
behaviour degrades measurably once expected counts drop toward ~10).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.leakage.dut import DesignUnderTest
from repro.leakage.gtest import DEFAULT_THRESHOLD, g_test
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.leakage.report import LeakageReport, ProbeResult
from repro.leakage.traces import StimulusGenerator
from repro.netlist.simulate import BitslicedSimulator, Trace, unpack_lanes


def _mix_hash(keys: np.ndarray) -> np.ndarray:
    """SplitMix64-style bit mixer used for observation bucketing."""
    keys = keys.copy()
    keys ^= keys >> np.uint64(30)
    keys *= np.uint64(0xBF58476D1CE4E5B9)
    keys ^= keys >> np.uint64(27)
    keys *= np.uint64(0x94D049BB133111EB)
    keys ^= keys >> np.uint64(31)
    return keys


class LeakageEvaluator:
    """Fixed-vs-random evaluation of a design under a probing model."""

    def __init__(
        self,
        dut: DesignUnderTest,
        model: ProbingModel = ProbingModel.GLITCH,
        seed: int = 0,
        max_support_bits: int = 24,
        hash_bits: int = 10,
        observation: str = "tuple",
    ):
        if observation not in ("tuple", "hamming"):
            raise SimulationError(
                "observation must be 'tuple' or 'hamming'"
            )
        self.dut = dut
        self.model = model
        self.seed = seed
        self.max_support_bits = max_support_bits
        self.hash_bits = hash_bits
        # "hamming" observes only the Hamming weight of the extended probe
        # (PROLEAD's compact power-model mode): a weaker adversary, useful
        # to gauge how visible a leak is to plain HW power models.
        self.observation = observation
        self.probe_classes, self.skipped_classes = extract_probe_classes(
            dut.netlist, model, max_support_bits=max_support_bits
        )

    # ------------------------------------------------------------ scheduling

    def _schedule(
        self, n_windows: int, margin: int = 0
    ) -> Tuple[List[int], int]:
        """Observation cycles and total cycle count."""
        # Warm-up covers the pipeline fill plus derived-mask register chains
        # (and any backward probe offset); windows are spaced by more than
        # the pipeline depth so their observations are independent.
        warmup = self.dut.latency + 4 + margin
        stride = self.dut.latency + 4 + margin
        eval_cycles = [warmup + w * stride for w in range(n_windows)]
        n_cycles = eval_cycles[-1] + 1
        return eval_cycles, n_cycles

    def _record_cycles(self, eval_cycles: Iterable[int]) -> set:
        needed = set()
        for t in eval_cycles:
            for back in self.model.cycles_back:
                needed.add(t - back)
        return needed

    # ------------------------------------------------------------- execution

    def _run_traces(
        self, fixed_secret: int, n_lanes: int, n_windows: int
    ) -> Tuple[Trace, Trace, List[int]]:
        """Simulate the fixed and random groups; returns both traces."""
        eval_cycles, n_cycles = self._schedule(n_windows)
        record_cycles = self._record_cycles(eval_cycles)
        generator = StimulusGenerator(self.dut, (n_lanes + 63) // 64)
        seeds = np.random.SeedSequence(self.seed).spawn(2)
        rng_fixed = np.random.default_rng(seeds[0])
        rng_random = np.random.default_rng(seeds[1])

        trace_fixed = BitslicedSimulator(self.dut.netlist, n_lanes).run(
            generator.fixed(fixed_secret, rng_fixed),
            n_cycles,
            record_cycles=record_cycles,
        )
        trace_random = BitslicedSimulator(self.dut.netlist, n_lanes).run(
            generator.random(rng_random),
            n_cycles,
            record_cycles=record_cycles,
        )
        return trace_fixed, trace_random, eval_cycles

    def _raw_keys(
        self,
        trace: Trace,
        probe_class: ProbeClass,
        eval_cycles: List[int],
    ) -> np.ndarray:
        """Integer-encode the probe observation per lane per window."""
        n_lanes = trace.n_lanes
        hamming = self.observation == "hamming"
        keys_per_window = []
        for t in eval_cycles:
            key = np.zeros(n_lanes, dtype=np.uint64)
            position = 0
            for back in probe_class.cycles_back:
                cycle = t - back
                for net in probe_class.support:
                    bits = unpack_lanes(trace.words(cycle, net), n_lanes)
                    if hamming:
                        key += bits
                    else:
                        key |= bits.astype(np.uint64) << np.uint64(position)
                        position += 1
            keys_per_window.append(key)
        return np.concatenate(keys_per_window)

    def _bucket(self, keys: np.ndarray, observation_bits: int) -> np.ndarray:
        if self.observation == "hamming":
            return keys  # at most observation_bits + 1 categories
        if observation_bits > self.hash_bits:
            return _mix_hash(keys) >> np.uint64(64 - self.hash_bits)
        return keys

    # ----------------------------------------------------------- first order

    def evaluate(
        self,
        fixed_secret: int = 0,
        n_simulations: int = 100_000,
        n_windows: int = 1,
        threshold: float = DEFAULT_THRESHOLD,
        probe_classes: Optional[List[ProbeClass]] = None,
    ) -> LeakageReport:
        """Run the first-order fixed-vs-random test and return a report.

        ``n_simulations`` is the per-group sample count; it is split into
        ``n_windows`` observation windows over ``n_simulations / n_windows``
        lanes.
        """
        if n_windows < 1:
            raise SimulationError("n_windows must be at least 1")
        n_lanes = max(1, n_simulations // n_windows)
        trace_fixed, trace_random, eval_cycles = self._run_traces(
            fixed_secret, n_lanes, n_windows
        )

        classes = probe_classes if probe_classes is not None else self.probe_classes
        netlist = self.dut.netlist
        report = self._new_report(fixed_secret, n_lanes * n_windows, threshold)
        for probe_class in classes:
            keys_fixed = self._bucket(
                self._raw_keys(trace_fixed, probe_class, eval_cycles),
                probe_class.observation_bits,
            )
            keys_random = self._bucket(
                self._raw_keys(trace_random, probe_class, eval_cycles),
                probe_class.observation_bits,
            )
            outcome = g_test(keys_fixed, keys_random)
            report.results.append(
                ProbeResult(
                    probe_names=probe_class.member_names(netlist),
                    support_names=tuple(probe_class.support_names(netlist)),
                    n_samples=outcome.n_fixed + outcome.n_random,
                    g_statistic=outcome.g_statistic,
                    dof=outcome.dof,
                    mlog10p=outcome.mlog10p,
                    leaking=outcome.is_leaking(threshold),
                )
            )
        return report

    # ---------------------------------------------------------- second order

    def evaluate_pairs(
        self,
        fixed_secret: int = 0,
        n_simulations: int = 100_000,
        n_windows: int = 1,
        threshold: float = DEFAULT_THRESHOLD,
        max_pairs: Optional[int] = None,
        pair_seed: int = 1,
        pair_offsets: Sequence[int] = (0,),
    ) -> LeakageReport:
        """Second-order (bivariate) evaluation over pairs of probe classes.

        Tests the joint observation of every unordered pair of probe classes
        (optionally a deterministic random subset of ``max_pairs``), which is
        how PROLEAD's multivariate mode detects second-order leakage in the
        3-share Kronecker design.  ``pair_offsets`` places the second probe
        of a pair those many cycles *earlier* than the first, covering
        multivariate leakage across clock cycles (offset 0 is the univariate
        same-cycle case).
        """
        if n_windows < 1:
            raise SimulationError("n_windows must be at least 1")
        offsets = sorted(set(pair_offsets))
        if offsets and min(offsets) < 0:
            raise SimulationError("pair offsets must be non-negative")
        n_lanes = max(1, n_simulations // n_windows)
        eval_cycles, n_cycles = self._schedule(
            n_windows, margin=max(offsets, default=0)
        )
        record_cycles = set()
        for delta in offsets:
            record_cycles |= self._record_cycles(
                [t - delta for t in eval_cycles]
            )
        record_cycles |= self._record_cycles(eval_cycles)
        generator = StimulusGenerator(self.dut, (n_lanes + 63) // 64)
        seeds = np.random.SeedSequence(self.seed).spawn(2)
        trace_fixed = BitslicedSimulator(self.dut.netlist, n_lanes).run(
            generator.fixed(fixed_secret, np.random.default_rng(seeds[0])),
            n_cycles,
            record_cycles=record_cycles,
        )
        trace_random = BitslicedSimulator(self.dut.netlist, n_lanes).run(
            generator.random(np.random.default_rng(seeds[1])),
            n_cycles,
            record_cycles=record_cycles,
        )

        classes = self.probe_classes
        pairs = list(itertools.combinations(range(len(classes)), 2))
        if max_pairs is not None and len(pairs) > max_pairs:
            rng = np.random.default_rng(pair_seed)
            chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
            pairs = [pairs[i] for i in sorted(chosen)]

        raw_fixed: Dict[Tuple[int, int], np.ndarray] = {}
        raw_random: Dict[Tuple[int, int], np.ndarray] = {}

        def raw(group_cache, trace, index, delta):
            key = (index, delta)
            if key not in group_cache:
                cycles = [t - delta for t in eval_cycles]
                group_cache[key] = self._raw_keys(
                    trace, classes[index], cycles
                )
            return group_cache[key]

        netlist = self.dut.netlist
        report = self._new_report(fixed_secret, n_lanes * n_windows, threshold)
        for i, j in pairs:
            bits_i = classes[i].observation_bits
            bits_j = classes[j].observation_bits
            for delta in offsets:
                keys_fixed = self._combine(
                    raw(raw_fixed, trace_fixed, i, 0),
                    raw(raw_fixed, trace_fixed, j, delta),
                    bits_i,
                    bits_j,
                )
                keys_random = self._combine(
                    raw(raw_random, trace_random, i, 0),
                    raw(raw_random, trace_random, j, delta),
                    bits_i,
                    bits_j,
                )
                outcome = g_test(keys_fixed, keys_random)
                suffix = f" @-{delta}" if delta else ""
                report.results.append(
                    ProbeResult(
                        probe_names=(
                            classes[i].member_names(netlist, limit=1)
                            + " x "
                            + classes[j].member_names(netlist, limit=1)
                            + suffix
                        ),
                        support_names=(),
                        n_samples=outcome.n_fixed + outcome.n_random,
                        g_statistic=outcome.g_statistic,
                        dof=outcome.dof,
                        mlog10p=outcome.mlog10p,
                        leaking=outcome.is_leaking(threshold),
                    )
                )
        return report

    def _combine(
        self,
        keys_a: np.ndarray,
        keys_b: np.ndarray,
        bits_a: int,
        bits_b: int,
    ) -> np.ndarray:
        """Joint observation key of two probes, bucketed as needed."""
        total_bits = bits_a + bits_b
        if total_bits <= 63:
            joint = keys_a | (keys_b << np.uint64(bits_a))
        else:
            # Injective packing impossible; mix both into one word.  Hash
            # collisions only ever merge table cells (conservative).
            joint = _mix_hash(keys_a) ^ (
                _mix_hash(keys_b ^ np.uint64(0xA5A5A5A5A5A5A5A5))
            )
        return self._bucket(joint, total_bits)

    # -------------------------------------------------------------- helpers

    def _new_report(
        self, fixed_secret: int, n_samples: int, threshold: float
    ) -> LeakageReport:
        netlist = self.dut.netlist
        return LeakageReport(
            design=self.dut.describe(),
            model=self.model.description,
            fixed_secret=fixed_secret,
            n_simulations=n_samples,
            threshold=threshold,
            skipped_probes=[
                pc.member_names(netlist) for pc in self.skipped_classes
            ],
        )

    def probe_class_for_net(self, net: int) -> ProbeClass:
        """Find the probe class containing a given net."""
        for probe_class in self.probe_classes:
            if net in probe_class.members:
                return probe_class
        for probe_class in self.skipped_classes:
            if net in probe_class.members:
                raise SimulationError(
                    "probe class for net was skipped (support too wide)"
                )
        raise SimulationError(f"no probe class contains net {net}")
