"""The Monte-Carlo fixed-vs-random leakage evaluator.

This is the PROLEAD reproduction: it simulates the design under test with a
fixed-secret group and a random-secret group, resolves every probe under the
chosen extended probing model, and G-tests each probe class's observation
histogram between the groups.  Second-order (bivariate) evaluation tests the
*joint* observation of every pair of probe classes, as the paper does for
the second-order Kronecker design.

Sampling layout: lanes are independent traces; within a trace, observation
*windows* spaced further apart than the pipeline depth contribute additional
independent samples (inputs and randomness are i.i.d. per cycle, so the
pipeline forgets everything between windows).

Memory layout: lanes are partitioned into fixed-size *blocks* of
``BLOCK_LANES`` lanes.  Each block draws its stimulus from its own RNG
stream derived from ``np.random.SeedSequence(seed, spawn_key=(group,
block))``, so any block is reproducible in isolation and the sampled values
do not depend on how blocks are batched into processing chunks.  Per-block
observations are reduced into a :class:`HistogramAccumulator` immediately,
which bounds peak memory by the block size instead of the total simulation
count and lets :mod:`repro.leakage.campaign` checkpoint and resume long
runs: the G-test only ever sees the accumulated contingency table, so a
chunked run is bit-identical to a single pass.

Statistics: observations wider than ``hash_bits`` are bucketed through a
fixed mixing hash before testing.  A full contingency table over a very wide
observation is hopelessly sparse at practical sample sizes, which makes the
chi-square approximation of the G-test anti-conservative (our fixed-vs-fixed
null experiments show -log10(p) in the tens); bucketing bounds the table at
``2^hash_bits`` cells while preserving any distribution difference with
overwhelming probability.  The default of 10 bits keeps expected cell counts
comfortably large at the sample sizes used throughout (the G-test's null
behaviour degrades measurably once expected counts drop toward ~10).
"""

from __future__ import annotations

import itertools
import warnings
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import engines as engine_registry
from repro.errors import SimulationError
from repro.leakage.dut import DesignUnderTest
from repro.leakage.gtest import DEFAULT_THRESHOLD, GTestResult, g_test_from_counts
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.leakage.report import LeakageReport, ProbeResult
from repro.leakage.traces import StimulusGenerator
from repro.netlist.compile import netlist_content_hash
from repro.netlist.simulate import Trace, unpack_lanes

#: Lanes per sampling block (64 uint64 words).  The RNG stream of a block is
#: a pure function of (seed, group, block index), so evaluation results are
#: invariant under any chunking of blocks -- changing this constant changes
#: the sampled stimulus and therefore the concrete tables.
BLOCK_LANES = 4096


def _mix_hash(keys: np.ndarray) -> np.ndarray:
    """SplitMix64-style bit mixer used for observation bucketing."""
    keys = keys.copy()
    keys ^= keys >> np.uint64(30)
    keys *= np.uint64(0xBF58476D1CE4E5B9)
    keys ^= keys >> np.uint64(27)
    keys *= np.uint64(0x94D049BB133111EB)
    keys ^= keys >> np.uint64(31)
    return keys


class HistogramAccumulator:
    """Incrementally accumulated fixed/random contingency tables.

    Tables are keyed by a string table id (one per probe class, or one per
    probe pair and offset) and map integer observation keys to
    ``[fixed, random]`` counts.  Accumulation commutes and associates, so
    every partition of the simulations into blocks yields the same tables
    -- the property that makes chunked, checkpointed campaigns bit-identical
    to single-pass evaluation (the G-test only sees the table).
    """

    GROUP_FIXED = 0
    GROUP_RANDOM = 1

    def __init__(self) -> None:
        self._tables: Dict[str, Dict[int, List[int]]] = {}

    #: largest observation key handled by the dense ``bincount`` fast path
    #: in :meth:`add` (bucketed observations are < 2^hash_bits anyway).
    _DENSE_KEY_LIMIT = 1 << 16

    def add(self, table_id: str, keys: np.ndarray, group: int) -> None:
        """Histogram ``keys`` into one table's column for ``group``."""
        if group not in (self.GROUP_FIXED, self.GROUP_RANDOM):
            raise SimulationError("group must be GROUP_FIXED or GROUP_RANDOM")
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        key_max = int(keys.max())
        if key_max < self._DENSE_KEY_LIMIT:
            # O(n) bincount instead of O(n log n) sort-based unique; both
            # yield the same ascending (values, counts) pairs.
            dense = np.bincount(keys.astype(np.int64))
            values = np.nonzero(dense)[0].astype(np.uint64)
            counts = dense[values.astype(np.int64)]
        else:
            values, counts = np.unique(keys, return_counts=True)
        table = self._tables.setdefault(table_id, {})
        for value, count in zip(values.tolist(), counts.tolist()):
            cell = table.get(value)
            if cell is None:
                table[value] = cell = [0, 0]
            cell[group] += count

    def add_counts(
        self, table_id: str, counts: np.ndarray, group: int
    ) -> None:
        """Fold a dense count row (bin index == observation key) into a table.

        Produces exactly the table :meth:`add` builds from the raw key
        array the row was histogrammed from -- zero bins leave no entry
        -- so in-kernel count tables and python key arrays accumulate
        interchangeably.
        """
        if group not in (self.GROUP_FIXED, self.GROUP_RANDOM):
            raise SimulationError("group must be GROUP_FIXED or GROUP_RANDOM")
        counts = np.asarray(counts)
        values = np.nonzero(counts)[0]
        if values.size == 0:
            return
        table = self._tables.setdefault(table_id, {})
        for value, count in zip(
            values.tolist(), counts[values].tolist()
        ):
            cell = table.get(value)
            if cell is None:
                table[value] = cell = [0, 0]
            cell[group] += int(count)

    def merge(self, other: "HistogramAccumulator") -> None:
        """Fold another accumulator's tables into this one."""
        for table_id, table in other._tables.items():
            mine = self._tables.setdefault(table_id, {})
            for value, cell in table.items():
                acc = mine.get(value)
                if acc is None:
                    mine[value] = [cell[0], cell[1]]
                else:
                    acc[0] += cell[0]
                    acc[1] += cell[1]

    def table_ids(self) -> List[str]:
        """All table ids seen so far, sorted."""
        return sorted(self._tables)

    def counts(self, table_id: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(keys, fixed_counts, random_counts)`` sorted by observation key."""
        table = self._tables.get(table_id, {})
        keys = sorted(table)
        fixed = np.array([table[k][0] for k in keys], dtype=np.float64)
        random_ = np.array([table[k][1] for k in keys], dtype=np.float64)
        return np.array(keys, dtype=np.uint64), fixed, random_

    def test(self, table_id: str, min_expected: float = 5.0) -> GTestResult:
        """G-test of one accumulated table."""
        _, fixed, random_ = self.counts(table_id)
        return g_test_from_counts(fixed, random_, min_expected)

    # -------------------------------------------------------- serialization

    def state_arrays(self) -> Tuple[List[str], Dict[str, np.ndarray]]:
        """Table ids plus numpy arrays for NPZ checkpointing."""
        ids = self.table_ids()
        arrays: Dict[str, np.ndarray] = {}
        for i, table_id in enumerate(ids):
            keys, fixed, random_ = self.counts(table_id)
            arrays[f"t{i}_keys"] = keys
            arrays[f"t{i}_counts"] = np.stack(
                [fixed.astype(np.int64), random_.astype(np.int64)]
            )
        return ids, arrays

    @classmethod
    def from_state(
        cls, ids: Sequence[str], arrays: Dict[str, np.ndarray]
    ) -> "HistogramAccumulator":
        """Rebuild an accumulator from :meth:`state_arrays` output."""
        acc = cls()
        for i, table_id in enumerate(ids):
            keys = arrays[f"t{i}_keys"]
            counts = arrays[f"t{i}_counts"]
            acc._tables[table_id] = {
                int(k): [int(f), int(r)]
                for k, f, r in zip(
                    keys.tolist(), counts[0].tolist(), counts[1].tolist()
                )
            }
        return acc


class LeakageEvaluator:
    """Fixed-vs-random evaluation of a design under a probing model."""

    def __init__(
        self,
        dut: DesignUnderTest,
        model: ProbingModel = ProbingModel.GLITCH,
        seed: int = 0,
        max_support_bits: int = 24,
        hash_bits: int = 10,
        observation: str = "tuple",
        block_lanes: int = BLOCK_LANES,
        engine: str = engine_registry.DEFAULT_ENGINE,
        slice_cones: bool = True,
    ):
        if observation not in ("tuple", "hamming"):
            raise SimulationError(
                "observation must be 'tuple' or 'hamming'"
            )
        if block_lanes < 64 or block_lanes % 64:
            raise SimulationError(
                "block_lanes must be a positive multiple of 64"
            )
        try:
            engine_registry.get_engine(engine)
        except engine_registry.EngineError as exc:
            raise SimulationError(str(exc)) from None
        self.dut = dut
        self.model = model
        self.seed = seed
        self.max_support_bits = max_support_bits
        self.hash_bits = hash_bits
        self.block_lanes = block_lanes
        # Any engine registered in repro.engines; all are bit-identical
        # (see tests/test_cross_engine.py), so the choice only trades
        # wall-clock.  Construction failures walk the registry's
        # degradation ladder (native -> compiled -> bitsliced) and are
        # recorded in :attr:`degradations`.
        self.engine = engine
        # Cone slicing restricts each simulated block to the sequential
        # fan-in cone of the currently-active probe supports (see
        # repro.netlist.slice).  The cone is closed under fan-in, so sliced
        # evaluation is bit-identical to full simulation -- the flag only
        # trades compile/cache work against per-cycle gate dispatches.
        self.slice_cones = slice_cones
        # "hamming" observes only the Hamming weight of the extended probe
        # (PROLEAD's compact power-model mode): a weaker adversary, useful
        # to gauge how visible a leak is to plain HW power models.
        self.observation = observation
        #: optional :class:`repro.chaos.FaultPlane` consulted at the
        #: "engine.compile" and "worker.block" sites.  ``None`` (the
        #: default) costs nothing; campaigns install a plane under chaos
        #: and it rides the evaluator pickle into worker processes.
        self.fault_plane = None
        #: graceful-degradation provenance: ladder steps this evaluator
        #: took (compiled kernel -> bitsliced reference), merged into
        #: :attr:`LeakageReport.degradations` by campaigns.
        self.degradations: List[Dict[str, str]] = []
        #: cumulative seconds per evaluation stage across every block this
        #: evaluator processed; campaigns snapshot it at chunk boundaries
        #: to attribute wall-clock (stimulus is folded into simulate on
        #: the python path, which stages stimulus inside ``run``).
        self.stage_seconds: Dict[str, float] = {
            "stimulus": 0.0, "simulate": 0.0,
            "extract": 0.0, "histogram": 0.0,
        }
        self.probe_classes, self.skipped_classes = extract_probe_classes(
            dut.netlist, model, max_support_bits=max_support_bits
        )

    # ------------------------------------------------------------ scheduling

    def _schedule(
        self, n_windows: int, margin: int = 0
    ) -> Tuple[List[int], int]:
        """Observation cycles and total cycle count."""
        # Warm-up covers the pipeline fill plus derived-mask register chains
        # (and any backward probe offset); windows are spaced by more than
        # the pipeline depth so their observations are independent.
        warmup = self.dut.latency + 4 + margin
        stride = self.dut.latency + 4 + margin
        eval_cycles = [warmup + w * stride for w in range(n_windows)]
        n_cycles = eval_cycles[-1] + 1
        return eval_cycles, n_cycles

    def _record_cycles(self, eval_cycles: Iterable[int]) -> set:
        needed = set()
        for t in eval_cycles:
            for back in self.model.cycles_back:
                needed.add(t - back)
        return needed

    # ------------------------------------------------------- lanes and blocks

    def n_lanes_for(self, n_simulations: int, n_windows: int) -> int:
        """Validated lane count for a per-group sample budget.

        ``n_simulations`` is split into ``n_windows`` observation windows
        over ``n_simulations // n_windows`` lanes; a budget smaller than the
        window count is a configuration error (the historical behaviour of
        silently clamping to one lane ran 100x the requested samples).
        """
        if n_windows < 1:
            raise SimulationError("n_windows must be at least 1")
        if n_simulations < 1:
            raise SimulationError("n_simulations must be at least 1")
        if n_simulations < n_windows:
            raise SimulationError(
                f"n_simulations ({n_simulations}) must be at least "
                f"n_windows ({n_windows})"
            )
        return n_simulations // n_windows

    def block_count(self, n_lanes: int) -> int:
        """Number of sampling blocks covering ``n_lanes`` lanes."""
        return (n_lanes + self.block_lanes - 1) // self.block_lanes

    def _block_lane_count(self, n_lanes: int, block: int) -> int:
        """Lanes in one block (the last block may be partial)."""
        start = block * self.block_lanes
        return min(self.block_lanes, n_lanes - start)

    def _block_rng(self, group: int, block: int) -> np.random.Generator:
        """The block's private RNG stream, reproducible in isolation."""
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(group, block)
        )
        return np.random.default_rng(seq)

    def design_hash(self) -> str:
        """Content hash of the design's executable netlist structure.

        This is the leading component of the evaluation service's
        verdict-cache key: two evaluators with equal design hashes (and
        equal sampling parameters) produce bit-identical reports, however
        the designs were named or constructed.
        """
        return netlist_content_hash(self.dut.netlist)

    def _on_degrade(self, from_info, to_info, exc) -> None:
        """Record one rung of the engine degradation ladder permanently."""
        self.engine = to_info.name
        self.degradations.append(
            {
                "kind": f"engine_{to_info.name}",
                "detail": (
                    f"{from_info.name} engine unavailable ({exc}); "
                    f"continuing on the bit-identical {to_info.name} "
                    "engine"
                ),
            }
        )
        warnings.warn(
            f"{from_info.name} simulation engine failed ({exc}); "
            f"degrading to the {to_info.name} engine with identical "
            "results",
            RuntimeWarning,
            stacklevel=4,
        )

    def _make_simulator(
        self,
        lane_count: int,
        keep_nets: Optional[Sequence[int]] = None,
        record_nets: Optional[Sequence[str]] = None,
    ):
        """Simulator instance for the configured engine.

        An engine construction failure (no C toolchain for ``native``, a
        compiled-kernel failure, or an injected "engine.native_build" /
        "engine.compile" chaos fault) degrades this evaluator permanently
        down the registry's ladder (native -> compiled -> bitsliced)
        instead of failing the campaign: the engines are bit-identical
        (tests/test_cross_engine.py), so the verdict is unchanged and
        only the provenance records the slower path.
        """
        plane = self.fault_plane
        sim, info = engine_registry.build_simulator(
            self.engine,
            self.dut.netlist,
            lane_count,
            keep_nets=keep_nets,
            record_nets=record_nets,
            decide=plane.decide if plane is not None else None,
            on_degrade=self._on_degrade,
        )
        return sim

    def _simulate_block(
        self,
        fixed_secret: int,
        lane_count: int,
        block: int,
        n_cycles: int,
        record_cycles: set,
        keep_nets: Optional[Sequence[int]] = None,
        record_nets: Optional[Sequence[int]] = None,
    ) -> Tuple[Trace, Trace]:
        """Simulate both groups for one sampling block.

        The stimulus generator always drives *every* primary input with the
        same RNG stream regardless of ``keep_nets``; a sliced simulator just
        ignores inputs outside its cone.  That keeps sliced and unsliced
        runs sampling identical bits.
        """
        generator = StimulusGenerator(self.dut, (lane_count + 63) // 64)
        trace_fixed = self._make_simulator(
            lane_count, keep_nets, record_nets=record_nets
        ).run(
            generator.fixed(
                fixed_secret, self._block_rng(HistogramAccumulator.GROUP_FIXED, block)
            ),
            n_cycles,
            record_nets=record_nets,
            record_cycles=record_cycles,
        )
        trace_random = self._make_simulator(
            lane_count, keep_nets, record_nets=record_nets
        ).run(
            generator.random(
                self._block_rng(HistogramAccumulator.GROUP_RANDOM, block)
            ),
            n_cycles,
            record_nets=record_nets,
            record_cycles=record_cycles,
        )
        return trace_fixed, trace_random

    # ---------------------------------------------------------- cone slicing

    def _slice_roots(
        self,
        classes: Sequence[ProbeClass],
        pairs: Sequence[Tuple[int, int]],
    ) -> List[int]:
        """Union stable support of a probe selection (slice root nets)."""
        roots: set = set()
        for probe_class in classes:
            roots.update(probe_class.support)
        all_classes = self.probe_classes
        for i, j in pairs:
            roots.update(all_classes[i].support)
            roots.update(all_classes[j].support)
        return sorted(roots)

    def slice_info(
        self,
        class_indices: Optional[Sequence[int]] = None,
        pairs: Sequence[Tuple[int, int]] = (),
    ) -> Optional[Dict[str, object]]:
        """Slice identity and size for a probe selection, or None.

        Returns ``{"key": ..., "stats": ...}`` describing the sliced
        program the selection would simulate (``None`` when slicing is
        disabled or the selection is empty).  The campaign driver uses the
        key to detect adaptive re-slices at chunk boundaries and the stats
        for ``program_sliced`` telemetry.
        """
        if not self.slice_cones:
            return None
        classes = (
            list(self.probe_classes)
            if class_indices is None
            else [self.probe_classes[i] for i in class_indices]
        )
        roots = self._slice_roots(classes, pairs)
        if not roots:
            return None
        from repro.netlist.slice import slice_key, slice_stats

        return {
            "key": slice_key(self.dut.netlist, roots),
            "stats": slice_stats(self.dut.netlist, roots).to_dict(),
        }

    # --------------------------------------------------------- key extraction

    def _raw_keys(
        self,
        trace: Trace,
        probe_class: ProbeClass,
        eval_cycles: List[int],
        bit_cache: Optional[Dict[Tuple[int, int], np.ndarray]] = None,
    ) -> np.ndarray:
        """Integer-encode the probe observation per lane per window.

        ``bit_cache`` (keyed by ``(cycle, net)``) shares the unpacked,
        uint64-widened per-lane bits of a stable net across every probe
        class that observes it -- probe supports overlap heavily, so batched
        evaluation unpacks each recorded net once per block instead of once
        per class.
        """
        n_lanes = trace.n_lanes
        hamming = self.observation == "hamming"
        keys_per_window = []
        for t in eval_cycles:
            key = np.zeros(n_lanes, dtype=np.uint64)
            position = 0
            for back in probe_class.cycles_back:
                cycle = t - back
                for net in probe_class.support:
                    wide = (
                        None if bit_cache is None
                        else bit_cache.get((cycle, net))
                    )
                    if wide is None:
                        wide = unpack_lanes(
                            trace.words(cycle, net), n_lanes
                        ).astype(np.uint64)
                        if bit_cache is not None:
                            bit_cache[(cycle, net)] = wide
                    if hamming:
                        key += wide
                    else:
                        key |= wide << np.uint64(position)
                        position += 1
            keys_per_window.append(key)
        return np.concatenate(keys_per_window)

    def _bucket(self, keys: np.ndarray, observation_bits: int) -> np.ndarray:
        if self.observation == "hamming":
            return keys  # at most observation_bits + 1 categories
        if observation_bits > self.hash_bits:
            return _mix_hash(keys) >> np.uint64(64 - self.hash_bits)
        return keys

    # --------------------------------------------------- unified entry point

    def accumulate(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int = 0,
        n_lanes: Optional[int] = None,
        n_windows: int = 1,
        *,
        spec=None,
        classes: Optional[Sequence[ProbeClass]] = None,
        class_indices: Optional[Sequence[int]] = None,
        pairs: Sequence[Tuple[int, int]] = (),
        pair_offsets: Sequence[int] = (0,),
        blocks: Optional[Iterable[int]] = None,
        batched: bool = True,
    ) -> None:
        """Accumulate observations for any probe selection into ``acc``.

        The single public accumulation entry point (the former
        ``accumulate_first_order`` / ``accumulate_batched`` pair was
        removed after its deprecation cycle).  Per block both groups are
        simulated a
        single time, and all first-order classes (table ids ``c<i>``) plus
        all probe-pair tables (``p<i>:<j>:<delta>``, indices into the
        evaluator's own probe classes) are evaluated against the same
        recorded trace.  Raw per-class observation keys are computed once
        per (class, offset) and reused across every pair that touches the
        class.

        Probe selection, in precedence order:

        * ``spec`` -- an :class:`repro.spec.EvaluationSpec` (anything with
          its sampling attributes); supplies ``fixed_secret``, ``n_lanes``
          (from its ``n_simulations``/``n_windows``), ``pair_offsets``, and
          -- for modes ``pairs``/``both`` -- the deterministic pair
          selection, unless explicitly overridden.
        * ``class_indices`` -- indices into the evaluator's own probe
          classes; table ids keep those indices (``c<i>``), which is what
          lets the adaptive scheduler prune classes mid-campaign without
          remapping accumulated tables.
        * ``classes`` -- explicit :class:`ProbeClass` objects (table ids by
          enumeration order); ``None`` selects every probe class, ``()``
          runs pairs only.

        With ``pair_offsets=(0,)`` (or no pairs) the observation schedule
        -- and therefore every sampled stimulus bit -- is identical to a
        first-order-only run, so batched tables are bit-identical to
        running the modes separately.  A non-zero offset lengthens the
        warm-up margin for the whole batch, which shifts the first-order
        observation cycles relative to a dedicated margin-0 run (same
        distribution, different samples).  ``batched=False`` disables
        shared-trace batching and processes each probe set in its own pass
        over the blocks -- same tables, one simulation per probe set; it
        exists to measure exactly what batching saves.
        """
        if spec is not None:
            fixed_secret = spec.fixed_secret
            n_windows = spec.n_windows
            if n_lanes is None:
                n_lanes = self.n_lanes_for(spec.n_simulations, n_windows)
            pair_offsets = tuple(spec.pair_offsets)
            if spec.mode in ("pairs", "both") and not pairs:
                pairs = self.select_pairs(spec.max_pairs, spec.pair_seed)
            if spec.mode == "pairs" and classes is None:
                classes = ()
        if n_lanes is None:
            raise SimulationError(
                "accumulate() needs n_lanes (or a spec to derive it from)"
            )
        if class_indices is not None:
            if classes is not None:
                raise SimulationError(
                    "pass either classes or class_indices, not both"
                )
            class_indices = list(class_indices)
            classes = [self.probe_classes[i] for i in class_indices]
        else:
            classes = (
                list(self.probe_classes)
                if classes is None
                else list(classes)
            )
            class_indices = list(range(len(classes)))
        pairs = list(pairs)
        if not batched:
            blocks = (
                list(blocks)
                if blocks is not None
                else list(range(self.block_count(n_lanes)))
            )
            for index, probe_class in zip(class_indices, classes):
                self._accumulate_batch(
                    acc, fixed_secret, n_lanes, n_windows,
                    [probe_class], [index], [], pair_offsets, blocks,
                )
            for pair in pairs:
                self._accumulate_batch(
                    acc, fixed_secret, n_lanes, n_windows,
                    [], [], [pair], pair_offsets, blocks,
                )
            return
        self._accumulate_batch(
            acc, fixed_secret, n_lanes, n_windows,
            classes, class_indices, pairs, pair_offsets, blocks,
        )

    def _accumulate_batch(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_lanes: int,
        n_windows: int,
        classes: Sequence[ProbeClass],
        class_indices: Sequence[int],
        pairs: Sequence[Tuple[int, int]],
        pair_offsets: Sequence[int],
        blocks: Optional[Iterable[int]],
    ) -> None:
        """Shared-trace core: one simulation per block, all probe sets."""
        if pairs:
            offsets, eval_cycles, n_cycles, record_cycles = (
                self._pair_schedule(n_windows, pair_offsets)
            )
        else:
            offsets = []
            eval_cycles, n_cycles = self._schedule(n_windows)
            record_cycles = self._record_cycles(eval_cycles)
        all_classes = self.probe_classes
        keep_nets = None
        record_nets = None
        if self.slice_cones:
            roots = self._slice_roots(classes, pairs)
            if not roots:
                # Nothing observes anything: no tables would be touched,
                # so skipping the simulation entirely is bit-identical.
                return
            keep_nets = roots
            record_nets = roots
        if blocks is None:
            blocks = range(self.block_count(n_lanes))
        stage = self.stage_seconds
        # In-kernel pipeline fast path: whole block (stimulus, simulate,
        # extract, histogram) in C, folding ready-made count tables into
        # ``acc`` -- bit-identical to the python path below (same tables;
        # see tests/test_native_pipeline.py).  Applies to first-order
        # tuple observations on sliced cones under the native engine;
        # anything else (pairs, hamming, very wide hash_bits, missing
        # toolchain) runs the python path, and a mid-campaign failure
        # degrades per evaluator, re-running the failed block in python.
        use_pipeline = (
            not pairs
            and bool(classes)
            and self.observation == "tuple"
            and self.hash_bits <= 16
            and record_nets is not None
            and self._pipeline_supported()
        )
        pipeline_tests = None
        pipeline_sims: Dict[int, object] = {}
        for block in blocks:
            lane_count = self._block_lane_count(n_lanes, block)
            if use_pipeline:
                try:
                    if pipeline_tests is None:
                        pipeline_tests = self._count_specs(
                            classes, eval_cycles
                        )
                    self._pipeline_block(
                        acc, fixed_secret, lane_count, block, n_cycles,
                        record_cycles, keep_nets, record_nets,
                        class_indices, pipeline_tests, pipeline_sims,
                    )
                    continue
                except SimulationError as exc:
                    self.degradations.append(
                        {
                            "kind": "pipeline_python",
                            "detail": (
                                f"in-kernel pipeline failed ({exc}); "
                                "continuing on the bit-identical python "
                                "extraction path"
                            ),
                        }
                    )
                    use_pipeline = False
            t0 = perf_counter()
            trace_fixed, trace_random = self._simulate_block(
                fixed_secret, lane_count, block, n_cycles, record_cycles,
                keep_nets=keep_nets, record_nets=record_nets,
            )
            stage["simulate"] += perf_counter() - t0
            # Per-group memoization shared by every probe set this block:
            # raw keys per (class, offset), unpacked bits per (cycle, net).
            raw_fixed: Dict[Tuple[ProbeClass, int], np.ndarray] = {}
            raw_random: Dict[Tuple[ProbeClass, int], np.ndarray] = {}
            bits_fixed: Dict[Tuple[int, int], np.ndarray] = {}
            bits_random: Dict[Tuple[int, int], np.ndarray] = {}

            def raw(group_cache, bit_cache, trace, probe_class, delta):
                key = (probe_class, delta)
                if key not in group_cache:
                    cycles = (
                        [t - delta for t in eval_cycles]
                        if delta
                        else eval_cycles
                    )
                    t0 = perf_counter()
                    group_cache[key] = self._raw_keys(
                        trace, probe_class, cycles, bit_cache=bit_cache
                    )
                    stage["extract"] += perf_counter() - t0
                return group_cache[key]

            for index, probe_class in zip(class_indices, classes):
                keys_fixed = self._bucket(
                    raw(raw_fixed, bits_fixed, trace_fixed, probe_class, 0),
                    probe_class.observation_bits,
                )
                keys_random = self._bucket(
                    raw(raw_random, bits_random, trace_random, probe_class, 0),
                    probe_class.observation_bits,
                )
                t0 = perf_counter()
                acc.add(f"c{index}", keys_fixed, HistogramAccumulator.GROUP_FIXED)
                acc.add(f"c{index}", keys_random, HistogramAccumulator.GROUP_RANDOM)
                stage["histogram"] += perf_counter() - t0

            for i, j in pairs:
                bits_i = all_classes[i].observation_bits
                bits_j = all_classes[j].observation_bits
                for delta in offsets:
                    keys_fixed = self._combine(
                        raw(raw_fixed, bits_fixed, trace_fixed,
                            all_classes[i], 0),
                        raw(raw_fixed, bits_fixed, trace_fixed,
                            all_classes[j], delta),
                        bits_i,
                        bits_j,
                    )
                    keys_random = self._combine(
                        raw(raw_random, bits_random, trace_random,
                            all_classes[i], 0),
                        raw(raw_random, bits_random, trace_random,
                            all_classes[j], delta),
                        bits_i,
                        bits_j,
                    )
                    table_id = f"p{i}:{j}:{delta}"
                    t0 = perf_counter()
                    acc.add(
                        table_id, keys_fixed, HistogramAccumulator.GROUP_FIXED
                    )
                    acc.add(
                        table_id, keys_random, HistogramAccumulator.GROUP_RANDOM
                    )
                    stage["histogram"] += perf_counter() - t0

    # ------------------------------------------------------ in-kernel blocks

    def _pipeline_supported(self) -> bool:
        """True when the in-kernel pipeline can run for this evaluator."""
        if self.engine != "native":
            return False
        try:
            from repro.netlist.native import pipeline_available
        except ImportError:
            return False
        return pipeline_available()

    def _count_specs(self, classes, eval_cycles):
        """One in-kernel CountSpec per probe class.

        Bit positions follow :meth:`_raw_keys` exactly (``for back in
        cycles_back: for net in support``); observation windows become
        segments of one count table (the histogram of a concatenation is
        the sum of per-window histograms); hashing mirrors
        :meth:`_bucket`'s ``observation_bits > hash_bits`` rule.
        """
        from repro.netlist.native import CountSpec

        specs = []
        for probe_class in classes:
            segments = []
            for t in eval_cycles:
                bits = []
                position = 0
                for back in probe_class.cycles_back:
                    for net in probe_class.support:
                        bits.append((t - back, net, position))
                        position += 1
                segments.append(tuple(bits))
            hashed = probe_class.observation_bits > self.hash_bits
            key_bits = (
                self.hash_bits if hashed else probe_class.observation_bits
            )
            specs.append(
                CountSpec(tuple(segments), hashed, 1 << key_bits)
            )
        return specs

    def _pipeline_block(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        lane_count: int,
        block: int,
        n_cycles: int,
        record_cycles: set,
        keep_nets: Sequence[int],
        record_nets: Sequence[int],
        class_indices: Sequence[int],
        tests,
        sims: Dict[int, object],
    ) -> None:
        """One sampling block entirely in the native kernel.

        The stimulus plan is handed to C with its PCG64 snapshot (same
        stream as the python interpreter would consume; see
        ``repro.leakage.stimplan``), and the returned dense count tables
        fold into ``acc`` via :meth:`HistogramAccumulator.add_counts` --
        the accumulated tables are identical to the python path's.
        ``sims`` caches simulators by lane count (run_pipeline is
        stateless); raises :class:`SimulationError` for the caller to
        degrade on.
        """
        stage = self.stage_seconds
        sim = sims.get(lane_count)
        if sim is None:
            sim = self._make_simulator(
                lane_count, keep_nets, record_nets=record_nets
            )
            if not hasattr(sim, "run_pipeline"):
                raise SimulationError(
                    "resolved engine lacks the in-kernel pipeline"
                )
            sims[lane_count] = sim
        generator = StimulusGenerator(self.dut, (lane_count + 63) // 64)
        for group, plan in (
            (
                HistogramAccumulator.GROUP_FIXED,
                generator.fixed(
                    fixed_secret,
                    self._block_rng(
                        HistogramAccumulator.GROUP_FIXED, block
                    ),
                ),
            ),
            (
                HistogramAccumulator.GROUP_RANDOM,
                generator.random(
                    self._block_rng(
                        HistogramAccumulator.GROUP_RANDOM, block
                    )
                ),
            ),
        ):
            counts, timings = sim.run_pipeline(
                plan, n_cycles, record_nets, record_cycles,
                tests, self.hash_bits,
            )
            for name, seconds in timings.items():
                stage[name] += seconds
            t0 = perf_counter()
            for index, row in zip(class_indices, counts):
                acc.add_counts(f"c{index}", row, group)
            stage["histogram"] += perf_counter() - t0

    # ----------------------------------------------------------- first order

    def first_order_report(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_samples: int,
        threshold: float = DEFAULT_THRESHOLD,
        classes: Optional[List[ProbeClass]] = None,
        status: str = "complete",
    ) -> LeakageReport:
        """G-test every accumulated probe-class table into a report."""
        classes = classes if classes is not None else self.probe_classes
        netlist = self.dut.netlist
        report = self._new_report(fixed_secret, n_samples, threshold, status)
        for index, probe_class in enumerate(classes):
            outcome = acc.test(f"c{index}")
            report.results.append(
                ProbeResult(
                    probe_names=probe_class.member_names(netlist),
                    support_names=tuple(probe_class.support_names(netlist)),
                    n_samples=outcome.n_fixed + outcome.n_random,
                    g_statistic=outcome.g_statistic,
                    dof=outcome.dof,
                    mlog10p=outcome.mlog10p,
                    leaking=outcome.is_leaking(threshold),
                )
            )
        return report

    def evaluate(
        self,
        fixed_secret: int = 0,
        n_simulations: int = 100_000,
        n_windows: int = 1,
        threshold: float = DEFAULT_THRESHOLD,
        probe_classes: Optional[List[ProbeClass]] = None,
    ) -> LeakageReport:
        """Run the first-order fixed-vs-random test and return a report.

        ``n_simulations`` is the per-group sample count; it is split into
        ``n_windows`` observation windows over ``n_simulations / n_windows``
        lanes.
        """
        n_lanes = self.n_lanes_for(n_simulations, n_windows)
        acc = HistogramAccumulator()
        self.accumulate(
            acc, fixed_secret, n_lanes, n_windows, classes=probe_classes
        )
        return self.first_order_report(
            acc,
            fixed_secret,
            n_lanes * n_windows,
            threshold,
            classes=probe_classes,
        )

    # ---------------------------------------------------------- second order

    def select_pairs(
        self, max_pairs: Optional[int] = None, pair_seed: int = 1
    ) -> List[Tuple[int, int]]:
        """Deterministic (sub)set of unordered probe-class index pairs."""
        pairs = list(itertools.combinations(range(len(self.probe_classes)), 2))
        if max_pairs is not None and len(pairs) > max_pairs:
            rng = np.random.default_rng(pair_seed)
            chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
            pairs = [pairs[i] for i in sorted(chosen)]
        return pairs

    def _pair_schedule(
        self, n_windows: int, pair_offsets: Sequence[int]
    ) -> Tuple[List[int], List[int], int, set]:
        offsets = sorted(set(pair_offsets))
        if offsets and min(offsets) < 0:
            raise SimulationError("pair offsets must be non-negative")
        eval_cycles, n_cycles = self._schedule(
            n_windows, margin=max(offsets, default=0)
        )
        record_cycles = set()
        for delta in offsets:
            record_cycles |= self._record_cycles(
                [t - delta for t in eval_cycles]
            )
        record_cycles |= self._record_cycles(eval_cycles)
        return offsets, eval_cycles, n_cycles, record_cycles

    def accumulate_pairs(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_lanes: int,
        n_windows: int,
        pairs: Sequence[Tuple[int, int]],
        pair_offsets: Sequence[int] = (0,),
        blocks: Optional[Iterable[int]] = None,
    ) -> None:
        """Simulate blocks and fold joint pair observations into ``acc``.

        Table ids are ``p<i>:<j>:<delta>``; the second probe of a pair is
        placed ``delta`` cycles earlier than the first.
        """
        self.accumulate(
            acc,
            fixed_secret,
            n_lanes,
            n_windows,
            classes=(),
            pairs=pairs,
            pair_offsets=pair_offsets,
            blocks=blocks,
        )

    def pairs_report(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_samples: int,
        pairs: Sequence[Tuple[int, int]],
        pair_offsets: Sequence[int] = (0,),
        threshold: float = DEFAULT_THRESHOLD,
        status: str = "complete",
    ) -> LeakageReport:
        """G-test every accumulated pair table into a report."""
        offsets = sorted(set(pair_offsets))
        classes = self.probe_classes
        netlist = self.dut.netlist
        report = self._new_report(fixed_secret, n_samples, threshold, status)
        for i, j in pairs:
            for delta in offsets:
                outcome = acc.test(f"p{i}:{j}:{delta}")
                suffix = f" @-{delta}" if delta else ""
                report.results.append(
                    ProbeResult(
                        probe_names=(
                            classes[i].member_names(netlist, limit=1)
                            + " x "
                            + classes[j].member_names(netlist, limit=1)
                            + suffix
                        ),
                        support_names=(),
                        n_samples=outcome.n_fixed + outcome.n_random,
                        g_statistic=outcome.g_statistic,
                        dof=outcome.dof,
                        mlog10p=outcome.mlog10p,
                        leaking=outcome.is_leaking(threshold),
                    )
                )
        return report

    def evaluate_pairs(
        self,
        fixed_secret: int = 0,
        n_simulations: int = 100_000,
        n_windows: int = 1,
        threshold: float = DEFAULT_THRESHOLD,
        max_pairs: Optional[int] = None,
        pair_seed: int = 1,
        pair_offsets: Sequence[int] = (0,),
    ) -> LeakageReport:
        """Second-order (bivariate) evaluation over pairs of probe classes.

        Tests the joint observation of every unordered pair of probe classes
        (optionally a deterministic random subset of ``max_pairs``), which is
        how PROLEAD's multivariate mode detects second-order leakage in the
        3-share Kronecker design.  ``pair_offsets`` places the second probe
        of a pair those many cycles *earlier* than the first, covering
        multivariate leakage across clock cycles (offset 0 is the univariate
        same-cycle case).
        """
        n_lanes = self.n_lanes_for(n_simulations, n_windows)
        pairs = self.select_pairs(max_pairs, pair_seed)
        acc = HistogramAccumulator()
        self.accumulate_pairs(
            acc, fixed_secret, n_lanes, n_windows, pairs, pair_offsets
        )
        return self.pairs_report(
            acc,
            fixed_secret,
            n_lanes * n_windows,
            pairs,
            pair_offsets,
            threshold,
        )

    def batched_report(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_samples: int,
        pairs: Sequence[Tuple[int, int]],
        pair_offsets: Sequence[int] = (0,),
        threshold: float = DEFAULT_THRESHOLD,
        status: str = "complete",
        classes: Optional[List[ProbeClass]] = None,
    ) -> LeakageReport:
        """Report over a batched accumulation: first-order then pair rows."""
        report = self.first_order_report(
            acc, fixed_secret, n_samples, threshold, classes=classes,
            status=status,
        )
        pair_report = self.pairs_report(
            acc, fixed_secret, n_samples, pairs, pair_offsets, threshold,
            status=status,
        )
        report.results.extend(pair_report.results)
        return report

    def _combine(
        self,
        keys_a: np.ndarray,
        keys_b: np.ndarray,
        bits_a: int,
        bits_b: int,
    ) -> np.ndarray:
        """Joint observation key of two probes, bucketed as needed."""
        total_bits = bits_a + bits_b
        if total_bits <= 63:
            joint = keys_a | (keys_b << np.uint64(bits_a))
        else:
            # Injective packing impossible; mix both into one word.  Hash
            # collisions only ever merge table cells (conservative).
            joint = _mix_hash(keys_a) ^ (
                _mix_hash(keys_b ^ np.uint64(0xA5A5A5A5A5A5A5A5))
            )
        return self._bucket(joint, total_bits)

    # -------------------------------------------------------------- helpers

    def _new_report(
        self,
        fixed_secret: int,
        n_samples: int,
        threshold: float,
        status: str = "complete",
    ) -> LeakageReport:
        netlist = self.dut.netlist
        return LeakageReport(
            design=self.dut.describe(),
            model=self.model.description,
            fixed_secret=fixed_secret,
            n_simulations=n_samples,
            threshold=threshold,
            skipped_probes=[
                pc.member_names(netlist) for pc in self.skipped_classes
            ],
            skipped_detail=self.skipped_detail(),
            status=status,
        )

    def skipped_detail(self) -> List[Dict]:
        """Budget detail for every probe class excluded from evaluation.

        One ``{"probe", "support_bits", "observation_bits", "budget"}``
        entry per skipped class, so reports and telemetry can say *how
        far* each probe is beyond ``max_support_bits`` instead of only
        counting them.
        """
        netlist = self.dut.netlist
        return [
            {
                "probe": pc.member_names(netlist),
                "support_bits": len(pc.support),
                "observation_bits": pc.observation_bits,
                "budget": self.max_support_bits,
            }
            for pc in self.skipped_classes
        ]

    def probe_class_for_net(self, net: int) -> ProbeClass:
        """Find the probe class containing a given net."""
        for probe_class in self.probe_classes:
            if net in probe_class.members:
                return probe_class
        for probe_class in self.skipped_classes:
            if net in probe_class.members:
                raise SimulationError(
                    "probe class for net was skipped (support too wide)"
                )
        raise SimulationError(f"no probe class contains net {net}")
