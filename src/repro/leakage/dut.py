"""The design-under-test protocol.

A :class:`DesignUnderTest` bundles a netlist with the *meaning* of its
primary inputs: which wires carry secret shares (re-shared with fresh
randomness every cycle), which carry fresh mask bits, and which carry fresh
mask bytes (uniform, or uniform non-zero as required by the multiplicative
conversion's ``R`` in Section II-C).  The leakage engines drive the inputs
according to this protocol, exactly like PROLEAD is configured with the
roles of the netlist ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import SimulationError
from repro.netlist.core import Netlist


@dataclass
class DesignUnderTest:
    """A netlist plus its input protocol and pipeline latency."""

    netlist: Netlist
    #: share_buses[i] is the bus (LSB-first net list) of share i of the
    #: secret; the XOR of all share buses equals the secret input.
    share_buses: List[List[int]]
    #: single-bit fresh-mask input nets (one fresh value per cycle).
    mask_bits: List[int] = field(default_factory=list)
    #: byte buses driven with uniform bytes each cycle (e.g. R').
    uniform_byte_buses: List[List[int]] = field(default_factory=list)
    #: byte buses driven with uniform *non-zero* bytes each cycle (e.g. R).
    nonzero_byte_buses: List[List[int]] = field(default_factory=list)
    #: pipeline latency in cycles from input to output.
    latency: int = 0
    #: output nets, LSB-first per share, for functional checks.
    output_share_buses: List[List[int]] = field(default_factory=list)
    #: free-form metadata (scheme name, interesting probe anchors...).
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        declared = set()
        for bus in self.share_buses:
            declared.update(bus)
        declared.update(self.mask_bits)
        for bus in self.uniform_byte_buses + self.nonzero_byte_buses:
            declared.update(bus)
        inputs = set(self.netlist.inputs)
        missing = declared - inputs
        if missing:
            names = [
                self.netlist.net_name(n)
                if 0 <= n < self.netlist.n_nets
                else f"<net {n} out of range>"
                for n in sorted(missing)
            ][:5]
            raise SimulationError(
                f"DUT protocol references non-input nets: {names}"
            )
        undriven = inputs - declared
        if undriven:
            names = [self.netlist.net_name(n) for n in sorted(undriven)][:5]
            raise SimulationError(
                f"primary inputs without a protocol role: {names}"
            )

    @property
    def n_shares(self) -> int:
        """Number of Boolean shares of the secret."""
        return len(self.share_buses)

    @property
    def secret_width(self) -> int:
        """Bit width of the secret input."""
        return len(self.share_buses[0])

    @property
    def n_fresh_mask_bits(self) -> int:
        """Fresh single-bit randomness per cycle (the paper's headline cost)."""
        return len(self.mask_bits)

    def share_bit(self, share: int, bit: int) -> int:
        """Net carrying bit ``bit`` of share ``share``."""
        return self.share_buses[share][bit]

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.netlist.name}: {self.n_shares} shares x "
            f"{self.secret_width} bits, {self.n_fresh_mask_bits} fresh mask "
            f"bits/cycle, {len(self.uniform_byte_buses)} uniform + "
            f"{len(self.nonzero_byte_buses)} non-zero mask bytes/cycle, "
            f"latency {self.latency}"
        )
