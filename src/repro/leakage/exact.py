"""Exact probe-distribution analysis by exhaustive randomness enumeration.

For a probe class whose observation depends on few enough random bits, the
joint distribution of the observation can be computed *exactly*, per secret
value, by enumerating every assignment of the contributing randomness
(sharing randomness, fresh mask bits, mask bytes) on simulator lanes.  A
probe is first-order secure iff that distribution is identical for every
secret -- the statement SILVER-style tools verify, stronger than any
sampled fixed-vs-random test and free of Monte-Carlo noise.

The engine:

1. computes the probe's stable support (per the probing model),
2. traces the support back through registers to ``(primary input, age)``
   variables (:func:`repro.netlist.topo.transitive_input_support`),
3. allocates enumeration bits for the free randomness and the *used* secret
   bits, mapping derived share inputs to ``other shares xor secret``,
4. simulates all ``2^k`` assignments at once (bitsliced lanes), and
5. compares the per-secret observation histograms for exact equality.

Designs whose probes exceed the enumeration budget raise
:class:`repro.errors.ExactAnalysisInfeasible` per probe and are reported as
skipped; the Monte-Carlo evaluator covers them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ExactAnalysisInfeasible
from repro.leakage.dut import DesignUnderTest
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.netlist.simulate import BitslicedSimulator, unpack_lanes
from repro.netlist.topo import transitive_input_support

Var = Tuple[object, int]  # (role key, age)


def _enum_pattern(index: int, n_words: int) -> np.ndarray:
    """Word array where lane L carries bit ``(L >> index) & 1``."""
    if index < 6:
        span = 1 << index
        base = np.uint64(0)
        lane_bits = np.arange(64, dtype=np.uint64)
        mask_bits = ((lane_bits >> np.uint64(index)) & np.uint64(1)).astype(
            np.uint64
        )
        for position in range(64):
            base |= mask_bits[position] << np.uint64(position)
        return np.full(n_words, base, dtype=np.uint64)
    word_index = np.arange(n_words, dtype=np.uint64)
    selected = (word_index >> np.uint64(index - 6)) & np.uint64(1)
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.where(selected.astype(bool), full, np.uint64(0))


@dataclass(frozen=True)
class ExactProbeResult:
    """Exact verdict for one probe class."""

    probe_names: str
    support_names: Tuple[str, ...]
    n_random_bits: int
    n_secret_bits: int
    leaking: bool
    #: total-variation distance between the fixed-secret distribution and
    #: the uniform-secret mixture (the PROLEAD fixed-vs-random contrast).
    tv_fixed_vs_random: float
    #: number of distinct per-secret distributions (1 == secure).
    n_distinct_distributions: int

    def format_row(self) -> str:
        """One summary line for this probe."""
        flag = "LEAK" if self.leaking else "ok"
        return (
            f"{flag:<5} rand_bits={self.n_random_bits:<3} "
            f"distinct={self.n_distinct_distributions:<4} "
            f"tv(fixed,rand)={self.tv_fixed_vs_random:.4f}  "
            f"probe={self.probe_names}"
        )


@dataclass
class ExactReport:
    """Outcome of an exact analysis sweep."""

    design: str
    model: str
    fixed_secret: int
    results: List[ExactProbeResult] = field(default_factory=list)
    infeasible: List[str] = field(default_factory=list)

    @property
    def leaking_results(self) -> List[ExactProbeResult]:
        """Probe results with secret-dependent distributions."""
        return [r for r in self.results if r.leaking]

    @property
    def passed(self) -> bool:
        """True when every analyzed probe is secret-independent."""
        return not self.leaking_results

    def format_summary(self, top: int = 10) -> str:
        """Human-readable report, leaking probes first."""
        verdict = "SECURE (exact)" if self.passed else "INSECURE (exact)"
        lines = [
            f"=== Exact analysis: {self.design} ===",
            f"  model:   {self.model}",
            f"  probes:  {len(self.results)} analyzed, "
            f"{len(self.infeasible)} beyond enumeration budget",
            f"  verdict: {verdict}",
        ]
        ranked = sorted(
            self.results, key=lambda r: (-r.leaking, -r.tv_fixed_vs_random)
        )
        for result in ranked[:top]:
            lines.append("  " + result.format_row())
        return "\n".join(lines)


class ExactAnalyzer:
    """Exhaustive per-secret distribution analysis of probe classes."""

    def __init__(
        self,
        dut: DesignUnderTest,
        model: ProbingModel = ProbingModel.GLITCH,
        max_enum_bits: int = 24,
        max_window: int = 12,
    ):
        self.dut = dut
        self.model = model
        self.max_enum_bits = max_enum_bits
        self.max_window = max_window
        self.probe_classes, self.wide_classes = extract_probe_classes(
            dut.netlist, model, max_support_bits=40
        )
        self._roles = self._build_role_map()

    # ------------------------------------------------------------- role map

    def _build_role_map(self) -> Dict[int, Tuple[str, object]]:
        """Map every primary input net to its protocol role."""
        roles: Dict[int, Tuple[str, object]] = {}
        dut = self.dut
        for share, bus in enumerate(dut.share_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("share", (share, bit))
        for net in dut.mask_bits:
            roles[net] = ("mask", net)
        for bus_index, bus in enumerate(dut.uniform_byte_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("uniform", (bus_index, bit))
        for bus_index, bus in enumerate(dut.nonzero_byte_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("nonzero", (bus_index, bit))
        return roles

    # -------------------------------------------------------- var collection

    def _collect_variables(self, probe_class: ProbeClass):
        """Free enumeration variables and used secret bits for a probe."""
        dut = self.dut
        raw_vars: Set[Tuple[int, int]] = set()
        for net in probe_class.support:
            base = transitive_input_support(
                dut.netlist, net, self.max_window
            )
            for back in probe_class.cycles_back:
                raw_vars.update((pi, age + back) for pi, age in base)

        share_groups: Set[Tuple[int, int]] = set()  # (bit, age)
        mask_vars: Set[Tuple[int, int]] = set()  # (net, age)
        uniform_vars: Set[Tuple[Tuple[int, int], int]] = set()
        nonzero_groups: Set[Tuple[int, int]] = set()  # (bus, age)
        for pi, age in raw_vars:
            kind, detail = self._roles[pi]
            if kind == "share":
                _, bit = detail
                share_groups.add((bit, age))
            elif kind == "mask":
                mask_vars.add((pi, age))
            elif kind == "uniform":
                uniform_vars.add((detail, age))
            else:  # nonzero
                bus_index, _ = detail
                nonzero_groups.add((bus_index, age))

        n_free_shares = dut.n_shares - 1
        free_vars: List[Var] = []
        for bit, age in sorted(share_groups):
            for share in range(n_free_shares):
                free_vars.append((("share", share, bit), age))
        for net, age in sorted(mask_vars):
            free_vars.append((("mask", net), age))
        for detail, age in sorted(uniform_vars):
            free_vars.append((("uniform", detail), age))
        for bus_index, age in sorted(nonzero_groups):
            for bit in range(8):
                free_vars.append((("nonzero", bus_index, bit), age))

        used_secret_bits = sorted({bit for bit, _ in share_groups})
        max_age = max((age for _, age in raw_vars), default=0)
        max_age = max(max_age, max(probe_class.cycles_back))
        return free_vars, used_secret_bits, sorted(share_groups), sorted(
            nonzero_groups
        ), max_age

    # ------------------------------------------------------------- analysis

    def analyze_probe_class(
        self, probe_class: ProbeClass, fixed_secret: int = 0
    ) -> ExactProbeResult:
        """Exactly analyze one probe class; raises if infeasible."""
        (
            free_vars,
            used_secret_bits,
            share_groups,
            nonzero_groups,
            max_age,
        ) = self._collect_variables(probe_class)

        k = len(free_vars)
        u = len(used_secret_bits)
        total_bits = k + u
        netlist = self.dut.netlist
        if total_bits > self.max_enum_bits:
            raise ExactAnalysisInfeasible(
                f"probe {probe_class.member_names(netlist)} needs "
                f"{total_bits} enumeration bits (> {self.max_enum_bits})"
            )

        n_lanes = 1 << total_bits
        n_words = (n_lanes + 63) // 64
        var_index = {var: i for i, var in enumerate(free_vars)}
        secret_index = {bit: k + i for i, bit in enumerate(used_secret_bits)}

        patterns = {
            i: _enum_pattern(i, n_words) for i in range(total_bits)
        }
        zeros = np.zeros(n_words, dtype=np.uint64)

        def secret_pattern(bit: int) -> np.ndarray:
            if bit in secret_index:
                return patterns[secret_index[bit]]
            return zeros

        share_group_set = set(share_groups)
        n_shares = self.dut.n_shares
        observe_cycle = max_age  # observation at the last simulated cycle
        n_cycles = max_age + 1

        def stimulus(cycle: int) -> Dict[int, np.ndarray]:
            age = observe_cycle - cycle
            values: Dict[int, np.ndarray] = {}
            for share, bus in enumerate(self.dut.share_buses):
                for bit, net in enumerate(bus):
                    if (bit, age) in share_group_set:
                        if share < n_shares - 1:
                            values[net] = patterns[
                                var_index[(("share", share, bit), age)]
                            ]
                        else:
                            acc = secret_pattern(bit).copy()
                            for other in range(n_shares - 1):
                                acc = acc ^ patterns[
                                    var_index[(("share", other, bit), age)]
                                ]
                            values[net] = acc
                    else:
                        # Consistent sharing of the same secret: shares
                        # 0..d-1 are zero, the last carries the secret bit.
                        if share < n_shares - 1:
                            values[net] = zeros
                        else:
                            values[net] = secret_pattern(bit)
            for net in self.dut.mask_bits:
                var = (("mask", net), age)
                values[net] = patterns[var_index[var]] if var in var_index else zeros
            for bus_index, bus in enumerate(self.dut.uniform_byte_buses):
                for bit, net in enumerate(bus):
                    var = (("uniform", (bus_index, bit)), age)
                    values[net] = (
                        patterns[var_index[var]] if var in var_index else zeros
                    )
            for bus_index, bus in enumerate(self.dut.nonzero_byte_buses):
                enumerated = (bus_index, age) in nonzero_groups
                for bit, net in enumerate(bus):
                    if enumerated:
                        var = (("nonzero", bus_index, bit), age)
                        values[net] = patterns[var_index[var]]
                    else:
                        # Unobserved non-zero byte: any valid constant works.
                        values[net] = (
                            ~zeros if bit == 0 else zeros
                        )
            return values

        simulator = BitslicedSimulator(netlist, n_lanes)
        record_cycles = {
            observe_cycle - back for back in probe_class.cycles_back
        }
        trace = simulator.run(
            stimulus,
            n_cycles,
            record_nets=probe_class.support,
            record_cycles=record_cycles,
        )

        # Validity: enumerated non-zero bytes must not be zero.
        valid = np.ones(n_lanes, dtype=bool)
        for bus_index, age in nonzero_groups:
            any_bit = zeros.copy()
            for bit in range(8):
                any_bit = any_bit | patterns[
                    var_index[(("nonzero", bus_index, bit), age)]
                ]
            valid &= unpack_lanes(any_bit, n_lanes).astype(bool)

        keys = np.zeros(n_lanes, dtype=np.uint64)
        position = 0
        for back in probe_class.cycles_back:
            cycle = observe_cycle - back
            for net in probe_class.support:
                bits = unpack_lanes(trace.words(cycle, net), n_lanes)
                keys |= bits.astype(np.uint64) << np.uint64(position)
                position += 1

        _, inverse = np.unique(keys, return_inverse=True)
        n_categories = int(inverse.max()) + 1
        lanes_per_secret = 1 << k
        n_secrets = 1 << u
        histogram = np.zeros((n_secrets, n_categories), dtype=np.int64)
        inverse = inverse.reshape(n_secrets, lanes_per_secret)
        valid = valid.reshape(n_secrets, lanes_per_secret)
        for s in range(n_secrets):
            histogram[s] = np.bincount(
                inverse[s][valid[s]], minlength=n_categories
            )

        distinct = np.unique(histogram, axis=0).shape[0]
        leaking = distinct > 1

        fixed_row = 0
        for i, bit in enumerate(used_secret_bits):
            fixed_row |= ((fixed_secret >> bit) & 1) << i
        totals = histogram.sum(axis=1)
        fixed_dist = histogram[fixed_row] / max(int(totals[fixed_row]), 1)
        mixture = histogram.sum(axis=0) / max(int(totals.sum()), 1)
        tv = 0.5 * float(np.abs(fixed_dist - mixture).sum())

        return ExactProbeResult(
            probe_names=probe_class.member_names(netlist),
            support_names=tuple(probe_class.support_names(netlist)),
            n_random_bits=k,
            n_secret_bits=u,
            leaking=leaking,
            tv_fixed_vs_random=tv,
            n_distinct_distributions=distinct,
        )

    def analyze(
        self,
        probe_classes: Optional[Sequence[ProbeClass]] = None,
        fixed_secret: int = 0,
    ) -> ExactReport:
        """Analyze all (or the given) probe classes."""
        classes = (
            list(probe_classes)
            if probe_classes is not None
            else self.probe_classes
        )
        netlist = self.dut.netlist
        report = ExactReport(
            design=self.dut.describe(),
            model=self.model.description,
            fixed_secret=fixed_secret,
        )
        for probe_class in classes:
            try:
                report.results.append(
                    self.analyze_probe_class(probe_class, fixed_secret)
                )
            except ExactAnalysisInfeasible:
                report.infeasible.append(probe_class.member_names(netlist))
        for probe_class in self.wide_classes:
            report.infeasible.append(probe_class.member_names(netlist))
        return report

    def probe_class_for_net(self, net: int) -> ProbeClass:
        """Find the probe class containing a given net."""
        for probe_class in self.probe_classes + self.wide_classes:
            if net in probe_class.members:
                return probe_class
        raise ExactAnalysisInfeasible(f"no probe class contains net {net}")
