"""Exact probe-distribution analysis by exhaustive randomness enumeration.

For a probe class whose observation depends on few enough random bits, the
joint distribution of the observation can be computed *exactly*, per secret
value, by enumerating every assignment of the contributing randomness
(sharing randomness, fresh mask bits, mask bytes) on simulator lanes.  A
probe is first-order secure iff that distribution is identical for every
secret -- the statement SILVER-style tools verify, stronger than any
sampled fixed-vs-random test and free of Monte-Carlo noise.

The engine:

1. computes the probe's stable support (per the probing model),
2. traces the support back through registers to ``(primary input, age)``
   variables (:func:`repro.netlist.topo.transitive_input_support`),
3. allocates enumeration bits for the free randomness and the *used* secret
   bits, mapping derived share inputs to ``other shares xor secret``,
4. simulates all ``2^k`` assignments at once (bitsliced lanes), and
5. compares the per-secret observation histograms for exact equality.

Designs whose probes exceed the enumeration budget raise
:class:`repro.errors.ExactAnalysisInfeasible` per probe and are reported as
skipped; the Monte-Carlo evaluator covers them.

The assignment space of one probe class factors into lane-aligned *shards*:
shard ``s`` of size ``2^b`` covers global assignment indices
``[s * 2^b, (s+1) * 2^b)``.  Within a shard, enumeration bits below ``b``
ride simulator lanes as usual while bits at or above ``b`` are broadcast
constants taken from the shard index -- so per-shard exact counts merge to
the single-shot histogram bit for bit.  :class:`ShardedExactAnalyzer` in
:mod:`repro.leakage.certify` schedules shards across worker processes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import engines as engine_registry
from repro.errors import ExactAnalysisInfeasible
from repro.leakage.dut import DesignUnderTest
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.leakage.report import SCHEMA_VERSION
from repro.netlist.simulate import unpack_lanes
from repro.netlist.topo import transitive_input_support

Var = Tuple[object, int]  # (role key, age)


def _enum_pattern(index: int, n_words: int) -> np.ndarray:
    """Word array where lane L carries bit ``(L >> index) & 1``."""
    if index < 6:
        span = 1 << index
        base = np.uint64(0)
        lane_bits = np.arange(64, dtype=np.uint64)
        mask_bits = ((lane_bits >> np.uint64(index)) & np.uint64(1)).astype(
            np.uint64
        )
        for position in range(64):
            base |= mask_bits[position] << np.uint64(position)
        return np.full(n_words, base, dtype=np.uint64)
    word_index = np.arange(n_words, dtype=np.uint64)
    selected = (word_index >> np.uint64(index - 6)) & np.uint64(1)
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.where(selected.astype(bool), full, np.uint64(0))


def _shard_pattern(
    index: int, n_words: int, shard_lane_bits: int, shard_index: int
) -> np.ndarray:
    """Pattern of global enumeration bit ``index`` within one shard.

    Bits below ``shard_lane_bits`` enumerate across the shard's lanes; bits
    at or above it are fixed by the shard index, so the pattern is an
    all-ones or all-zeros broadcast.
    """
    if index < shard_lane_bits:
        return _enum_pattern(index, n_words)
    if (shard_index >> (index - shard_lane_bits)) & 1:
        return np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    return np.zeros(n_words, dtype=np.uint64)


@dataclass(frozen=True)
class ExactProbeResult:
    """Exact verdict for one probe class."""

    probe_names: str
    support_names: Tuple[str, ...]
    n_random_bits: int
    n_secret_bits: int
    leaking: bool
    #: total-variation distance between the fixed-secret distribution and
    #: the uniform-secret mixture (the PROLEAD fixed-vs-random contrast).
    tv_fixed_vs_random: float
    #: number of distinct per-secret distributions (1 == secure).
    n_distinct_distributions: int

    def format_row(self) -> str:
        """One summary line for this probe."""
        flag = "LEAK" if self.leaking else "ok"
        return (
            f"{flag:<5} rand_bits={self.n_random_bits:<3} "
            f"distinct={self.n_distinct_distributions:<4} "
            f"tv(fixed,rand)={self.tv_fixed_vs_random:.4f}  "
            f"probe={self.probe_names}"
        )


@dataclass
class ExactReport:
    """Outcome of an exact analysis sweep.

    ``infeasible`` entries are detail dicts ``{"probe", "needed_bits",
    "budget"}`` recording *how far* each skipped probe exceeds the
    enumeration budget, so escalating ``max_enum_bits`` (or moving to the
    sharded engine) is an informed decision rather than a guess.
    """

    design: str
    model: str
    fixed_secret: int
    results: List[ExactProbeResult] = field(default_factory=list)
    infeasible: List[Dict[str, object]] = field(default_factory=list)
    #: "complete", or "truncated:<reason>" when a sharded sweep stopped
    #: early (cancellation, shutdown).
    status: str = "complete"

    @property
    def leaking_results(self) -> List[ExactProbeResult]:
        """Probe results with secret-dependent distributions."""
        return [r for r in self.results if r.leaking]

    @property
    def passed(self) -> bool:
        """True when every analyzed probe is secret-independent."""
        return not self.leaking_results

    @property
    def truncated(self) -> bool:
        """True when the sweep stopped before covering every probe."""
        return self.status != "complete"

    @property
    def conclusive(self) -> bool:
        """True when every probe class actually received a verdict.

        A sweep with budget-skipped (infeasible) probes or an early stop
        can still be *insecure* (a found leak is a proof), but it can
        never be *secure*: the unexamined probes might leak.
        """
        return not self.truncated and not self.infeasible

    @property
    def max_tv(self) -> float:
        """Largest fixed-vs-random total-variation distance observed."""
        return max((r.tv_fixed_vs_random for r in self.results), default=0.0)

    def to_dict(self, top: Optional[int] = None) -> Dict:
        """Machine-readable form, shaped like :meth:`LeakageReport.to_dict`.

        Shares the sampled report's envelope keys (``schema_version``,
        ``status``, ``passed``, ``max_mlog10p``, ``n_probe_classes``) so the
        service verdict cache and exit-code mapping treat exact and sampled
        verdicts uniformly; ``mode: "exact"`` and the per-probe rows
        distinguish the payload.  An exact pass has no p-value, so
        ``max_mlog10p`` is 0.0 by construction.
        """
        ranked = sorted(
            self.results, key=lambda r: (-r.leaking, -r.tv_fixed_vs_random)
        )
        if top is not None:
            ranked = ranked[:top]
        return {
            "schema_version": SCHEMA_VERSION,
            "mode": "exact",
            "design": self.design,
            "model": self.model,
            "fixed_secret": self.fixed_secret,
            "status": self.status,
            "passed": self.passed,
            "max_mlog10p": 0.0,
            "max_tv": self.max_tv,
            "n_probe_classes": len(self.results),
            "n_skipped": len(self.infeasible),
            "skipped": list(self.infeasible),
            "results": [asdict(r) for r in ranked],
        }

    def to_json(self, top: Optional[int] = None, indent: int = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(top), indent=indent)

    def format_summary(self, top: int = 10) -> str:
        """Human-readable report, leaking probes first."""
        verdict = "SECURE (exact)" if self.passed else "INSECURE (exact)"
        if self.passed and not self.conclusive:
            verdict = (
                "INCONCLUSIVE (truncated before completion)"
                if self.truncated
                else "INCONCLUSIVE "
                f"({len(self.infeasible)} probes beyond enumeration budget)"
            )
        lines = [
            f"=== Exact analysis: {self.design} ===",
            f"  model:   {self.model}"
            + (f" [{self.status}]" if self.truncated else ""),
            f"  probes:  {len(self.results)} analyzed, "
            f"{len(self.infeasible)} beyond enumeration budget",
            f"  verdict: {verdict}",
        ]
        for entry in self.infeasible[:3]:
            needed = entry.get("needed_bits")
            lines.append(
                f"  skipped: {entry.get('probe')} needs "
                f"{needed if needed is not None else '>40'} bits "
                f"(budget {entry.get('budget')})"
            )
        ranked = sorted(
            self.results, key=lambda r: (-r.leaking, -r.tv_fixed_vs_random)
        )
        for result in ranked[:top]:
            lines.append("  " + result.format_row())
        return "\n".join(lines)


@dataclass
class EnumerationSetup:
    """Resolved enumeration variables of one probe class.

    Computed once per probe class and reused by every shard: the free
    variables (bit positions ``0..k-1`` of the global assignment index), the
    used secret bits (positions ``k..k+u-1``), and the derived lookup
    tables the stimulus closure needs.
    """

    free_vars: List[Var]
    used_secret_bits: List[int]
    share_groups: List[Tuple[int, int]]
    nonzero_groups: List[Tuple[int, int]]
    max_age: int

    @property
    def n_free_bits(self) -> int:
        """Free randomness bits (``k``)."""
        return len(self.free_vars)

    @property
    def n_secret_bits(self) -> int:
        """Used secret bits (``u``)."""
        return len(self.used_secret_bits)

    @property
    def total_bits(self) -> int:
        """Total enumeration bits (``k + u``)."""
        return self.n_free_bits + self.n_secret_bits


class ExactAnalyzer:
    """Exhaustive per-secret distribution analysis of probe classes."""

    def __init__(
        self,
        dut: DesignUnderTest,
        model: ProbingModel = ProbingModel.GLITCH,
        max_enum_bits: int = 24,
        max_window: int = 12,
        engine: str = engine_registry.DEFAULT_ENGINE,
    ):
        self.dut = dut
        self.model = model
        self.max_enum_bits = max_enum_bits
        self.max_window = max_window
        # Simulation engine for shard enumeration, resolved through
        # repro.engines; every registered engine is bit-identical, so
        # shard counts (and hence certificates) never depend on it.
        engine_registry.get_engine(engine)
        self.engine = engine
        #: degradation-ladder steps taken while building shard simulators.
        self.degradations: List[Dict[str, str]] = []
        self.probe_classes, self.wide_classes = extract_probe_classes(
            dut.netlist, model, max_support_bits=40
        )
        self._roles = self._build_role_map()

    def _on_degrade(self, from_info, to_info, exc) -> None:
        """Record one engine degradation rung permanently (provenance)."""
        self.engine = to_info.name
        self.degradations.append(
            {
                "kind": f"engine_{to_info.name}",
                "detail": (
                    f"{from_info.name} engine unavailable ({exc}); "
                    f"continuing on the bit-identical {to_info.name} "
                    "engine"
                ),
            }
        )

    # ------------------------------------------------------------- role map

    def _build_role_map(self) -> Dict[int, Tuple[str, object]]:
        """Map every primary input net to its protocol role."""
        roles: Dict[int, Tuple[str, object]] = {}
        dut = self.dut
        for share, bus in enumerate(dut.share_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("share", (share, bit))
        for net in dut.mask_bits:
            roles[net] = ("mask", net)
        for bus_index, bus in enumerate(dut.uniform_byte_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("uniform", (bus_index, bit))
        for bus_index, bus in enumerate(dut.nonzero_byte_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("nonzero", (bus_index, bit))
        return roles

    # -------------------------------------------------------- var collection

    def _collect_variables(self, probe_class: ProbeClass):
        """Free enumeration variables and used secret bits for a probe."""
        dut = self.dut
        raw_vars: Set[Tuple[int, int]] = set()
        for net in probe_class.support:
            base = transitive_input_support(
                dut.netlist, net, self.max_window
            )
            for back in probe_class.cycles_back:
                raw_vars.update((pi, age + back) for pi, age in base)

        share_groups: Set[Tuple[int, int]] = set()  # (bit, age)
        mask_vars: Set[Tuple[int, int]] = set()  # (net, age)
        uniform_vars: Set[Tuple[Tuple[int, int], int]] = set()
        nonzero_groups: Set[Tuple[int, int]] = set()  # (bus, age)
        for pi, age in raw_vars:
            kind, detail = self._roles[pi]
            if kind == "share":
                _, bit = detail
                share_groups.add((bit, age))
            elif kind == "mask":
                mask_vars.add((pi, age))
            elif kind == "uniform":
                uniform_vars.add((detail, age))
            else:  # nonzero
                bus_index, _ = detail
                nonzero_groups.add((bus_index, age))

        n_free_shares = dut.n_shares - 1
        free_vars: List[Var] = []
        for bit, age in sorted(share_groups):
            for share in range(n_free_shares):
                free_vars.append((("share", share, bit), age))
        for net, age in sorted(mask_vars):
            free_vars.append((("mask", net), age))
        for detail, age in sorted(uniform_vars):
            free_vars.append((("uniform", detail), age))
        for bus_index, age in sorted(nonzero_groups):
            for bit in range(8):
                free_vars.append((("nonzero", bus_index, bit), age))

        used_secret_bits = sorted({bit for bit, _ in share_groups})
        max_age = max((age for _, age in raw_vars), default=0)
        max_age = max(max_age, max(probe_class.cycles_back))
        return free_vars, used_secret_bits, sorted(share_groups), sorted(
            nonzero_groups
        ), max_age

    # ------------------------------------------------------------- analysis

    def enumeration_setup(self, probe_class: ProbeClass) -> EnumerationSetup:
        """Resolve the enumeration variables of a probe class.

        Raises :class:`ExactAnalysisInfeasible` -- carrying the probe name,
        its required bit count and the configured budget -- when the class
        exceeds ``max_enum_bits``.
        """
        (
            free_vars,
            used_secret_bits,
            share_groups,
            nonzero_groups,
            max_age,
        ) = self._collect_variables(probe_class)
        setup = EnumerationSetup(
            free_vars=free_vars,
            used_secret_bits=used_secret_bits,
            share_groups=share_groups,
            nonzero_groups=nonzero_groups,
            max_age=max_age,
        )
        if setup.total_bits > self.max_enum_bits:
            probe = probe_class.member_names(self.dut.netlist)
            raise ExactAnalysisInfeasible(
                f"probe {probe} needs {setup.total_bits} enumeration bits "
                f"(> {self.max_enum_bits})",
                probe=probe,
                needed_bits=setup.total_bits,
                budget=self.max_enum_bits,
            )
        return setup

    def count_shard(
        self,
        probe_class: ProbeClass,
        shard_index: int = 0,
        shard_lane_bits: Optional[int] = None,
        setup: Optional[EnumerationSetup] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact observation counts over one shard of the assignment space.

        With ``shard_lane_bits=None`` the single shard covers the whole
        space (the serial path).  Returns ``(keys, rows, counts)``: the
        sorted unique observation keys seen on *valid* lanes, the occupied
        secret rows, and the ``(len(rows), len(keys))`` count matrix.
        Counts from all shards of a class merge -- by key union and
        elementwise addition -- to exactly the single-shot histogram.
        """
        if setup is None:
            setup = self.enumeration_setup(probe_class)
        free_vars = setup.free_vars
        used_secret_bits = setup.used_secret_bits
        share_groups = setup.share_groups
        nonzero_groups = setup.nonzero_groups
        max_age = setup.max_age
        k = setup.n_free_bits
        u = setup.n_secret_bits
        total_bits = setup.total_bits
        netlist = self.dut.netlist

        lane_bits = (
            total_bits
            if shard_lane_bits is None
            else min(shard_lane_bits, total_bits)
        )
        n_lanes = 1 << lane_bits
        n_words = (n_lanes + 63) // 64
        var_index = {var: i for i, var in enumerate(free_vars)}
        secret_index = {bit: k + i for i, bit in enumerate(used_secret_bits)}

        patterns = {
            i: _shard_pattern(i, n_words, lane_bits, shard_index)
            for i in range(total_bits)
        }
        zeros = np.zeros(n_words, dtype=np.uint64)

        def secret_pattern(bit: int) -> np.ndarray:
            if bit in secret_index:
                return patterns[secret_index[bit]]
            return zeros

        share_group_set = set(share_groups)
        n_shares = self.dut.n_shares
        observe_cycle = max_age  # observation at the last simulated cycle
        n_cycles = max_age + 1

        def stimulus(cycle: int) -> Dict[int, np.ndarray]:
            age = observe_cycle - cycle
            values: Dict[int, np.ndarray] = {}
            for share, bus in enumerate(self.dut.share_buses):
                for bit, net in enumerate(bus):
                    if (bit, age) in share_group_set:
                        if share < n_shares - 1:
                            values[net] = patterns[
                                var_index[(("share", share, bit), age)]
                            ]
                        else:
                            acc = secret_pattern(bit).copy()
                            for other in range(n_shares - 1):
                                acc = acc ^ patterns[
                                    var_index[(("share", other, bit), age)]
                                ]
                            values[net] = acc
                    else:
                        # Consistent sharing of the same secret: shares
                        # 0..d-1 are zero, the last carries the secret bit.
                        if share < n_shares - 1:
                            values[net] = zeros
                        else:
                            values[net] = secret_pattern(bit)
            for net in self.dut.mask_bits:
                var = (("mask", net), age)
                values[net] = patterns[var_index[var]] if var in var_index else zeros
            for bus_index, bus in enumerate(self.dut.uniform_byte_buses):
                for bit, net in enumerate(bus):
                    var = (("uniform", (bus_index, bit)), age)
                    values[net] = (
                        patterns[var_index[var]] if var in var_index else zeros
                    )
            for bus_index, bus in enumerate(self.dut.nonzero_byte_buses):
                enumerated = (bus_index, age) in nonzero_groups
                for bit, net in enumerate(bus):
                    if enumerated:
                        var = (("nonzero", bus_index, bit), age)
                        values[net] = patterns[var_index[var]]
                    else:
                        # Unobserved non-zero byte: any valid constant works.
                        values[net] = (
                            ~zeros if bit == 0 else zeros
                        )
            return values

        simulator, _ = engine_registry.build_simulator(
            self.engine, netlist, n_lanes,
            record_nets=probe_class.support,
            on_degrade=self._on_degrade,
        )
        record_cycles = {
            observe_cycle - back for back in probe_class.cycles_back
        }
        trace = simulator.run(
            stimulus,
            n_cycles,
            record_nets=probe_class.support,
            record_cycles=record_cycles,
        )

        # Validity: enumerated non-zero bytes must not be zero.
        valid = np.ones(n_lanes, dtype=bool)
        for bus_index, age in nonzero_groups:
            any_bit = zeros.copy()
            for bit in range(8):
                any_bit = any_bit | patterns[
                    var_index[(("nonzero", bus_index, bit), age)]
                ]
            valid &= unpack_lanes(any_bit, n_lanes).astype(bool)

        keys = np.zeros(n_lanes, dtype=np.uint64)
        position = 0
        for back in probe_class.cycles_back:
            cycle = observe_cycle - back
            for net in probe_class.support:
                bits = unpack_lanes(trace.words(cycle, net), n_lanes)
                keys |= bits.astype(np.uint64) << np.uint64(position)
                position += 1

        # Per-lane secret row: bits k..k+u-1 of the global assignment index.
        base = shard_index << lane_bits
        global_index = np.uint64(base) + np.arange(n_lanes, dtype=np.uint64)
        lane_rows = (
            (global_index >> np.uint64(k)) & np.uint64((1 << u) - 1)
        ).astype(np.int64)

        keys_valid = keys[valid]
        rows_valid = lane_rows[valid]
        unique_keys, inverse = np.unique(keys_valid, return_inverse=True)
        occupied = np.unique(rows_valid)
        counts = np.zeros((occupied.size, unique_keys.size), dtype=np.int64)
        if keys_valid.size:
            row_pos = np.searchsorted(occupied, rows_valid)
            np.add.at(counts, (row_pos, inverse), 1)
        return unique_keys, occupied, counts

    def finalize(
        self,
        probe_class: ProbeClass,
        setup: EnumerationSetup,
        histogram: np.ndarray,
        fixed_secret: int = 0,
    ) -> ExactProbeResult:
        """Verdict from a full ``(2^u, n_keys)`` exact-count histogram.

        The same code runs on the serial single-shot histogram and on the
        merged shard counts, so sharded and serial sweeps are bit-identical
        by construction.
        """
        netlist = self.dut.netlist
        used_secret_bits = setup.used_secret_bits
        distinct = (
            int(np.unique(histogram, axis=0).shape[0])
            if histogram.shape[1]
            else 1
        )
        leaking = distinct > 1

        fixed_row = 0
        for i, bit in enumerate(used_secret_bits):
            fixed_row |= ((fixed_secret >> bit) & 1) << i
        totals = histogram.sum(axis=1)
        fixed_dist = histogram[fixed_row] / max(int(totals[fixed_row]), 1)
        mixture = histogram.sum(axis=0) / max(int(totals.sum()), 1)
        tv = 0.5 * float(np.abs(fixed_dist - mixture).sum())

        return ExactProbeResult(
            probe_names=probe_class.member_names(netlist),
            support_names=tuple(probe_class.support_names(netlist)),
            n_random_bits=setup.n_free_bits,
            n_secret_bits=setup.n_secret_bits,
            leaking=leaking,
            tv_fixed_vs_random=tv,
            n_distinct_distributions=distinct,
        )

    def analyze_probe_class(
        self, probe_class: ProbeClass, fixed_secret: int = 0
    ) -> ExactProbeResult:
        """Exactly analyze one probe class; raises if infeasible."""
        setup = self.enumeration_setup(probe_class)
        unique_keys, occupied, counts = self.count_shard(
            probe_class, setup=setup
        )
        n_secrets = 1 << setup.n_secret_bits
        histogram = np.zeros(
            (n_secrets, unique_keys.size), dtype=np.int64
        )
        histogram[occupied] = counts
        return self.finalize(probe_class, setup, histogram, fixed_secret)

    def analyze(
        self,
        probe_classes: Optional[Sequence[ProbeClass]] = None,
        fixed_secret: int = 0,
    ) -> ExactReport:
        """Analyze all (or the given) probe classes."""
        classes = (
            list(probe_classes)
            if probe_classes is not None
            else self.probe_classes
        )
        netlist = self.dut.netlist
        report = ExactReport(
            design=self.dut.describe(),
            model=self.model.description,
            fixed_secret=fixed_secret,
        )
        for probe_class in classes:
            try:
                report.results.append(
                    self.analyze_probe_class(probe_class, fixed_secret)
                )
            except ExactAnalysisInfeasible as exc:
                report.infeasible.append(self.infeasible_entry(exc))
        for probe_class in self.wide_classes:
            report.infeasible.append(self.wide_class_entry(probe_class))
        return report

    def infeasible_entry(
        self, exc: ExactAnalysisInfeasible
    ) -> Dict[str, object]:
        """Report/telemetry detail for one over-budget probe class."""
        return {
            "probe": exc.probe,
            "needed_bits": exc.needed_bits,
            "budget": exc.budget if exc.budget is not None else self.max_enum_bits,
        }

    def wide_class_entry(self, probe_class: ProbeClass) -> Dict[str, object]:
        """Detail entry for a probe class too wide to even set up."""
        netlist = self.dut.netlist
        try:
            setup = self.enumeration_setup(probe_class)
            needed: Optional[int] = setup.total_bits
        except ExactAnalysisInfeasible as exc:
            needed = exc.needed_bits
        return {
            "probe": probe_class.member_names(netlist),
            "needed_bits": needed,
            "budget": self.max_enum_bits,
        }

    def probe_class_for_net(self, net: int) -> ProbeClass:
        """Find the probe class containing a given net."""
        for probe_class in self.probe_classes + self.wide_classes:
            if net in probe_class.members:
                return probe_class
        raise ExactAnalysisInfeasible(f"no probe class contains net {net}")
