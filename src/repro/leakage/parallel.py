"""Multiprocessing execution of leakage-campaign chunks.

The evaluator's sampling layout makes block-level parallelism safe by
construction: every sampling block draws its stimulus from a private RNG
stream ``SeedSequence(seed, spawn_key=(group, block))``, so a block
simulates to the same trace no matter which process runs it, and the
per-probe contingency tables it produces are integers whose accumulation
commutes.  A parallel run therefore shards a chunk's blocks across worker
processes, lets each worker fold its shard into a private
:class:`~repro.leakage.evaluator.HistogramAccumulator`, and merges the
worker tables in the parent -- **bit-identical** to the serial path for any
worker count and any shard boundaries.

Workers are plain processes (``fork`` server where available, ``spawn``
otherwise); the evaluator is pickled once per worker via the pool
initializer, not once per task.  Environments without working
multiprocessing primitives (sandboxes denying ``sem_open``, say) degrade to
in-process execution with a :class:`RuntimeWarning` instead of failing the
campaign.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator

#: Evaluator instance owned by a worker process (set by the initializer).
_WORKER_EVALUATOR: Optional[LeakageEvaluator] = None


def default_workers() -> int:
    """Worker count matching the machine's visible CPU count."""
    return max(1, os.cpu_count() or 1)


def effective_workers(requested: int) -> int:
    """Cap a requested worker count at the visible CPU count.

    Oversubscribing a CPU-bound campaign is strictly counterproductive
    (``BENCH_parallel.json`` measured a 0.801x "speedup" for workers=2 on a
    single core: the pool pays pickling and merge overhead with no core to
    run on), so campaigns cap the pool size and warn instead of silently
    running slower than serial.
    """
    if requested < 1:
        raise SimulationError("workers must be at least 1")
    cpus = default_workers()
    if requested > cpus:
        warnings.warn(
            f"requested {requested} campaign workers but only {cpus} CPU(s) "
            f"are visible; capping at {cpus} (oversubscription makes the "
            "parallel path slower than serial)",
            RuntimeWarning,
            stacklevel=2,
        )
        return cpus
    return requested


def shard_blocks(blocks: Iterable[int], n_shards: int) -> List[List[int]]:
    """Split block indices into at most ``n_shards`` contiguous shards.

    Shard sizes differ by at most one block and every block appears exactly
    once; shard boundaries have no effect on results (accumulation
    commutes), only on load balance.
    """
    block_list = list(blocks)
    if n_shards < 1:
        raise SimulationError("n_shards must be at least 1")
    if not block_list:
        return []
    n_shards = min(n_shards, len(block_list))
    base, extra = divmod(len(block_list), n_shards)
    shards: List[List[int]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(block_list[start:start + size])
        start += size
    return shards


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the evaluator once per worker process."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = pickle.loads(payload)


def _run_shard(
    task: Tuple,
) -> Tuple[List[str], Dict[str, np.ndarray]]:
    """Accumulate one shard of blocks inside a worker process."""
    (
        fixed_secret,
        n_lanes,
        n_windows,
        classes,
        class_indices,
        pairs,
        pair_offsets,
        block_list,
    ) = task
    if _WORKER_EVALUATOR is None:  # pragma: no cover - initializer contract
        raise SimulationError("worker process was not initialised")
    plane = getattr(_WORKER_EVALUATOR, "fault_plane", None)
    if plane is not None:
        # Chaos site "worker.block": simulate a worker dying mid-shard
        # (SIGKILL'd by the OOM killer, say) or wedging.  ``os._exit``
        # bypasses all cleanup exactly like a real kill, surfacing in the
        # parent as BrokenProcessPool.
        kind = plane.decide("worker.block")
        if kind == "kill":
            os._exit(13)
        if kind == "hang":
            time.sleep(plane.hang_seconds)
    acc = HistogramAccumulator()
    _WORKER_EVALUATOR.accumulate(
        acc,
        fixed_secret,
        n_lanes,
        n_windows,
        classes=classes,
        class_indices=class_indices,
        pairs=pairs,
        pair_offsets=pair_offsets,
        blocks=block_list,
    )
    return acc.state_arrays()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Cheapest available start method: fork when the OS offers it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ParallelExecutor:
    """A process pool bound to one evaluator, sharding blocks across cores.

    The pool is created lazily on the first :meth:`accumulate` call and
    reused across chunks, so a checkpointing campaign pays the worker
    startup (and the one-time evaluator pickle) once, not per chunk.  Use
    as a context manager or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        evaluator: LeakageEvaluator,
        workers: Optional[int] = None,
        hook=None,
        shard_timeout: Optional[float] = None,
        max_pool_restarts: int = 1,
    ):
        if workers is not None and workers < 1:
            raise SimulationError("workers must be at least 1")
        if shard_timeout is not None and shard_timeout <= 0:
            raise SimulationError("shard_timeout must be positive")
        if max_pool_restarts < 0:
            raise SimulationError("max_pool_restarts must be non-negative")
        self.evaluator = evaluator
        self.workers = workers if workers is not None else default_workers()
        #: optional ``hook(event: str, payload: dict)`` telemetry callback;
        #: receives "pool_start", "shard_dispatch", "pool_restart",
        #: "worker_stalled", "serial_fallback".
        self.hook = hook
        #: per-shard deadline in seconds; a shard exceeding it has its
        #: worker processes terminated (hung-worker reaping).  ``None``
        #: waits forever, the pre-watchdog behaviour.
        self.shard_timeout = shard_timeout
        #: pool deaths tolerated (pool rebuilt and the block set retried in
        #: the pool) before degrading permanently to the serial path.
        self.max_pool_restarts = max_pool_restarts
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_breaks = 0
        self._serial_fallback = False

    def _emit(self, event: str, **payload) -> None:
        if self.hook is not None:
            self.hook(event, payload)

    # ------------------------------------------------------------- lifecycle

    def _ensure_pool(self) -> None:
        if (
            self._pool is not None
            or self._serial_fallback
            or self.workers == 1
        ):
            return
        try:
            payload = pickle.dumps(
                self.evaluator, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=(payload,),
            )
            self._emit("pool_start", workers=self.workers)
        except (OSError, ValueError, pickle.PicklingError) as exc:
            self._fall_back(exc)

    def _fall_back(self, exc: Exception) -> None:
        warnings.warn(
            f"multiprocessing unavailable ({exc!r}); campaign continues "
            "in-process with identical results",
            RuntimeWarning,
            stacklevel=3,
        )
        self._emit("serial_fallback", error=repr(exc))
        self._serial_fallback = True
        self._shutdown_pool()

    def _pool_failed(self, exc: Exception) -> None:
        """Degradation ladder rung for a dead or reaped pool.

        The first ``max_pool_restarts`` failures tear the pool down and let
        :meth:`_ensure_pool` rebuild it (a single worker kill should not
        cost the campaign its parallelism); repeated failures degrade to
        the serial path permanently -- same verdict bytes, no pool to die.
        """
        self._pool_breaks += 1
        if self._pool_breaks <= self.max_pool_restarts:
            self._shutdown_pool()
            self._emit(
                "pool_restart", breaks=self._pool_breaks, error=repr(exc)
            )
        else:
            self._fall_back(exc)

    def _reap_stalled(self, elapsed: float) -> None:
        """Terminate a wedged pool's worker processes (watchdog reaping)."""
        self._emit(
            "worker_stalled",
            timeout=self.shard_timeout,
            elapsed=elapsed,
        )
        if self._pool is None:  # pragma: no cover - defensive
            return
        for process in list(getattr(self._pool, "_processes", {}).values()):
            process.terminate()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._shutdown_pool()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- execution

    def accumulate(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_lanes: int,
        n_windows: int,
        blocks: Iterable[int],
        classes=None,
        class_indices: Optional[Sequence[int]] = None,
        pairs: Sequence[Tuple[int, int]] = (),
        pair_offsets: Sequence[int] = (0,),
    ) -> None:
        """Accumulate ``blocks`` into ``acc``, sharded across the pool.

        Mirrors :meth:`LeakageEvaluator.accumulate`; a worker
        :class:`MemoryError` propagates to the caller so campaign
        split-and-retry semantics keep working.  A broken or stalled pool
        retries the whole block set -- first in a rebuilt pool (up to
        ``max_pool_restarts`` times), then permanently in-process -- and no
        partial tables are merged before all shards succeed, so retries
        cannot double count.
        """
        block_list = list(blocks)
        if not block_list:
            return
        self._ensure_pool()
        if self._pool is None:
            self.evaluator.accumulate(
                acc,
                fixed_secret,
                n_lanes,
                n_windows,
                classes=classes,
                class_indices=class_indices,
                pairs=pairs,
                pair_offsets=pair_offsets,
                blocks=block_list,
            )
            return
        shards = shard_blocks(block_list, self.workers)
        self._emit(
            "shard_dispatch", n_shards=len(shards), n_blocks=len(block_list)
        )
        tasks = [
            (
                fixed_secret,
                n_lanes,
                n_windows,
                classes,
                tuple(class_indices) if class_indices is not None else None,
                tuple(pairs),
                tuple(pair_offsets),
                shard,
            )
            for shard in shards
        ]
        started = time.monotonic()
        try:
            futures = [self._pool.submit(_run_shard, task) for task in tasks]
            if self.shard_timeout is None:
                states = [future.result() for future in futures]
            else:
                # One deadline for the whole dispatch: shards run
                # concurrently, so a healthy chunk finishes within a single
                # shard_timeout regardless of shard count.
                deadline = started + self.shard_timeout
                states = []
                for future in futures:
                    remaining = deadline - time.monotonic()
                    states.append(
                        future.result(timeout=max(0.001, remaining))
                    )
        except BrokenProcessPool as exc:
            self._pool_failed(exc)
            self.accumulate(
                acc,
                fixed_secret,
                n_lanes,
                n_windows,
                block_list,
                classes=classes,
                class_indices=class_indices,
                pairs=pairs,
                pair_offsets=pair_offsets,
            )
            return
        except FutureTimeout as exc:
            self._reap_stalled(time.monotonic() - started)
            self._pool_failed(exc)
            self.accumulate(
                acc,
                fixed_secret,
                n_lanes,
                n_windows,
                block_list,
                classes=classes,
                class_indices=class_indices,
                pairs=pairs,
                pair_offsets=pair_offsets,
            )
            return
        for ids, arrays in states:
            acc.merge(HistogramAccumulator.from_state(ids, arrays))
