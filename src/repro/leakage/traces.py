"""Bitsliced stimulus generation for fixed-vs-random evaluations.

Each simulation lane is one independent "trace": every cycle it receives a
fresh sharing of the secret (fixed byte or per-cycle uniform byte, per
group), fresh mask bits, and fresh mask bytes -- PROLEAD's fixed-vs-random
test harness.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import SimulationError
from repro.leakage.dut import DesignUnderTest

Stimulus = Callable[[int], Dict[int, np.ndarray]]

_WORD_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def random_words(rng: np.random.Generator, n_words: int) -> np.ndarray:
    """Uniform random uint64 words (64 independent fair bits each)."""
    return rng.integers(0, 1 << 64, size=n_words, dtype=np.uint64)


def random_word_rows(
    rng: np.random.Generator, n_rows: int, n_words: int
) -> np.ndarray:
    """``n_rows`` stacked :func:`random_words` draws as one RNG call.

    Full-range uint64 draws consume the PCG64 stream word-for-word, so a
    batched ``(n_rows, n_words)`` draw is *bit-identical* to ``n_rows``
    sequential :func:`random_words` calls -- callers can batch hot loops
    without perturbing any seeded evaluation verdict.
    """
    return rng.integers(0, 1 << 64, size=(n_rows, n_words), dtype=np.uint64)


def constant_words(bit: int, n_words: int) -> np.ndarray:
    """All-lanes-constant bit as a word array."""
    value = _WORD_MAX if bit else np.uint64(0)
    return np.full(n_words, value, dtype=np.uint64)


def random_nonzero_byte(
    rng: np.random.Generator, n_words: int
) -> "list[np.ndarray]":
    """Eight bit-planes of a per-lane uniform byte conditioned non-zero.

    Rejection-samples the all-zero lanes (probability 1/256 per round), so a
    couple of rounds suffice.
    """
    planes = list(random_word_rows(rng, 8, n_words))
    for _ in range(64):
        zero_mask = ~(
            planes[0] | planes[1] | planes[2] | planes[3]
            | planes[4] | planes[5] | planes[6] | planes[7]
        )
        if not np.any(zero_mask):
            return planes
        retry = random_word_rows(rng, 8, n_words)
        for i in range(8):
            planes[i] = planes[i] | (retry[i] & zero_mask)
    raise SimulationError("non-zero byte rejection sampling did not converge")


class StimulusGenerator:
    """Builds per-cycle stimulus programs for a design under test.

    ``fixed``/``random`` return :class:`repro.leakage.stimplan.StimulusPlan`
    instances -- ordinary ``stimulus(cycle)`` callables (the python
    interpreter draws from ``rng`` exactly as the old closures did, so
    every seeded verdict is unchanged) that the native engine can also
    execute entirely in C from the same PCG64 stream position.
    """

    def __init__(self, dut: DesignUnderTest, n_words: int):
        self.dut = dut
        self.n_words = n_words

    def _drive(self, builder, secret_rows, rng: np.random.Generator):
        """Share the secret rows and drive every randomness input.

        Op emission order *is* PCG64 stream order: the secret rows were
        emitted first, then per secret bit the masking shares, then the
        mask bits, the uniform byte buses, and last the rejection-sampled
        non-zero byte buses -- the exact draw order of the original
        closure (batched draws are stream-transparent; see
        :func:`random_word_rows`).
        """
        dut = self.dut
        n_shares = dut.n_shares
        for bit in range(dut.secret_width):
            accumulated = secret_rows[bit]
            if n_shares == 1:
                builder.copy(accumulated, net=dut.share_buses[0][bit])
                continue
            for share in range(n_shares - 1):
                words = builder.draw(net=dut.share_buses[share][bit])
                last = dut.share_buses[n_shares - 1][bit]
                accumulated = builder.xor(
                    accumulated,
                    words,
                    net=last if share == n_shares - 2 else None,
                )
        for mask_net in dut.mask_bits:
            builder.draw(net=mask_net)
        for bus in dut.uniform_byte_buses:
            for net in bus:
                builder.draw(net=net)
        for bus in dut.nonzero_byte_buses:
            builder.nonzero8(bus)
        return builder.build(rng)

    def fixed(self, secret: int, rng: np.random.Generator) -> Stimulus:
        """Stimulus for the fixed group: the same secret byte every cycle."""
        from repro.leakage.stimplan import StimulusPlanBuilder

        builder = StimulusPlanBuilder(self.n_words)
        secret_rows = [
            builder.const(builder.column([(secret >> bit) & 1]))
            for bit in range(self.dut.secret_width)
        ]
        return self._drive(builder, secret_rows, rng)

    def random(self, rng: np.random.Generator) -> Stimulus:
        """Stimulus for the random group: fresh uniform secret every cycle."""
        from repro.leakage.stimplan import StimulusPlanBuilder

        builder = StimulusPlanBuilder(self.n_words)
        secret_rows = [
            builder.draw() for _ in range(self.dut.secret_width)
        ]
        return self._drive(builder, secret_rows, rng)
