"""Bitsliced stimulus generation for fixed-vs-random evaluations.

Each simulation lane is one independent "trace": every cycle it receives a
fresh sharing of the secret (fixed byte or per-cycle uniform byte, per
group), fresh mask bits, and fresh mask bytes -- PROLEAD's fixed-vs-random
test harness.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import SimulationError
from repro.leakage.dut import DesignUnderTest

Stimulus = Callable[[int], Dict[int, np.ndarray]]

_WORD_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def random_words(rng: np.random.Generator, n_words: int) -> np.ndarray:
    """Uniform random uint64 words (64 independent fair bits each)."""
    return rng.integers(0, 1 << 64, size=n_words, dtype=np.uint64)


def random_word_rows(
    rng: np.random.Generator, n_rows: int, n_words: int
) -> np.ndarray:
    """``n_rows`` stacked :func:`random_words` draws as one RNG call.

    Full-range uint64 draws consume the PCG64 stream word-for-word, so a
    batched ``(n_rows, n_words)`` draw is *bit-identical* to ``n_rows``
    sequential :func:`random_words` calls -- callers can batch hot loops
    without perturbing any seeded evaluation verdict.
    """
    return rng.integers(0, 1 << 64, size=(n_rows, n_words), dtype=np.uint64)


def constant_words(bit: int, n_words: int) -> np.ndarray:
    """All-lanes-constant bit as a word array."""
    value = _WORD_MAX if bit else np.uint64(0)
    return np.full(n_words, value, dtype=np.uint64)


def random_nonzero_byte(
    rng: np.random.Generator, n_words: int
) -> "list[np.ndarray]":
    """Eight bit-planes of a per-lane uniform byte conditioned non-zero.

    Rejection-samples the all-zero lanes (probability 1/256 per round), so a
    couple of rounds suffice.
    """
    planes = list(random_word_rows(rng, 8, n_words))
    for _ in range(64):
        zero_mask = ~(
            planes[0] | planes[1] | planes[2] | planes[3]
            | planes[4] | planes[5] | planes[6] | planes[7]
        )
        if not np.any(zero_mask):
            return planes
        retry = random_word_rows(rng, 8, n_words)
        for i in range(8):
            planes[i] = planes[i] | (retry[i] & zero_mask)
    raise SimulationError("non-zero byte rejection sampling did not converge")


class StimulusGenerator:
    """Builds per-cycle stimulus functions for a design under test."""

    def __init__(self, dut: DesignUnderTest, n_words: int):
        self.dut = dut
        self.n_words = n_words

    def _drive(
        self,
        rng: np.random.Generator,
        secret_planes_fn: Callable[[], "list[np.ndarray]"],
    ) -> Stimulus:
        dut = self.dut
        n_words = self.n_words
        width = dut.secret_width
        n_shares = dut.n_shares

        n_uniform = sum(len(bus) for bus in dut.uniform_byte_buses)
        n_batched = (
            width * (n_shares - 1) + len(dut.mask_bits) + n_uniform
        )

        def stimulus(cycle: int) -> Dict[int, np.ndarray]:
            values: Dict[int, np.ndarray] = {}
            secret_planes = secret_planes_fn()
            # One batched draw replaces the per-net draws; rows are
            # consumed in the original draw order, so the stimulus is
            # bit-identical to the unbatched version (random_word_rows).
            rows = iter(random_word_rows(rng, n_batched, n_words))
            for bit in range(width):
                accumulated = secret_planes[bit].copy()
                for share in range(n_shares - 1):
                    words = next(rows)
                    values[dut.share_buses[share][bit]] = words
                    accumulated = accumulated ^ words
                values[dut.share_buses[n_shares - 1][bit]] = accumulated
            for mask_net in dut.mask_bits:
                values[mask_net] = next(rows)
            for bus in dut.uniform_byte_buses:
                for net in bus:
                    values[net] = next(rows)
            for bus in dut.nonzero_byte_buses:
                planes = random_nonzero_byte(rng, n_words)
                for net, plane in zip(bus, planes):
                    values[net] = plane
            return values

        return stimulus

    def fixed(self, secret: int, rng: np.random.Generator) -> Stimulus:
        """Stimulus for the fixed group: the same secret byte every cycle."""
        width = self.dut.secret_width
        planes = [
            constant_words((secret >> bit) & 1, self.n_words)
            for bit in range(width)
        ]
        return self._drive(rng, lambda: planes)

    def random(self, rng: np.random.Generator) -> Stimulus:
        """Stimulus for the random group: fresh uniform secret every cycle."""
        width = self.dut.secret_width

        def fresh_planes() -> "list[np.ndarray]":
            return list(random_word_rows(rng, width, self.n_words))

        return self._drive(rng, fresh_planes)
