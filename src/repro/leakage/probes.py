"""Probe extraction and deduplication.

A probe is placed on a net; under an extended probing model it resolves to
an *observation*: a tuple of stable signals at one or two cycles.  Many nets
resolve to the same observation (every net inside the same register-bounded
cone, for instance), so probes are grouped into :class:`ProbeClass` objects
evaluated once -- the same reduction PROLEAD performs on "equivalent probes".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.leakage.model import ProbingModel
from repro.netlist.core import Netlist
from repro.netlist.topo import all_stable_supports


@dataclass(frozen=True)
class ProbeClass:
    """A set of probes with identical extended observations."""

    #: stable nets observed, sorted ascending.
    support: Tuple[int, ...]
    #: relative cycles observed (from :class:`ProbingModel`).
    cycles_back: Tuple[int, ...]
    #: the probed nets belonging to this class.
    members: Tuple[int, ...]

    @property
    def observation_bits(self) -> int:
        """Total bits one observation of this class contains."""
        return len(self.support) * len(self.cycles_back)

    def member_names(self, netlist: Netlist, limit: int = 4) -> str:
        """Comma-separated member net names, truncated at ``limit``."""
        names = [netlist.net_name(n) for n in self.members[:limit]]
        extra = len(self.members) - len(names)
        suffix = f" (+{extra} more)" if extra > 0 else ""
        return ", ".join(names) + suffix

    def support_names(self, netlist: Netlist) -> List[str]:
        """Names of the observed stable nets."""
        return [netlist.net_name(n) for n in self.support]


def default_probe_nets(netlist: Netlist) -> List[int]:
    """Nets a PROLEAD-style evaluation probes: every cell output.

    Constant drivers are excluded (their observation is empty); primary
    inputs are excluded because probing a single fresh share or mask wire is
    trivially independent of the secret -- every non-trivial observation is
    the output of some gate or register, all of which are included.
    """
    probes = []
    for cell in netlist.cells:
        if cell.cell_type.is_constant:
            continue
        probes.append(cell.output)
    return probes


def extract_probe_classes(
    netlist: Netlist,
    model: ProbingModel,
    probe_nets: Optional[Iterable[int]] = None,
    max_support_bits: Optional[int] = None,
) -> Tuple[List[ProbeClass], List[ProbeClass]]:
    """Group probes into observation classes.

    Returns ``(classes, skipped)`` where ``skipped`` contains classes whose
    observation exceeds ``max_support_bits`` stable signals (evaluating the
    full contingency table of such wide observations is statistically
    meaningless at practical sample sizes; PROLEAD exposes similar complexity
    controls).  Observations wider than 63 total bits are always skipped
    (key-packing limit).
    """
    if probe_nets is None:
        probe_nets = default_probe_nets(netlist)
    supports = all_stable_supports(netlist)
    cycles = model.cycles_back

    grouped: Dict[FrozenSet[int], List[int]] = {}
    for net in probe_nets:
        support = supports[net]
        if not support:
            continue
        grouped.setdefault(support, []).append(net)

    classes: List[ProbeClass] = []
    skipped: List[ProbeClass] = []
    for support, members in grouped.items():
        pc = ProbeClass(
            support=tuple(sorted(support)),
            cycles_back=cycles,
            members=tuple(sorted(members)),
        )
        too_wide = max_support_bits is not None and len(support) > max_support_bits
        if too_wide or pc.observation_bits > 63:
            skipped.append(pc)
        else:
            classes.append(pc)
    classes.sort(key=lambda pc: pc.members[0])
    skipped.sort(key=lambda pc: pc.members[0])
    return classes, skipped
