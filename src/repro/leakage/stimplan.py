"""Op-coded stimulus programs: one description, two executors.

A :class:`StimulusPlan` captures a per-cycle stimulus function as a small
straight-line program over *rows* (uint64 word arrays, one per driven net
plus scratch):

========== ===========================================================
``DRAW``   next row from the PCG64 stream (``random_word_rows`` order)
``CONST``  all-lanes broadcast of a scheduled bit column
``COPY``   copy another row
``XOR``    XOR of two rows
``XORC``   XOR of a row with a scheduled bit column broadcast
``NZ8``    eight bit-planes of a rejection-sampled non-zero byte
========== ===========================================================

The same program can be executed two ways with bit-identical results:

* the plan itself is a callable ``stimulus(cycle) -> {net: words}``,
  interpreted in numpy against the live ``rng`` -- a drop-in replacement
  for the closures it supersedes, usable by every engine;
* the native engine reads the flat op/schedule arrays plus the PCG64
  state snapshot (:meth:`rng_state`) and runs the whole program inside
  the C kernel (``repro.netlist.native``), never touching Python per
  cycle.

Bit-compatibility contract: ``DRAW`` consumes the stream exactly as
:func:`repro.leakage.traces.random_word_rows` does (full-range uint64
draws are stream-transparent, so batching is free), and ``NZ8`` follows
:func:`repro.leakage.traces.random_nonzero_byte` word for word,
including the draw-then-merge retry order and the give-up-after-64
rounds error.  A plan therefore produces the same words no matter which
executor runs it -- checkpoints, resumes, and verdicts stay
byte-identical across engines.

A plan must have a single consumer: interleaving Python interpretation
with native execution of the same plan would consume the stream twice.
:meth:`rng_state` refuses to hand out the snapshot once the Python
interpreter has advanced the generator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.leakage.traces import (
    random_nonzero_byte,
    random_word_rows,
)

_WORD_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)

OP_DRAW = 0
OP_CONST = 1
OP_COPY = 2
OP_XOR = 3
OP_XORC = 4
OP_NZ8 = 5

OP_NAMES = {
    OP_DRAW: "DRAW",
    OP_CONST: "CONST",
    OP_COPY: "COPY",
    OP_XOR: "XOR",
    OP_XORC: "XORC",
    OP_NZ8: "NZ8",
}


class _Group:
    """A vectorizable run of same-opcode, dependency-free ops."""

    __slots__ = ("code", "dst", "a", "b")

    def __init__(self, code: int, dst, a, b):
        self.code = code
        self.dst = np.asarray(dst, dtype=np.intp)
        self.a = np.asarray(a, dtype=np.intp)
        self.b = np.asarray(b, dtype=np.intp)


class _Region:
    """Ops between two NZ8 barriers: hoisted draws + exec groups."""

    __slots__ = ("draw_dsts", "groups")

    def __init__(self, draw_dsts, groups):
        self.draw_dsts = np.asarray(draw_dsts, dtype=np.intp)
        self.groups = groups


class StimulusPlan:
    """A compiled stimulus program (see module docstring).

    Instances are callables with the standard stimulus signature and are
    built through :class:`StimulusPlanBuilder`.
    """

    def __init__(
        self,
        *,
        n_words: int,
        period: int,
        ops: np.ndarray,
        row_nets: Sequence[int],
        sched: np.ndarray,
        rng: np.random.Generator,
    ):
        self.n_words = int(n_words)
        self.period = int(period)
        self.ops = np.ascontiguousarray(ops, dtype=np.int64)
        self.row_nets = list(row_nets)
        self.sched = np.ascontiguousarray(sched, dtype=np.uint8)
        self.rng = rng
        self.n_rows = len(self.row_nets)
        self.calls = 0
        self._bound: List[Tuple[int, int]] = [
            (row, net)
            for row, net in enumerate(self.row_nets)
            if net >= 0
        ]
        self._segments = self._segment()
        self._rng_state = self._snapshot_state(rng)

    # ------------------------------------------------------------ metadata

    @property
    def nets(self) -> "list[int]":
        """Nets this plan drives, in binding order."""
        return [net for _, net in self._bound]

    @staticmethod
    def _snapshot_state(
        rng: np.random.Generator,
    ) -> Optional[Tuple[int, int]]:
        bit_gen = rng.bit_generator
        if type(bit_gen).__name__ != "PCG64":
            return None
        state = bit_gen.state["state"]
        return (int(state["state"]), int(state["inc"]))

    def rng_state(self) -> Tuple[int, int]:
        """The (state, inc) PCG64 snapshot taken at construction.

        Raises if the generator is not PCG64 or if the Python
        interpreter has already consumed from it (a plan has exactly one
        executor; see module docstring).
        """
        if self._rng_state is None:
            raise SimulationError(
                "stimulus plan generator is not PCG64; no native snapshot"
            )
        if self.calls:
            raise SimulationError(
                "stimulus plan already interpreted in python; "
                "the PCG64 snapshot is stale"
            )
        return self._rng_state

    # ------------------------------------------------------- interpretation

    def _segment(self) -> list:
        """Split ops into NZ8-delimited regions of vectorizable groups.

        Draws never read rows, so hoisting every DRAW of a region into
        one batched ``random_word_rows`` call preserves both the stream
        order and the data dependencies (each destination row is written
        exactly once -- the builder enforces it).
        """
        segments: list = []
        draw_dsts: List[int] = []
        groups: List[_Group] = []
        cur_code = -1
        cur_dst: List[int] = []
        cur_a: List[int] = []
        cur_b: List[int] = []
        written: set = set()

        def flush_group():
            nonlocal cur_code, cur_dst, cur_a, cur_b, written
            if cur_dst:
                groups.append(_Group(cur_code, cur_dst, cur_a, cur_b))
            cur_code = -1
            cur_dst, cur_a, cur_b = [], [], []
            written = set()

        def flush_region():
            flush_group()
            nonlocal draw_dsts, groups
            if draw_dsts or groups:
                segments.append(_Region(draw_dsts, groups))
            draw_dsts, groups = [], []

        for code, dst, a, b in self.ops:
            code, dst, a, b = int(code), int(dst), int(a), int(b)
            if code == OP_NZ8:
                flush_region()
                segments.append(dst)
                continue
            if code == OP_DRAW:
                draw_dsts.append(dst)
                continue
            reads = ()
            if code in (OP_COPY, OP_XORC):
                reads = (a,)
            elif code == OP_XOR:
                reads = (a, b)
            if code != cur_code or any(r in written for r in reads):
                flush_group()
                cur_code = code
            cur_dst.append(dst)
            cur_a.append(a)
            cur_b.append(b)
            written.add(dst)
        flush_region()
        return segments

    def _broadcast(self, cols: np.ndarray, step: int) -> np.ndarray:
        bits = self.sched[cols, step].astype(bool)
        return np.where(bits[:, None], _WORD_MAX, np.uint64(0))

    def __call__(self, cycle: int) -> Dict[int, np.ndarray]:
        self.calls += 1
        step = cycle % self.period
        rows = np.empty((max(self.n_rows, 1), self.n_words), dtype=np.uint64)
        for seg in self._segments:
            if isinstance(seg, int):
                planes = random_nonzero_byte(self.rng, self.n_words)
                for i in range(8):
                    rows[seg + i] = planes[i]
                continue
            if len(seg.draw_dsts):
                rows[seg.draw_dsts] = random_word_rows(
                    self.rng, len(seg.draw_dsts), self.n_words
                )
            for g in seg.groups:
                if g.code == OP_CONST:
                    rows[g.dst] = self._broadcast(g.a, step)
                elif g.code == OP_COPY:
                    rows[g.dst] = rows[g.a]
                elif g.code == OP_XOR:
                    rows[g.dst] = rows[g.a] ^ rows[g.b]
                elif g.code == OP_XORC:
                    rows[g.dst] = rows[g.a] ^ self._broadcast(g.b, step)
        return {net: rows[row] for row, net in self._bound}


class StimulusPlanBuilder:
    """Assembles a :class:`StimulusPlan` op by op.

    Ops execute in emission order each cycle; ``draw``/``nonzero8``
    consume the PCG64 stream in that order.  Every op writes a fresh row
    (single assignment); a net may be bound to at most one row.
    """

    def __init__(self, n_words: int, period: int = 1):
        if n_words <= 0:
            raise SimulationError("n_words must be positive")
        if period <= 0:
            raise SimulationError("period must be positive")
        self.n_words = int(n_words)
        self.period = int(period)
        self._ops: List[Tuple[int, int, int, int]] = []
        self._row_nets: List[int] = []
        self._cols: List[List[int]] = []
        self._bound_nets: set = set()

    def _row(self, net: Optional[int]) -> int:
        if net is not None:
            net = int(net)
            if net < 0:
                raise SimulationError("net ids must be non-negative")
            if net in self._bound_nets:
                raise SimulationError(
                    f"net {net} already driven by this plan"
                )
            self._bound_nets.add(net)
        self._row_nets.append(-1 if net is None else net)
        return len(self._row_nets) - 1

    def _check_src(self, row: int) -> int:
        row = int(row)
        if not 0 <= row < len(self._row_nets):
            raise SimulationError(f"source row {row} not yet defined")
        return row

    def column(self, bits: Sequence[int]) -> int:
        """Register a per-step bit column; returns its column index."""
        bits = [1 if b else 0 for b in bits]
        if len(bits) != self.period:
            raise SimulationError(
                f"column has {len(bits)} steps, plan period is {self.period}"
            )
        self._cols.append(bits)
        return len(self._cols) - 1

    def draw(self, net: Optional[int] = None) -> int:
        row = self._row(net)
        self._ops.append((OP_DRAW, row, 0, 0))
        return row

    def const(self, col: int, net: Optional[int] = None) -> int:
        if not 0 <= col < len(self._cols):
            raise SimulationError(f"unknown schedule column {col}")
        row = self._row(net)
        self._ops.append((OP_CONST, row, col, 0))
        return row

    def copy(self, src: int, net: Optional[int] = None) -> int:
        src = self._check_src(src)
        row = self._row(net)
        self._ops.append((OP_COPY, row, src, 0))
        return row

    def xor(self, a: int, b: int, net: Optional[int] = None) -> int:
        a, b = self._check_src(a), self._check_src(b)
        row = self._row(net)
        self._ops.append((OP_XOR, row, a, b))
        return row

    def xor_const(
        self, a: int, col: int, net: Optional[int] = None
    ) -> int:
        a = self._check_src(a)
        if not 0 <= col < len(self._cols):
            raise SimulationError(f"unknown schedule column {col}")
        row = self._row(net)
        self._ops.append((OP_XORC, row, a, col))
        return row

    def nonzero8(self, nets: Sequence[int]) -> "list[int]":
        """Eight consecutive rows holding a non-zero byte's bit planes."""
        if len(nets) != 8:
            raise SimulationError("nonzero8 drives exactly 8 nets")
        rows = [self._row(net) for net in nets]
        if rows != list(range(rows[0], rows[0] + 8)):
            raise SimulationError("nonzero8 rows must be consecutive")
        self._ops.append((OP_NZ8, rows[0], 0, 0))
        return rows

    def build(self, rng: np.random.Generator) -> StimulusPlan:
        ops = np.array(
            self._ops if self._ops else np.empty((0, 4)), dtype=np.int64
        ).reshape(-1, 4)
        if self._cols:
            sched = np.array(self._cols, dtype=np.uint8)
        else:
            sched = np.zeros((0, self.period), dtype=np.uint8)
        return StimulusPlan(
            n_words=self.n_words,
            period=self.period,
            ops=ops,
            row_nets=self._row_nets,
            sched=sched,
            rng=rng,
        )
