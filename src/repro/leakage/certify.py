"""Exact verification at scale: sharded enumeration + compositional proofs.

Two engines turn the sampled verdicts of the evaluation campaigns into
*proofs*:

* :class:`ShardedExactAnalyzer` splits the ``2^k`` randomness/secret
  assignment space of each probe class into lane-aligned shards, executes
  them across worker processes, and merges the per-shard exact counts --
  bit-identical to the serial single-shot enumeration for any shard size or
  worker count, with checkpoint/resume in the campaign container format.
  This raises the feasible enumeration budget well past what a single
  bitsliced call can hold in memory.

* :class:`CompositionalChecker` decomposes a hierarchical netlist into its
  registered gadget regions (:func:`repro.netlist.topo.gadget_regions`),
  runs the :mod:`repro.leakage.sni` enumeration per gadget -- classic
  (stable-value) probes in isolation, glitch-robust probes on the gadget's
  register-bounded fan-in slice -- and applies first-order composition
  rules to emit a whole-circuit certificate or a concrete counterexample
  probe set.  Because regions partition the cells, a single probe lies in
  exactly one region, so "every region's probes are 1-NI on its slice"
  implies first-order glitch-robust probing security of the whole circuit;
  gadgets failing the (deliberately conservative) NI check fall back to
  exact per-probe-class enumeration, which decides them.  Randomness reuse
  across gadgets -- the paper's subject -- is detected from the mask
  fan-in footprints and reported alongside the violations it causes.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import engines as engine_registry
from repro.errors import (
    CheckpointCorrupt,
    CheckpointError,
    ExactAnalysisInfeasible,
    MaskingError,
)
from repro.leakage.dut import DesignUnderTest
from repro.leakage.exact import EnumerationSetup, ExactAnalyzer, ExactReport
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass
from repro.leakage.sni import (
    GadgetSpec,
    PiniResult,
    SniChecker,
    SniResult,
)
from repro.netlist.core import netlist_content_hash
from repro.netlist.topo import (
    GadgetRegion,
    extract_subnetlist,
    fanin_cells,
    gadget_regions,
    sequential_depth,
    transitive_input_support,
)

Hook = Callable[[str, Dict], None]

#: Default lanes-per-shard exponent: 2^16 lanes keep one shard's simulation
#: comfortably in cache while amortizing task dispatch.
DEFAULT_SHARD_LANE_BITS = 16

#: Smallest allowed shard: 2^6 = 64 lanes = exactly one simulator word, so
#: shard boundaries never split a lane word.
MIN_SHARD_LANE_BITS = 6


# --------------------------------------------------------------- shard plan


@dataclass(frozen=True)
class ShardPlan:
    """Lane-aligned split of one probe class's assignment space."""

    total_bits: int
    lane_bits: int

    @property
    def n_shards(self) -> int:
        """Number of shards covering the space."""
        return 1 << (self.total_bits - self.lane_bits)

    @property
    def lanes_per_shard(self) -> int:
        """Lanes simulated per shard."""
        return 1 << self.lane_bits

    @classmethod
    def plan(cls, total_bits: int, shard_lane_bits: int) -> "ShardPlan":
        """Shard a ``2^total_bits`` space into ``2^shard_lane_bits`` lanes.

        Requests below :data:`MIN_SHARD_LANE_BITS` are raised to it so a
        shard is always a whole number of 64-lane simulator words; a space
        smaller than one shard degrades to a single (serial) shard.
        """
        effective = max(MIN_SHARD_LANE_BITS, shard_lane_bits)
        return cls(
            total_bits=total_bits, lane_bits=min(effective, total_bits)
        )


def merge_shard_counts(
    keys: np.ndarray,
    histogram: np.ndarray,
    shard_keys: np.ndarray,
    shard_rows: np.ndarray,
    shard_counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold one shard's ``(keys, rows, counts)`` into the running histogram.

    ``keys`` is the sorted union of observation keys seen so far and
    ``histogram`` the full ``(2^u, len(keys))`` count matrix.  Merging is a
    sorted key union plus elementwise addition -- commutative and
    associative, so any merge order (and any shard plan) produces the same
    final table as the serial single-shot enumeration.
    """
    union = np.union1d(keys, shard_keys)
    if union.size != keys.size:
        expanded = np.zeros((histogram.shape[0], union.size), dtype=np.int64)
        expanded[:, np.searchsorted(union, keys)] = histogram
        histogram = expanded
        keys = union
    if shard_keys.size:
        positions = np.searchsorted(keys, shard_keys)
        histogram[np.ix_(shard_rows, positions)] += shard_counts
    return keys, histogram


# ------------------------------------------------------------ worker plumbing

#: Analyzer owned by a worker process (set by the pool initializer).
_WORKER_ANALYZER: Optional[ExactAnalyzer] = None


def _init_exact_worker(payload: bytes) -> None:
    global _WORKER_ANALYZER
    dut, model, max_enum_bits, max_window, engine = pickle.loads(payload)
    _WORKER_ANALYZER = ExactAnalyzer(
        dut, model, max_enum_bits=max_enum_bits, max_window=max_window,
        engine=engine,
    )


def _exact_shard_task(
    task: Tuple[int, int, int]
) -> Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]:
    class_index, shard_index, lane_bits = task
    analyzer = _WORKER_ANALYZER
    probe_class = analyzer.probe_classes[class_index]
    keys, rows, counts = analyzer.count_shard(
        probe_class, shard_index=shard_index, shard_lane_bits=lane_bits
    )
    return class_index, shard_index, keys, rows, counts


# ------------------------------------------------------------ sharded engine


class ShardedExactAnalyzer:
    """Parallel, checkpointed exhaustive enumeration of probe classes.

    Wraps an :class:`ExactAnalyzer` and schedules each probe class's shard
    plan across a process pool.  Exact-count merges commute, so results are
    bit-identical to the serial analyzer for any worker count.  Checkpoints
    use the campaign CRC container (:func:`pack_checkpoint`): per-class
    merged histograms plus the set of completed shards, fingerprinted by
    the netlist hash and analysis configuration.
    """

    def __init__(
        self,
        dut: DesignUnderTest,
        model: ProbingModel = ProbingModel.GLITCH,
        max_enum_bits: int = 24,
        shard_lane_bits: int = DEFAULT_SHARD_LANE_BITS,
        max_window: int = 12,
        checkpoint_every: int = 8,
        engine: str = engine_registry.DEFAULT_ENGINE,
    ):
        self.analyzer = ExactAnalyzer(
            dut, model, max_enum_bits=max_enum_bits, max_window=max_window,
            engine=engine,
        )
        self.shard_lane_bits = shard_lane_bits
        self.checkpoint_every = max(1, checkpoint_every)

    @property
    def dut(self) -> DesignUnderTest:
        """The analyzed design."""
        return self.analyzer.dut

    def shard_plan(self, probe_class: ProbeClass) -> ShardPlan:
        """The shard plan for one probe class (raises when infeasible)."""
        setup = self.analyzer.enumeration_setup(probe_class)
        return ShardPlan.plan(setup.total_bits, self.shard_lane_bits)

    # -------------------------------------------------------- checkpointing

    def _fingerprint(self, fixed_secret: int) -> str:
        blob = json.dumps(
            {
                "kind": "exact-shards",
                "netlist": netlist_content_hash(self.analyzer.dut.netlist),
                "model": self.analyzer.model.name,
                "max_enum_bits": self.analyzer.max_enum_bits,
                "shard_lane_bits": self.shard_lane_bits,
                "fixed_secret": fixed_secret,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _save_checkpoint(
        self, path: str, state: Dict[int, Dict], fingerprint: str
    ) -> None:
        from repro.leakage.campaign import pack_checkpoint

        meta = {
            "version": 1,
            "kind": "exact-shards",
            "fingerprint": fingerprint,
            "classes": {
                str(ci): {"done": sorted(entry["done"])}
                for ci, entry in state.items()
            },
        }
        arrays = {}
        for ci, entry in state.items():
            arrays[f"keys_{ci}"] = entry["keys"]
            arrays[f"hist_{ci}"] = entry["histogram"]
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
            **arrays,
        )
        blob = pack_checkpoint(buffer.getvalue())
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _load_checkpoint(
        self, path: str, fingerprint: str, hook: Optional[Hook]
    ) -> Dict[int, Dict]:
        from repro.leakage.campaign import unpack_checkpoint

        if not os.path.exists(path):
            return {}
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            payload = unpack_checkpoint(blob, path)
            with np.load(io.BytesIO(payload)) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                if meta.get("fingerprint") != fingerprint:
                    raise CheckpointError(
                        f"checkpoint {path} was written by a differently-"
                        "configured exact analysis; refusing to resume"
                    )
                state: Dict[int, Dict] = {}
                for key, entry in meta.get("classes", {}).items():
                    ci = int(key)
                    state[ci] = {
                        "done": set(entry["done"]),
                        "keys": np.array(data[f"keys_{ci}"]),
                        "histogram": np.array(data[f"hist_{ci}"]),
                    }
                return state
        except CheckpointCorrupt:
            quarantine = path + ".corrupt"
            os.replace(path, quarantine)
            if hook is not None:
                hook(
                    "checkpoint_corrupt",
                    {"path": path, "quarantined": quarantine},
                )
            return {}

    # ------------------------------------------------------------- analysis

    def analyze(
        self,
        probe_classes: Optional[Sequence[ProbeClass]] = None,
        fixed_secret: int = 0,
        workers: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        hook: Optional[Hook] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        dispatch: Optional[Callable] = None,
    ) -> ExactReport:
        """Run the sharded exact sweep.

        ``checkpoint`` names a container file written every
        ``checkpoint_every`` shard merges and at every class completion;
        with ``resume=True`` a matching checkpoint's completed shards are
        not recomputed.  ``should_stop`` is polled at shard boundaries; a
        stop saves the checkpoint and returns a
        ``status="truncated:cancelled"`` report covering the classes that
        finished.  ``dispatch`` replaces the execution backend entirely
        (the service's fleet-distributed path): called as
        ``dispatch(pending, merge, should_stop) -> stopped`` with the same
        ``(class_index, shard_index, lane_bits)`` task tuples the process
        pool would run -- shard-count merging commutes, so any completion
        order yields identical final histograms.
        """
        analyzer = self.analyzer
        all_classes = analyzer.probe_classes
        if probe_classes is None:
            selected = list(range(len(all_classes)))
        else:
            index_of = {pc: i for i, pc in enumerate(all_classes)}
            selected = [index_of[pc] for pc in probe_classes]

        report = ExactReport(
            design=analyzer.dut.describe(),
            model=analyzer.model.description,
            fixed_secret=fixed_secret,
        )

        fingerprint = self._fingerprint(fixed_secret)
        state: Dict[int, Dict] = {}
        if checkpoint and resume:
            state = self._load_checkpoint(checkpoint, fingerprint, hook)

        setups: Dict[int, EnumerationSetup] = {}
        plans: Dict[int, ShardPlan] = {}
        tasks: List[Tuple[int, int]] = []
        for ci in selected:
            probe_class = all_classes[ci]
            try:
                setup = analyzer.enumeration_setup(probe_class)
            except ExactAnalysisInfeasible as exc:
                entry = analyzer.infeasible_entry(exc)
                report.infeasible.append(entry)
                self._emit(hook, "probe_infeasible", dict(entry))
                continue
            setups[ci] = setup
            plans[ci] = ShardPlan.plan(setup.total_bits, self.shard_lane_bits)
            entry = state.setdefault(
                ci,
                {
                    "done": set(),
                    "keys": np.zeros(0, dtype=np.uint64),
                    "histogram": np.zeros(
                        (1 << setup.n_secret_bits, 0), dtype=np.int64
                    ),
                },
            )
            tasks.extend(
                (ci, si)
                for si in range(plans[ci].n_shards)
                if si not in entry["done"]
            )
        for probe_class in analyzer.wide_classes:
            entry = analyzer.wide_class_entry(probe_class)
            report.infeasible.append(entry)
            self._emit(hook, "probe_infeasible", dict(entry))

        self._emit(
            hook,
            "certify_start",
            {
                "n_probe_classes": len(setups),
                "n_shards": len(tasks),
                "n_infeasible": len(report.infeasible),
                "workers": workers,
                "resumed_shards": sum(
                    len(entry["done"]) for entry in state.values()
                ),
            },
        )

        stopped = False
        merges_since_save = 0

        def merge(ci: int, si: int, keys, rows, counts) -> None:
            nonlocal merges_since_save
            entry = state[ci]
            entry["keys"], entry["histogram"] = merge_shard_counts(
                entry["keys"], entry["histogram"], keys, rows, counts
            )
            entry["done"].add(si)
            merges_since_save += 1
            self._emit(
                hook,
                "shard_done",
                {
                    "probe_class": ci,
                    "shard": si,
                    "done": len(entry["done"]),
                    "total": plans[ci].n_shards,
                },
            )
            if checkpoint and merges_since_save >= self.checkpoint_every:
                self._save_checkpoint(checkpoint, state, fingerprint)
                merges_since_save = 0
                self._emit(hook, "checkpoint_saved", {"path": checkpoint})

        if tasks:
            stopped = self._run_tasks(
                tasks,
                plans,
                workers,
                merge,
                hook,
                should_stop,
                is_done=lambda ci, si: si in state[ci]["done"],
                dispatch=dispatch,
            )

        for ci in selected:
            if ci not in setups:
                continue
            entry = state[ci]
            if len(entry["done"]) < plans[ci].n_shards:
                continue  # truncated before completion
            report.results.append(
                analyzer.finalize(
                    all_classes[ci],
                    setups[ci],
                    entry["histogram"],
                    fixed_secret,
                )
            )

        if stopped:
            report.status = "truncated:cancelled"
        if checkpoint and (stopped or merges_since_save):
            self._save_checkpoint(checkpoint, state, fingerprint)

        self._emit(
            hook,
            "certify_end",
            {
                "status": report.status,
                "passed": report.passed,
                "n_results": len(report.results),
                "n_infeasible": len(report.infeasible),
            },
        )
        return report

    def _run_tasks(
        self,
        tasks: List[Tuple[int, int]],
        plans: Dict[int, ShardPlan],
        workers: int,
        merge: Callable,
        hook: Optional[Hook],
        should_stop: Optional[Callable[[], bool]],
        is_done: Callable[[int, int], bool],
        dispatch: Optional[Callable] = None,
    ) -> bool:
        """Execute shard tasks, in a pool or serially.  True when stopped."""
        pending = [(ci, si, plans[ci].lane_bits) for ci, si in tasks]
        if dispatch is not None:
            return bool(dispatch(pending, merge, should_stop))
        if workers > 1 and len(pending) > 1:
            try:
                return self._run_pool(pending, workers, merge, should_stop)
            except (OSError, ValueError, pickle.PicklingError) as exc:
                self._emit(
                    hook,
                    "degradation",
                    {
                        "kind": "certify.pool",
                        "detail": f"worker pool unavailable ({exc}); "
                        "running shards serially",
                    },
                )
            except BrokenProcessPool as exc:
                self._emit(
                    hook,
                    "degradation",
                    {
                        "kind": "certify.pool",
                        "detail": f"worker pool died ({exc}); finishing "
                        "remaining shards serially",
                    },
                )
                pending = [
                    task for task in pending if not is_done(task[0], task[1])
                ]
        return self._run_serial(pending, merge, should_stop)

    def _run_pool(
        self,
        pending: List[Tuple[int, int, int]],
        workers: int,
        merge: Callable,
        should_stop: Optional[Callable[[], bool]],
    ) -> bool:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        payload = pickle.dumps(
            (
                self.analyzer.dut,
                self.analyzer.model,
                self.analyzer.max_enum_bits,
                self.analyzer.max_window,
                self.analyzer.engine,
            )
        )
        merged: Set[Tuple[int, int]] = set()
        stopped = False
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_exact_worker,
            initargs=(payload,),
        ) as pool:
            futures = {
                pool.submit(_exact_shard_task, task): task for task in pending
            }
            try:
                for future in as_completed(futures):
                    ci, si, keys, rows, counts = future.result()
                    merge(ci, si, keys, rows, counts)
                    merged.add((ci, si))
                    if should_stop is not None and should_stop():
                        stopped = True
                        break
            finally:
                if stopped:
                    for future in futures:
                        future.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
        if not stopped:
            remainder = [
                task for task in pending if (task[0], task[1]) not in merged
            ]
            if remainder:  # pool died mid-run without raising at submit
                return self._run_serial(remainder, merge, should_stop)
        return stopped

    def _run_serial(
        self,
        pending: List[Tuple[int, int, int]],
        merge: Callable,
        should_stop: Optional[Callable[[], bool]],
    ) -> bool:
        analyzer = self.analyzer
        for ci, si, lane_bits in pending:
            probe_class = analyzer.probe_classes[ci]
            keys, rows, counts = analyzer.count_shard(
                probe_class, shard_index=si, shard_lane_bits=lane_bits
            )
            merge(ci, si, keys, rows, counts)
            if should_stop is not None and should_stop():
                return True
        return False

    @staticmethod
    def _emit(hook: Optional[Hook], event: str, payload: Dict) -> None:
        if hook is not None:
            hook(event, payload)


def run_exact_analysis(
    dut: DesignUnderTest,
    model: ProbingModel = ProbingModel.GLITCH,
    max_enum_bits: int = 24,
    shard_lane_bits: int = DEFAULT_SHARD_LANE_BITS,
    workers: int = 1,
    fixed_secret: int = 0,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    hook: Optional[Hook] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    dispatch: Optional[Callable] = None,
    engine: str = engine_registry.DEFAULT_ENGINE,
) -> ExactReport:
    """One-call sharded exact sweep (the ``mode="exact"`` service path)."""
    sharded = ShardedExactAnalyzer(
        dut,
        model,
        max_enum_bits=max_enum_bits,
        shard_lane_bits=shard_lane_bits,
        engine=engine,
    )
    return sharded.analyze(
        fixed_secret=fixed_secret,
        workers=workers,
        checkpoint=checkpoint,
        resume=resume,
        hook=hook,
        should_stop=should_stop,
        dispatch=dispatch,
    )


# ------------------------------------------------------- compositional check


@dataclass
class GadgetVerdict:
    """Per-gadget outcome of the compositional check."""

    name: str
    #: "shares" for gadgets computing on secret shares, "masks" for pure
    #: randomness logic (derived-mask registers), which is secret-free by
    #: construction and carries no checks.
    kind: str
    n_cells: int
    n_values: int
    n_shares: int
    mask_names: Tuple[str, ...] = ()
    classic: Optional[SniResult] = None
    robust: Optional[SniResult] = None
    pini: Optional[PiniResult] = None
    obstruction: Optional[str] = None
    #: verdict of the exact-enumeration fallback: ``True`` when every probe
    #: class of this gadget has a secret-independent distribution (the
    #: slice-NI failure was conservative), ``False`` when a class leaks,
    #: ``None`` when the fallback did not run.
    exact_confirmed: Optional[bool] = None
    exact_note: Optional[str] = None

    def summary(self) -> str:
        """One line per gadget."""
        if self.kind == "masks":
            return f"{self.name}: randomness logic ({self.n_cells} cells)"
        if self.obstruction:
            return f"{self.name}: OBSTRUCTION -- {self.obstruction}"
        parts = []
        if self.classic is not None:
            parts.append(
                f"classic NI={'yes' if self.classic.is_ni else 'NO'} "
                f"SNI={'yes' if self.classic.is_sni else 'NO'}"
            )
        if self.pini is not None:
            parts.append(f"PINI={'yes' if self.pini.is_pini else 'NO'}")
        if self.robust is not None:
            parts.append(
                f"robust-slice NI={'yes' if self.robust.is_ni else 'NO'}"
            )
        if self.exact_confirmed is not None:
            parts.append(
                "exact="
                + ("secret-independent" if self.exact_confirmed else "LEAKS")
            )
        return (
            f"{self.name}: {self.n_values}x{self.n_shares} shares, "
            f"masks={list(self.mask_names)}: " + ", ".join(parts)
        )


@dataclass
class CertificateReport:
    """Whole-circuit certificate or counterexample set."""

    design: str
    model: str
    order: int
    gadgets: List[GadgetVerdict] = field(default_factory=list)
    #: masks consumed (directly or through derived-mask logic) by more than
    #: one gadget: ``{"mask": name, "gadgets": [names]}``.
    reused_masks: List[Dict[str, object]] = field(default_factory=list)
    obstructions: List[str] = field(default_factory=list)
    #: concrete failing probe sets, named on the original netlist:
    #: ``{"gadget", "probes", "required", "model"}``.
    counterexamples: List[Dict[str, object]] = field(default_factory=list)
    certified: bool = False

    @property
    def passed(self) -> bool:
        """Alias aligning with the evaluation reports."""
        return self.certified

    def to_dict(self) -> Dict:
        """Machine-readable certificate."""
        from repro.leakage.report import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "mode": "certificate",
            "design": self.design,
            "model": self.model,
            "order": self.order,
            "certified": self.certified,
            "passed": self.certified,
            "gadgets": [
                {
                    "name": g.name,
                    "kind": g.kind,
                    "n_cells": g.n_cells,
                    "n_values": g.n_values,
                    "n_shares": g.n_shares,
                    "masks": list(g.mask_names),
                    "classic_ni": g.classic.is_ni if g.classic else None,
                    "classic_sni": g.classic.is_sni if g.classic else None,
                    "pini": g.pini.is_pini if g.pini else None,
                    "robust_ni": g.robust.is_ni if g.robust else None,
                    "exact_confirmed": g.exact_confirmed,
                    "exact_note": g.exact_note,
                    "obstruction": g.obstruction,
                }
                for g in self.gadgets
            ],
            "reused_masks": list(self.reused_masks),
            "obstructions": list(self.obstructions),
            "counterexamples": list(self.counterexamples),
        }

    def format_summary(self) -> str:
        """Human-readable certificate."""
        verdict = (
            f"CERTIFIED (order-{self.order}, {self.model})"
            if self.certified
            else "NOT CERTIFIED"
        )
        lines = [
            f"=== Compositional certificate: {self.design} ===",
            f"  model:   {self.model}",
            f"  gadgets: {len(self.gadgets)}",
            f"  verdict: {verdict}",
        ]
        for entry in self.reused_masks:
            lines.append(
                f"  reused:  {entry['mask']} feeds "
                f"{', '.join(entry['gadgets'])}"
            )
        for obstruction in self.obstructions:
            lines.append(f"  cannot check: {obstruction}")
        for counterexample in self.counterexamples[:5]:
            lines.append(
                f"  counterexample [{counterexample['gadget']}]: probes "
                f"{', '.join(counterexample['probes'])} -- "
                f"{counterexample['detail']}"
            )
        for gadget in self.gadgets:
            lines.append("  " + gadget.summary())
        return "\n".join(lines)


class CompositionalChecker:
    """Per-gadget (S)NI/PINI enumeration + first-order composition rules.

    ``model="classic"`` checks each gadget in isolation on stable wire
    values and certifies when every share gadget is 1-SNI *and* no mask is
    consumed by more than one gadget -- the preconditions of the standard
    SNI composition theorem (and exactly what De Meyer et al.'s manual
    proof assumed away by reusing randomness).

    ``model="robust"`` checks each gadget's probes under glitch-extended
    observation on the gadget's full fan-in slice (probes restricted to the
    gadget's own cells, context logic included so cones cross gadget
    boundaries exactly as in the composed circuit).  Slice 1-NI is
    *sufficient*: the regions partition the cells, so every single probe
    lies in one region and simulates from at most one share per value.  It
    is deliberately not *necessary* -- NI demands the observation
    distribution be a function of the selected shares, while probing
    security only needs the mixture over sharings to be secret-independent
    (the gap the paper's Eq. 9 scheme lives in, and the reason it needed
    evaluation tools rather than composition theorems).  A gadget that
    fails slice NI -- or whose slice exceeds the gadget budget -- therefore
    falls back to exact per-probe-class enumeration of *that gadget's*
    probes on the full circuit: confirmed secret-dependent distributions
    become counterexamples, refuted ones are recorded as conservative NI
    failures.  With the fallback enabled the robust verdict is a complete
    order-1 decision procedure up to the enumeration budget.
    """

    #: transitive-support window (cycles) used to classify boundary nets.
    CLASSIFY_WINDOW = 8

    def __init__(
        self,
        dut: DesignUnderTest,
        model: str = "robust",
        order: int = 1,
        max_gadget_bits: int = 22,
        exact_fallback: bool = True,
        max_enum_bits: int = 24,
        engine: str = engine_registry.DEFAULT_ENGINE,
    ):
        if model not in ("classic", "robust"):
            raise MaskingError(f"unknown composition model {model!r}")
        self.dut = dut
        self.model = model
        self.order = order
        self.max_gadget_bits = max_gadget_bits
        self.exact_fallback = exact_fallback
        self.max_enum_bits = max_enum_bits
        # Engine for the exact-fallback enumeration simulators, resolved
        # through repro.engines (bit-identical across engines; the
        # native kernel just enumerates faster).
        engine_registry.get_engine(engine)
        self.engine = engine
        self.regions = gadget_regions(dut.netlist)
        self._roles = self._build_role_map()
        self._exact_analyzer: Optional[ExactAnalyzer] = None

    def _exact_region(
        self, region: GadgetRegion
    ) -> Tuple[List, List[Dict[str, object]]]:
        """Exact verdicts for every probe class rooted in ``region``.

        Returns ``(leaking_results, infeasible_entries)``.  Classes are
        matched by probe membership; regions partition the cells, so each
        class belongs to exactly one region.
        """
        if self._exact_analyzer is None:
            self._exact_analyzer = ExactAnalyzer(
                self.dut,
                ProbingModel.GLITCH,
                max_enum_bits=self.max_enum_bits,
                engine=self.engine,
            )
        analyzer = self._exact_analyzer
        netlist = self.dut.netlist
        region_nets = {netlist.cells[i].output for i in region.cells}
        leaking = []
        infeasible: List[Dict[str, object]] = []
        for probe_class in analyzer.probe_classes:
            if not region_nets.intersection(probe_class.members):
                continue
            try:
                result = analyzer.analyze_probe_class(probe_class)
            except ExactAnalysisInfeasible as exc:
                infeasible.append(analyzer.infeasible_entry(exc))
                continue
            if result.leaking:
                leaking.append(result)
        for probe_class in analyzer.wide_classes:
            if region_nets.intersection(probe_class.members):
                infeasible.append(analyzer.wide_class_entry(probe_class))
        return leaking, infeasible

    def _build_role_map(self) -> Dict[int, Tuple[str, object]]:
        roles: Dict[int, Tuple[str, object]] = {}
        for share, bus in enumerate(self.dut.share_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("share", (share, bit))
        for net in self.dut.mask_bits:
            roles[net] = ("mask", net)
        for bus_index, bus in enumerate(self.dut.uniform_byte_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("uniform", (bus_index, bit))
        for bus_index, bus in enumerate(self.dut.nonzero_byte_buses):
            for bit, net in enumerate(bus):
                roles[net] = ("nonzero", (bus_index, bit))
        return roles

    # -------------------------------------------------- input classification

    def _classify_input(self, net: int) -> Tuple[str, frozenset]:
        """Classify a region input: ("share", secret bits) or ("mask", primaries).

        A net is share-like when any secret bit reaches it; its signature is
        the set of secret bits, so shares of the same intermediate value
        (identical secret fan-in) group together.  Mask-like nets carry the
        set of primary mask wires feeding them -- the reuse footprint.
        Returns kind "nonzero" for nets touched by non-zero-constrained
        bytes, which the enumeration cannot model.
        """
        roles = self._roles
        if net in roles:
            kind, detail = roles[net]
            if kind == "share":
                return "share", frozenset({detail[1]})
            if kind == "nonzero":
                return "nonzero", frozenset()
            return "mask", frozenset({net})
        support = transitive_input_support(
            self.dut.netlist, net, self.CLASSIFY_WINDOW
        )
        secret_bits = set()
        mask_nets = set()
        has_nonzero = False
        for primary, _age in support:
            kind, detail = roles.get(primary, (None, None))
            if kind == "share":
                secret_bits.add(detail[1])
            elif kind in ("mask", "uniform"):
                mask_nets.add(primary)
            elif kind == "nonzero":
                has_nonzero = True
        if has_nonzero:
            return "nonzero", frozenset()
        if secret_bits:
            return "share", frozenset(secret_bits)
        return "mask", frozenset(mask_nets)

    # ------------------------------------------------------------ gadget spec

    def _isolated_gadget(
        self,
        region: GadgetRegion,
        share_groups: List[List[int]],
        mask_inputs: List[int],
    ) -> Tuple[GadgetSpec, Dict[int, int]]:
        """GadgetSpec of the region in isolation (boundary nets as inputs)."""
        netlist = self.dut.netlist
        sub, mapping = extract_subnetlist(
            netlist, region.cells, f"{netlist.name}.{region.name}"
        )
        spec = GadgetSpec(
            netlist=sub,
            input_shares=[
                [mapping[n] for n in group] for group in share_groups
            ],
            mask_nets=[mapping[n] for n in mask_inputs],
            output_shares=[mapping[n] for n in region.output_nets],
            settle_cycles=sequential_depth(sub) + 2,
        )
        return spec, mapping

    def _slice_gadget(
        self, region: GadgetRegion
    ) -> Tuple[GadgetSpec, Dict[int, int], List[int], Optional[str]]:
        """GadgetSpec of the region's full fan-in slice, primaries as inputs.

        Returns ``(spec, mapping, probe_nets, obstruction)``; on an
        obstruction the other values are None.
        """
        netlist = self.dut.netlist
        cells = fanin_cells(
            netlist, [netlist.cells[i].output for i in region.cells]
        )
        cells |= set(region.cells)
        sub, mapping = extract_subnetlist(
            netlist, cells, f"{netlist.name}.{region.name}.slice"
        )
        if any(
            net in mapping
            for bus in self.dut.nonzero_byte_buses
            for net in bus
        ):
            return (
                None,
                None,
                None,
                f"{region.name}: fan-in slice reads a non-zero-constrained "
                "mask byte, which the (S)NI enumeration cannot model",
            )
        bits_present = sorted(
            {
                bit
                for bus in self.dut.share_buses
                for bit, net in enumerate(bus)
                if net in mapping
            }
        )
        input_shares = []
        for bit in bits_present:
            group = [
                bus[bit]
                for bus in self.dut.share_buses
                if bus[bit] in mapping
            ]
            if len(group) != self.dut.n_shares:
                return (
                    None,
                    None,
                    None,
                    f"{region.name}: slice sees a partial sharing of secret "
                    f"bit {bit}",
                )
            input_shares.append([mapping[n] for n in group])
        mask_nets = [
            mapping[n] for n in self.dut.mask_bits if n in mapping
        ] + [
            mapping[n]
            for bus in self.dut.uniform_byte_buses
            for n in bus
            if n in mapping
        ]
        total_bits = self.dut.n_shares * len(input_shares) + len(mask_nets)
        if total_bits > self.max_gadget_bits:
            return (
                None,
                None,
                None,
                f"{region.name}: glitch-robust slice needs {total_bits} "
                f"enumeration bits (> {self.max_gadget_bits})",
            )
        spec = GadgetSpec(
            netlist=sub,
            input_shares=input_shares,
            mask_nets=mask_nets,
            output_shares=[mapping[n] for n in region.output_nets],
            settle_cycles=sequential_depth(sub) + 2,
        )
        probe_nets = [
            mapping[netlist.cells[i].output]
            for i in region.cells
            if not netlist.cells[i].cell_type.is_constant
        ]
        return spec, mapping, probe_nets, None

    # --------------------------------------------------------------- check

    def check(self) -> CertificateReport:
        """Run the per-gadget checks and apply the composition rules."""
        netlist = self.dut.netlist
        model_name = (
            "glitch-robust probes on gadget fan-in slices"
            if self.model == "robust"
            else "classic probes on stable values, gadgets in isolation"
        )
        report = CertificateReport(
            design=self.dut.describe(), model=model_name, order=self.order
        )
        mask_users: Dict[int, List[str]] = {}

        for region in self.regions:
            share_inputs: Dict[frozenset, List[int]] = {}
            mask_inputs: List[int] = []
            mask_footprint: Set[int] = set()
            obstruction: Optional[str] = None
            for net in region.input_nets:
                kind, signature = self._classify_input(net)
                if kind == "share":
                    share_inputs.setdefault(signature, []).append(net)
                elif kind == "mask":
                    mask_inputs.append(net)
                    mask_footprint.update(signature)
                else:  # nonzero
                    obstruction = (
                        f"{region.name}: input "
                        f"{netlist.net_name(net)} carries a non-zero-"
                        "constrained mask byte"
                    )

            if not share_inputs:
                report.gadgets.append(
                    GadgetVerdict(
                        name=region.name,
                        kind="masks",
                        n_cells=len(region.cells),
                        n_values=0,
                        n_shares=0,
                        mask_names=tuple(
                            netlist.net_name(n) for n in sorted(mask_inputs)
                        ),
                    )
                )
                continue

            for primary in sorted(mask_footprint):
                mask_users.setdefault(primary, []).append(region.name)

            groups = [
                sorted(nets)
                for _, nets in sorted(
                    share_inputs.items(), key=lambda kv: min(kv[1])
                )
            ]
            sizes = {len(g) for g in groups}
            if obstruction is None and len(sizes) != 1:
                obstruction = (
                    f"{region.name}: input values expose unequal share "
                    f"counts {sorted(sizes)}; boundary is not a sharing"
                )
            n_shares = len(groups[0])
            verdict = GadgetVerdict(
                name=region.name,
                kind="shares",
                n_cells=len(region.cells),
                n_values=len(groups),
                n_shares=n_shares,
                mask_names=tuple(
                    netlist.net_name(n) for n in sorted(mask_inputs)
                ),
                obstruction=obstruction,
            )
            report.gadgets.append(verdict)
            if obstruction is not None:
                report.obstructions.append(obstruction)
                continue

            iso_bits = n_shares * len(groups) + len(mask_inputs)
            if iso_bits > self.max_gadget_bits:
                verdict.obstruction = (
                    f"{region.name}: gadget needs {iso_bits} enumeration "
                    f"bits (> {self.max_gadget_bits})"
                )
                report.obstructions.append(verdict.obstruction)
                continue

            iso_spec, iso_map = self._isolated_gadget(
                region, groups, sorted(mask_inputs)
            )
            iso_checker = SniChecker(
                iso_spec, robust=False, max_bits=self.max_gadget_bits
            )
            verdict.classic = iso_checker.check(self.order)
            verdict.pini = iso_checker.check_pini(self.order)

            if self.model == "robust":
                self._check_robust(region, verdict, report)
            else:
                for violation in verdict.classic.sni_violations:
                    report.counterexamples.append(
                        {
                            "gadget": region.name,
                            "probes": list(violation.probe_names),
                            "model": "classic",
                            "detail": "simulating needs "
                            + violation.required_shares,
                        }
                    )

        report.reused_masks = [
            {"mask": netlist.net_name(mask), "gadgets": users}
            for mask, users in sorted(mask_users.items())
            if len(users) > 1
        ]

        share_verdicts = [g for g in report.gadgets if g.kind == "shares"]
        if self.model == "robust":
            report.certified = (
                not report.obstructions
                and bool(share_verdicts)
                and all(
                    (g.robust is not None and g.robust.is_ni)
                    or g.exact_confirmed is True
                    for g in share_verdicts
                )
            )
        else:
            report.certified = (
                not report.obstructions
                and not report.reused_masks
                and bool(share_verdicts)
                and all(
                    g.classic is not None and g.classic.is_sni
                    for g in share_verdicts
                )
            )
        return report

    def _check_robust(
        self,
        region: GadgetRegion,
        verdict: GadgetVerdict,
        report: CertificateReport,
    ) -> None:
        """Slice-NI check with exact-enumeration fallback for one region."""
        spec, _mapping, probe_nets, slice_obstruction = self._slice_gadget(
            region
        )
        candidates = []
        if slice_obstruction is None:
            verdict.robust = SniChecker(
                spec,
                robust=True,
                probe_nets=probe_nets,
                max_bits=self.max_gadget_bits,
            ).check(self.order)
            if verdict.robust.is_ni:
                return
            candidates = verdict.robust.ni_violations

        if not self.exact_fallback:
            if slice_obstruction is not None:
                verdict.obstruction = slice_obstruction
                report.obstructions.append(slice_obstruction)
                return
            for violation in candidates:
                report.counterexamples.append(
                    {
                        "gadget": region.name,
                        "probes": list(violation.probe_names),
                        "model": "glitch-robust-ni",
                        "detail": "NI candidate: simulating needs "
                        + violation.required_shares,
                    }
                )
            return

        leaking, infeasible = self._exact_region(region)
        for result in leaking:
            report.counterexamples.append(
                {
                    "gadget": region.name,
                    "probes": [result.probe_names],
                    "model": "exact-distribution",
                    "detail": (
                        f"{result.n_distinct_distributions} distinct "
                        "per-secret distributions, tv(fixed,rand)="
                        f"{result.tv_fixed_vs_random:.4f}"
                    ),
                }
            )
        if leaking:
            verdict.exact_confirmed = False
            verdict.exact_note = (
                f"{len(leaking)} probe class(es) with secret-dependent "
                "distributions"
            )
        elif infeasible:
            obstruction = (
                f"{region.name}: {len(infeasible)} probe class(es) exceed "
                "the exact enumeration budget; robust verdict undecidable"
            )
            verdict.obstruction = obstruction
            report.obstructions.append(obstruction)
        else:
            verdict.exact_confirmed = True
            verdict.exact_note = (
                "slice over gadget budget; decided by exact enumeration"
                if slice_obstruction is not None
                else "slice NI failure was conservative; every probe "
                "distribution is secret-independent"
            )


# ------------------------------------------------------------------ fixtures


def dom_and_design() -> DesignUnderTest:
    """The first-order DOM-AND as a protocol-complete design under test."""
    from repro.masking.dom import dom_and_first_order
    from repro.netlist.builder import CircuitBuilder

    builder = CircuitBuilder("dom_and_dut")
    x = [builder.input("x0"), builder.input("x1")]
    y = [builder.input("y0"), builder.input("y1")]
    r = builder.input("r")
    z = dom_and_first_order(builder, x, y, r, "g")
    builder.output(z[0], "z0")
    builder.output(z[1], "z1")
    netlist = builder.build()
    return DesignUnderTest(
        netlist=netlist,
        share_buses=[[x[0], y[0]], [x[1], y[1]]],
        mask_bits=[r],
        latency=1,
        output_share_buses=[[netlist.net("z0")], [netlist.net("z1")]],
        metadata={"design": "dom_and"},
    )


def dom_and_pair_design(shared_mask: bool = False) -> DesignUnderTest:
    """Two DOM-ANDs feeding a third -- the paper's composition in miniature.

    With ``shared_mask=True`` the first-layer gadgets consume the *same*
    fresh bit, the randomness reuse whose glitch-extended failure at the
    combining gadget is the paper's headline; with fresh masks the
    composition is certifiable.
    """
    from repro.masking.dom import dom_and_first_order
    from repro.netlist.builder import CircuitBuilder

    name = "dom_pair_shared" if shared_mask else "dom_pair_fresh"
    builder = CircuitBuilder(name)
    a = [builder.input("a0"), builder.input("a1")]
    b = [builder.input("b0"), builder.input("b1")]
    c = [builder.input("c0"), builder.input("c1")]
    d = [builder.input("d0"), builder.input("d1")]
    r1 = builder.input("r1")
    r2 = r1 if shared_mask else builder.input("r2")
    r3 = builder.input("r3")
    u = dom_and_first_order(builder, a, b, r1, "g1")
    v = dom_and_first_order(builder, c, d, r2, "g2")
    z = dom_and_first_order(builder, u, v, r3, "g3")
    builder.output(z[0], "z0")
    builder.output(z[1], "z1")
    netlist = builder.build()
    masks = [r1, r3] if shared_mask else [r1, r2, r3]
    return DesignUnderTest(
        netlist=netlist,
        share_buses=[[a[0], b[0], c[0], d[0]], [a[1], b[1], c[1], d[1]]],
        mask_bits=masks,
        latency=2,
        output_share_buses=[[netlist.net("z0")], [netlist.net("z1")]],
        metadata={"design": name},
    )
