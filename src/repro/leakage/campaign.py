"""Chunked, checkpointable evaluation campaigns.

The paper's headline numbers rest on long evaluation-tool runs (4M
simulations first order, >=100M second order).  A single monolithic
``evaluate()`` pass at that scale holds every lane of both groups in memory
and loses everything on a crash at simulation 3.9M.  A *campaign* runs the
same evaluation as a sequence of bounded-memory chunks over the evaluator's
canonical sampling blocks:

* every block draws from its own ``SeedSequence``-derived RNG stream, so
  the sampled stimulus is invariant under chunking and any block can be
  re-simulated in isolation;
* per-probe contingency tables are accumulated incrementally (the G-test
  composes over histograms), so a chunked campaign's verdicts -- and the
  tables themselves -- are bit-identical to a single pass;
* after each chunk the accumulated tables plus campaign state are written
  to a versioned NPZ checkpoint with an atomic write-rename, so an
  interrupted run resumes from the last completed chunk, re-simulating only
  the chunk that was in flight;
* wall-clock budgets and a decisive-margin early abort stop a run cleanly,
  flagging the partial report ``truncated:<reason>`` instead of losing it;
* a ``MemoryError`` inside a chunk retries that chunk in halves instead of
  aborting the campaign;
* with ``workers > 1`` each chunk's blocks are sharded across a
  :class:`~repro.leakage.parallel.ParallelExecutor` process pool -- blocks
  sample from private ``SeedSequence`` streams and table accumulation
  commutes, so parallel results are bit-identical to serial ones and remain
  compatible with the same checkpoints;
* ``mode="both"`` evaluates first-order probe classes *and* probe pairs
  against one shared simulation per block (shared-trace probe batching)
  instead of simulating the campaign twice;
* with an :class:`~repro.leakage.adaptive.AdaptiveConfig` attached, an
  :class:`~repro.leakage.adaptive.AdaptiveScheduler` classifies every probe
  as decided-leaky / decided-null / undecided at each chunk boundary,
  prunes decided probes from subsequent accumulation passes (the shared
  trace is still simulated once per block; their key extraction and
  histogram updates are skipped), finishes early once everything is
  decided, and -- if the config allows -- escalates the budget of stubborn
  undecided probes up to a hard cap.  The scheduler state travels in the
  checkpoint, so adaptive campaigns resume to the identical decision
  sequence.
"""

from __future__ import annotations

import io
import json
import os
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos import DEFAULT_RETRY, FaultPlane, RetryPolicy, retry_io
from repro.errors import (
    BudgetExceeded,
    CheckpointCorrupt,
    CheckpointError,
    SimulationError,
)
from repro.leakage.adaptive import AdaptiveConfig, AdaptiveScheduler
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.gtest import DEFAULT_THRESHOLD
from repro.leakage.parallel import ParallelExecutor, effective_workers
from repro.leakage.report import LeakageReport

#: Checkpoint format version; bumped on incompatible layout changes.  The
#: CRC container below is transparent to this version: the NPZ payload
#: layout is unchanged, and bare legacy NPZ files still load.
CHECKPOINT_VERSION = 1

#: Leading magic of the checkpoint integrity container.
CHECKPOINT_MAGIC = b"RPCKPT01"


def pack_checkpoint(payload: bytes) -> bytes:
    """Wrap an NPZ payload in the CRC32 integrity container.

    Layout: 8-byte magic, ``<IQ`` (CRC32 of the payload, payload length),
    payload.  The length catches torn/truncated writes cheaply; the CRC
    catches bit rot and flipped bits anywhere in the payload.
    """
    header = struct.pack(
        "<IQ", zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )
    return CHECKPOINT_MAGIC + header + payload


def unpack_checkpoint(blob: bytes, path: str = "<memory>") -> bytes:
    """Verify a checkpoint container and return its NPZ payload.

    Raises :class:`CheckpointCorrupt` on any integrity failure (bad magic,
    torn payload, CRC mismatch).  A blob starting with the zip magic is a
    legacy bare-NPZ checkpoint (pre-container) and passes through
    unchecked -- NPZ's own zip CRCs still apply when it is parsed.
    """
    if blob[:2] == b"PK":
        return blob
    header_len = len(CHECKPOINT_MAGIC) + struct.calcsize("<IQ")
    if len(blob) < header_len or not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointCorrupt(
            f"checkpoint {path!r} has no valid container header"
        )
    crc, length = struct.unpack_from("<IQ", blob, len(CHECKPOINT_MAGIC))
    payload = blob[header_len:]
    if len(payload) != length:
        raise CheckpointCorrupt(
            f"checkpoint {path!r} is torn: {len(payload)} of {length} "
            "payload bytes present"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CheckpointCorrupt(
            f"checkpoint {path!r} failed its CRC32 integrity check"
        )
    return payload


@dataclass
class CampaignConfig:
    """Parameters of one evaluation campaign."""

    #: per-group sample budget (lanes x windows), as for ``evaluate()``.
    n_simulations: int
    n_windows: int = 1
    fixed_secret: int = 0
    threshold: float = DEFAULT_THRESHOLD
    #: samples per chunk (rounded up to whole sampling blocks); None runs
    #: the whole campaign as one chunk.
    chunk_size: Optional[int] = None
    #: checkpoint file path (NPZ); None disables checkpointing.
    checkpoint: Optional[str] = None
    #: wall-clock budget in seconds; exceeded -> truncated report (or
    #: :class:`BudgetExceeded` with ``on_budget="raise"``).
    time_budget: Optional[float] = None
    on_budget: str = "truncate"
    #: stop as soon as some probe's -log10(p) reaches this decisive level.
    early_stop: Optional[float] = None
    #: "first" (univariate), "pairs" (bivariate), or "both" (first-order and
    #: pair probes batched against one shared simulation per block).
    mode: str = "first"
    max_pairs: Optional[int] = 500
    pair_seed: int = 1
    pair_offsets: Tuple[int, ...] = (0,)
    #: worker processes per chunk; 1 runs in-process.
    workers: int = 1
    #: adaptive per-probe scheduling (None keeps the uniform budget, and
    #: the campaign's behaviour -- down to the accumulated bytes -- is
    #: identical to earlier versions).
    adaptive: Optional[AdaptiveConfig] = None
    #: hung-execution deadline in seconds: parallel shards exceeding it
    #: are reaped (worker processes terminated, chunk retried per the
    #: degradation ladder), and the service watchdog uses the same value
    #: as its no-chunk-progress deadline.  ``None`` disables both.
    stall_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("first", "pairs", "both"):
            raise SimulationError(
                "campaign mode must be 'first', 'pairs', or 'both'"
            )
        if self.workers < 1:
            raise SimulationError("workers must be at least 1")
        if self.on_budget not in ("truncate", "raise"):
            raise SimulationError(
                "on_budget must be 'truncate' or 'raise'"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SimulationError("chunk_size must be positive")
        if self.time_budget is not None and self.time_budget <= 0:
            raise SimulationError("time_budget must be positive")
        if self.early_stop is not None and self.early_stop <= 0:
            raise SimulationError("early_stop must be positive")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise SimulationError("stall_timeout must be positive")
        if self.adaptive is not None and self.chunk_size is None:
            raise SimulationError(
                "adaptive scheduling decides at chunk boundaries; "
                "set chunk_size"
            )


@dataclass
class CampaignProgress:
    """Mutable progress record, also surfaced on the final result."""

    blocks_total: int = 0
    blocks_done: int = 0
    chunks_done: int = 0
    resumed_from_block: int = 0
    retries: int = 0

    @property
    def complete(self) -> bool:
        """True once every sampling block has been accumulated."""
        return self.blocks_done >= self.blocks_total


class EvaluationCampaign:
    """Drives a :class:`LeakageEvaluator` chunk by chunk.

    ``hook`` is an optional ``hook(event: str, payload: dict)`` telemetry
    callback invoked on "campaign_start", "chunk_done", "checkpoint_saved",
    and "campaign_end" (plus the pool events forwarded from
    :class:`ParallelExecutor`); it observes progress only and must not
    raise.  ``should_stop`` is an optional zero-argument callable polled at
    chunk boundaries; once it returns true the campaign stops cleanly with
    status ``truncated:cancelled`` -- this is how the evaluation service
    implements job cancellation and graceful shutdown without killing the
    process.
    """

    def __init__(
        self,
        evaluator: LeakageEvaluator,
        config: CampaignConfig,
        hook: Optional[Callable[[str, Dict], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        fault_plane: Optional[FaultPlane] = None,
        retry: Optional[RetryPolicy] = None,
        executor=None,
    ):
        self.evaluator = evaluator
        self.config = config
        self.hook = hook
        self.should_stop = should_stop
        #: chaos fault-injection plane ("checkpoint.write",
        #: "checkpoint.read", "runner.chunk" sites here; also installed on
        #: the evaluator so "engine.compile" and -- via the worker pickle
        #: -- "worker.block" fire).  ``None`` disables injection at zero
        #: cost; production never sets it.
        self.fault_plane = fault_plane
        if fault_plane is not None:
            evaluator.fault_plane = fault_plane
        #: transient-IO retry policy for checkpoint reads and writes.
        self.retry = retry if retry is not None else DEFAULT_RETRY
        #: graceful-degradation provenance taken by *this* campaign
        #: (serial fallback, ...); merged with the evaluator's ladder
        #: steps into the report.  Reset per :meth:`run`.
        self.degradations: List[Dict[str, str]] = []
        self.accumulator = HistogramAccumulator()
        self.progress = CampaignProgress()
        #: worker pool size actually used: the requested count capped at
        #: the visible CPU count (oversubscription is counterproductive).
        self.effective_workers = (
            effective_workers(config.workers) if config.workers > 1 else 1
        )
        self._n_lanes = evaluator.n_lanes_for(
            config.n_simulations, config.n_windows
        )
        self._pairs: List[Tuple[int, int]] = (
            evaluator.select_pairs(config.max_pairs, config.pair_seed)
            if config.mode in ("pairs", "both")
            else []
        )
        #: injected chunk executor (the service's fleet-distributed
        #: executor).  When set, the campaign routes chunk accumulation
        #: through it instead of owning a :class:`ParallelExecutor` pool --
        #: the caller owns its lifecycle and ``workers`` degradation
        #: accounting does not apply.  Any object with the
        #: ``ParallelExecutor.accumulate`` signature works.
        self._injected_executor = executor
        self._executor: Optional[ParallelExecutor] = None
        #: adaptive decision state; built fresh per :meth:`run` (or restored
        #: from the checkpoint), ``None`` for uniform campaigns.
        self.scheduler: Optional[AdaptiveScheduler] = None
        #: lane budget ceiling: the base budget, or -- for adaptive runs
        #: with ``max_budget_factor > 1`` -- the escalated hard cap.
        self._esc_lanes = self._n_lanes
        #: identity of the sliced program currently being simulated (None
        #: until the first sliced chunk, or when slicing is off).  Adaptive
        #: pruning shrinks the active probe set at chunk boundaries; when
        #: the union support cone shrinks with it, the key changes and a
        #: ``program_sliced`` event reports the re-slice.
        self._slice_key: Optional[str] = None

    def _emit(self, event: str, **payload) -> None:
        if self.hook is not None:
            self.hook(event, payload)

    def _note_degradation(self, kind: str, detail: str) -> None:
        entry = {"kind": kind, "detail": detail}
        self.degradations.append(entry)
        self._emit("degradation", **entry)

    def _executor_hook(self, event: str, payload: Dict) -> None:
        """Forward pool telemetry, recording ladder steps as provenance."""
        if event == "serial_fallback":
            self._note_degradation(
                "serial_fallback",
                "worker pool degraded to in-process execution "
                f"({payload.get('error')})",
            )
        self._emit(event, **payload)

    # ------------------------------------------------------------ fingerprint

    def fingerprint(self) -> Dict[str, object]:
        """Identity of the sampling process; checked on resume.

        Everything that changes the simulated stimulus or the table layout
        is included; the chunk size and worker count are deliberately absent
        (sampling is per-block and accumulation commutes, so resuming with a
        different chunking or degree of parallelism is sound -- and
        bit-identical).
        """
        ev = self.evaluator
        cfg = self.config
        fingerprint: Dict[str, object] = {
            "design": ev.dut.describe(),
            "model": ev.model.value,
            "seed": ev.seed,
            "observation": ev.observation,
            "hash_bits": ev.hash_bits,
            "max_support_bits": ev.max_support_bits,
            "block_lanes": ev.block_lanes,
            "n_probe_classes": len(ev.probe_classes),
            "n_simulations": cfg.n_simulations,
            "n_windows": cfg.n_windows,
            "fixed_secret": cfg.fixed_secret,
            "mode": cfg.mode,
            "max_pairs": cfg.max_pairs,
            "pair_seed": cfg.pair_seed,
            "pair_offsets": list(cfg.pair_offsets),
        }
        if cfg.adaptive is not None:
            # Only present when adaptive is on, so checkpoints written by
            # uniform campaigns (any version) keep loading unchanged -- and
            # adaptive/uniform samples are never mixed.
            fingerprint["adaptive"] = cfg.adaptive.to_dict()
        if getattr(ev, "slice_cones", False):
            # Present only when cone slicing is on (checkpoints from
            # pre-slicing versions keep loading).  Sliced simulation is
            # bit-identical to full simulation, so the samples *could* be
            # mixed soundly -- the key exists so a resumed run states the
            # execution mode it continues under, and so the sliced/unsliced
            # property-test resume paths exercise distinct checkpoints.
            fingerprint["slice"] = True
        return fingerprint

    # ------------------------------------------------------------- chunk plan

    def _blocks_total(self) -> int:
        return self.evaluator.block_count(self._n_lanes)

    def _chunk_blocks(self) -> int:
        """Blocks per chunk implied by ``chunk_size`` (>= 1)."""
        cfg = self.config
        if cfg.chunk_size is None:
            return max(1, self._blocks_total())
        chunk_lanes = max(1, cfg.chunk_size // cfg.n_windows)
        return max(
            1,
            (chunk_lanes + self.evaluator.block_lanes - 1)
            // self.evaluator.block_lanes,
        )

    # -------------------------------------------------------------- execution

    def run(self, resume: bool = False) -> LeakageReport:
        """Run (or resume) the campaign and return the final report.

        With ``resume=True`` and an existing checkpoint, completed chunks
        are loaded from disk and only the remaining blocks are simulated; a
        missing checkpoint file simply starts a fresh run.
        """
        cfg = self.config
        base_blocks = self._blocks_total()
        self.scheduler = None
        self.degradations = []
        self._esc_lanes = self._n_lanes
        self._slice_key = None
        if cfg.adaptive is not None:
            n_classes = (
                len(self.evaluator.probe_classes)
                if cfg.mode != "pairs"
                else 0
            )
            self.scheduler = AdaptiveScheduler(
                cfg.adaptive,
                n_classes=n_classes,
                pairs=self._pairs,
                pair_offsets=cfg.pair_offsets,
            )
            self._esc_lanes = self.scheduler.escalation_lanes(self._n_lanes)
        esc_blocks = (
            self.evaluator.block_count(self._esc_lanes)
            if self.scheduler is not None
            else base_blocks
        )
        self.progress = CampaignProgress(blocks_total=base_blocks)
        self.accumulator = HistogramAccumulator()
        next_block = 0
        if (
            resume
            and cfg.checkpoint
            and (
                os.path.exists(cfg.checkpoint)
                or os.path.exists(cfg.checkpoint + ".prev")
            )
        ):
            next_block = self._resume_from_checkpoint(cfg.checkpoint)
            self.progress.resumed_from_block = next_block
            self.progress.blocks_done = next_block
        escalated = next_block > base_blocks
        if (
            self.scheduler is not None
            and next_block >= base_blocks
            and esc_blocks > base_blocks
            and not self.scheduler.all_decided()
        ):
            # Resumed from a checkpoint saved at (or past) the base budget
            # with undecided probes left: re-enter the escalation phase.
            escalated = True
        if escalated:
            self.progress.blocks_total = esc_blocks
        started = time.monotonic()
        status = "complete"
        finished_early = False
        chunk_blocks = self._chunk_blocks()
        if self._injected_executor is not None:
            self._executor = self._injected_executor
        elif cfg.workers > 1 and self.effective_workers == 1:
            # Satellite of the 0.801x BENCH_parallel regression: on hosts
            # where the cap leaves a single effective worker, skip the
            # process pool entirely (fork/pickle overhead with no core to
            # spend it on) and say so in telemetry and provenance.
            self._note_degradation(
                "degraded_serial",
                f"requested {cfg.workers} workers but only 1 is effective "
                "on this host; running serially",
            )
            self._emit(
                "degraded_serial",
                requested_workers=cfg.workers,
                effective_workers=self.effective_workers,
            )
        if self._injected_executor is None and self.effective_workers > 1:
            self._executor = ParallelExecutor(
                self.evaluator,
                self.effective_workers,
                hook=self._executor_hook,
                shard_timeout=cfg.stall_timeout,
            )
        self._emit(
            "campaign_start",
            blocks_total=self.progress.blocks_total,
            chunk_blocks=chunk_blocks,
            resumed_from_block=self.progress.resumed_from_block,
            workers=cfg.workers,
            effective_workers=self.effective_workers,
            n_simulations=cfg.n_simulations,
            mode=cfg.mode,
        )
        # Surface every budget exclusion in telemetry, not just a count:
        # a skipped probe means the verdict is conditional on the budget,
        # which operators should see without parsing the report.
        for entry in self.evaluator.skipped_detail():
            self._emit("probe_skipped", **entry)
        try:
            while next_block < self.progress.blocks_total:
                if self.fault_plane is not None:
                    # Chaos site "runner.chunk": a campaign loop that stops
                    # making progress (wedged IO, livelocked kernel).  The
                    # service watchdog must notice the silence and act.
                    self.fault_plane.maybe_hang("runner.chunk")
                if self.should_stop is not None and self.should_stop():
                    status = "truncated:cancelled"
                    break
                if self.scheduler is not None and self.scheduler.all_decided():
                    finished_early = True
                    break
                if cfg.time_budget is not None:
                    elapsed = time.monotonic() - started
                    if elapsed >= cfg.time_budget:
                        if cfg.on_budget == "raise":
                            raise BudgetExceeded(
                                f"time budget of {cfg.time_budget:g}s "
                                f"exhausted after "
                                f"{self.progress.blocks_done} of "
                                f"{self.progress.blocks_total} blocks"
                            )
                        status = "truncated:time-budget"
                        break
                # A chunk never spans the base/escalation boundary: blocks
                # past ``base_blocks`` size their lanes against the
                # escalated cap, earlier ones against the base budget.
                boundary = (
                    base_blocks
                    if next_block < base_blocks
                    else self.progress.blocks_total
                )
                end = min(next_block + chunk_blocks, boundary)
                self._emit_slice_telemetry()
                # Per-stage wall-clock attribution: the evaluator keeps a
                # cumulative stage_seconds, so the per-chunk cost is a
                # snapshot delta.  Parallel chunks accumulate in worker
                # processes and report zeros here -- attribution covers
                # the serial path (and the in-kernel pipeline).
                stage_before = dict(
                    getattr(self.evaluator, "stage_seconds", {}) or {}
                )
                self._run_chunk_with_retry(next_block, end)
                stage_after = getattr(
                    self.evaluator, "stage_seconds", {}
                ) or {}
                stage_delta = {
                    name: round(
                        seconds - stage_before.get(name, 0.0), 6
                    )
                    for name, seconds in stage_after.items()
                }
                samples_added = (
                    self._lanes_done(end) - self._lanes_done(next_block)
                ) * cfg.n_windows
                next_block = end
                self.progress.blocks_done = next_block
                self.progress.chunks_done += 1
                if self.scheduler is not None:
                    # The scheduler keeps its own chunk counter: it is
                    # restored from checkpoints, while progress.chunks_done
                    # restarts at zero on every resume.
                    decided = self.scheduler.observe(
                        self.accumulator, samples_added
                    )
                    for state in decided:
                        self._emit(
                            "probe_decided",
                            table_id=state.table_id,
                            state=state.state,
                            mlog10p=state.mlog10p,
                            n_samples=state.n_samples,
                            chunk=state.decided_at_chunk,
                        )
                chunk_payload = {
                    "blocks_done": next_block,
                    "blocks_total": self.progress.blocks_total,
                    "chunks_done": self.progress.chunks_done,
                    "elapsed": time.monotonic() - started,
                }
                if stage_delta:
                    chunk_payload["stage_seconds"] = stage_delta
                if self.scheduler is not None:
                    chunk_payload["adaptive"] = self.scheduler.counts()
                self._emit("chunk_done", **chunk_payload)
                if cfg.checkpoint:
                    self._save_checkpoint(cfg.checkpoint, next_block)
                    self._emit(
                        "checkpoint_saved",
                        path=cfg.checkpoint,
                        next_block=next_block,
                    )
                if cfg.early_stop is not None:
                    interim = self._report("interim")
                    if interim.max_mlog10p >= cfg.early_stop:
                        status = "truncated:early-stop"
                        break
                if (
                    self.scheduler is not None
                    and not escalated
                    and next_block >= self.progress.blocks_total
                    and esc_blocks > base_blocks
                    and not self.scheduler.all_decided()
                ):
                    escalated = True
                    self.progress.blocks_total = esc_blocks
                    self._emit(
                        "adaptive_escalated",
                        undecided=self.scheduler.counts()["undecided"],
                        blocks_total=esc_blocks,
                        lanes_cap=self._esc_lanes,
                    )
            if (
                self.scheduler is not None
                and status == "complete"
                and self.scheduler.all_decided()
            ):
                finished_early = (
                    finished_early
                    or next_block < self.progress.blocks_total
                )
            if finished_early:
                self._emit(
                    "adaptive_finished_early",
                    blocks_done=self.progress.blocks_done,
                    blocks_total=self.progress.blocks_total,
                    **self.scheduler.counts(),
                )
        finally:
            if (
                self._executor is not None
                and self._executor is not self._injected_executor
            ):
                self._executor.close()
            self._executor = None
        self._emit(
            "campaign_end",
            status=status,
            blocks_done=self.progress.blocks_done,
            blocks_total=self.progress.blocks_total,
            elapsed=time.monotonic() - started,
        )
        return self._report(status)

    def _run_chunk_with_retry(self, start: int, end: int) -> None:
        """Accumulate blocks ``[start, end)``, splitting on MemoryError.

        The chunk lands in a scratch accumulator that is merged only on
        success, so a failed attempt never double-counts blocks.
        """
        if end - start <= 0:
            return
        try:
            scratch = HistogramAccumulator()
            self._accumulate(scratch, range(start, end))
            self.accumulator.merge(scratch)
        except MemoryError:
            if end - start == 1:
                raise
            self.progress.retries += 1
            middle = (start + end) // 2
            self._run_chunk_with_retry(start, middle)
            self._run_chunk_with_retry(middle, end)

    def _emit_slice_telemetry(self) -> None:
        """Report the sliced program the next chunk will simulate.

        Emits ``program_sliced`` with cell/dispatch/state ratios whenever
        the slice identity changes -- once at campaign start, then again
        each time adaptive pruning shrinks the union support cone enough to
        induce a re-slice (pruning that leaves the cone unchanged reuses
        the cached program and stays silent).
        """
        class_indices, pairs = self._active_selection()
        info = self.evaluator.slice_info(class_indices, pairs)
        if info is None or info["key"] == self._slice_key:
            return
        resliced = self._slice_key is not None
        self._slice_key = info["key"]
        self._emit(
            "program_sliced",
            key=info["key"],
            resliced=resliced,
            **info["stats"],
        )

    def _active_selection(self) -> Tuple[List[int], List[Tuple[int, int]]]:
        """(class_indices, pairs) still accumulating, per mode/scheduler."""
        cfg = self.config
        if cfg.mode == "pairs":
            indices: List[int] = []
        elif self.scheduler is not None:
            indices = self.scheduler.active_class_indices()
        else:
            indices = list(range(len(self.evaluator.probe_classes)))
        pairs = self._pairs
        if self.scheduler is not None and cfg.mode in ("pairs", "both"):
            pairs = self.scheduler.active_pairs()
        return indices, pairs

    def _lanes_done(self, blocks_done: int) -> int:
        """Lanes accumulated after ``blocks_done`` blocks.

        Base blocks partition the base lane budget (last block possibly
        partial); escalation blocks size their lanes against the escalated
        cap, so the total never exceeds ``max_budget_factor * n_lanes``.
        """
        block_lanes = self.evaluator.block_lanes
        base_blocks = self.evaluator.block_count(self._n_lanes)
        if blocks_done <= base_blocks:
            return min(blocks_done * block_lanes, self._n_lanes)
        extra = min(blocks_done * block_lanes, self._esc_lanes)
        extra -= base_blocks * block_lanes
        return self._n_lanes + max(0, extra)

    def _accumulate(self, acc: HistogramAccumulator, blocks: range) -> None:
        cfg = self.config
        class_indices, pairs = self._active_selection()
        # Escalation blocks index lanes past the base budget, so they need
        # the escalated cap as their lane total; chunks never mix the two.
        lanes_cap = (
            self._n_lanes
            if blocks.start < self.evaluator.block_count(self._n_lanes)
            else self._esc_lanes
        )
        if self._executor is not None:
            self._executor.accumulate(
                acc,
                cfg.fixed_secret,
                lanes_cap,
                cfg.n_windows,
                blocks,
                class_indices=class_indices,
                pairs=pairs,
                pair_offsets=cfg.pair_offsets,
            )
        else:
            self.evaluator.accumulate(
                acc,
                cfg.fixed_secret,
                lanes_cap,
                cfg.n_windows,
                class_indices=class_indices,
                pairs=pairs,
                pair_offsets=cfg.pair_offsets,
                blocks=blocks,
            )

    def _report(self, status: str) -> LeakageReport:
        cfg = self.config
        n_samples = self._lanes_done(self.progress.blocks_done) * cfg.n_windows
        if cfg.mode == "pairs":
            report = self.evaluator.pairs_report(
                self.accumulator,
                cfg.fixed_secret,
                n_samples,
                self._pairs,
                cfg.pair_offsets,
                cfg.threshold,
                status=status,
            )
        elif cfg.mode == "both":
            report = self.evaluator.batched_report(
                self.accumulator,
                cfg.fixed_secret,
                n_samples,
                self._pairs,
                cfg.pair_offsets,
                cfg.threshold,
                status=status,
            )
        else:
            report = self.evaluator.first_order_report(
                self.accumulator,
                cfg.fixed_secret,
                n_samples,
                cfg.threshold,
                status=status,
            )
        if self.scheduler is not None:
            report.adaptive = self.scheduler.summary(
                uniform_samples=self._n_lanes * cfg.n_windows
            )
        report.degradations = list(self.degradations) + list(
            getattr(self.evaluator, "degradations", [])
        )
        return report

    # ------------------------------------------------------------ checkpoints

    def _save_checkpoint(self, path: str, next_block: int) -> None:
        """Persist tables plus campaign state, CRC'd and generation-rotated.

        The NPZ payload is serialized in memory, wrapped in the
        :func:`pack_checkpoint` integrity container, and written to a temp
        file (retried on transient :class:`OSError` per :attr:`retry`);
        only then does the previous checkpoint rotate to ``path + ".prev"``
        and the temp file rename over ``path``.  Every step is atomic, so a
        kill at any instant leaves at least one intact generation on disk
        -- resume falls back one generation and stays bit-identical.
        """
        ids, arrays = self.accumulator.state_arrays()
        meta = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint(),
            "next_block": next_block,
            "blocks_total": self.progress.blocks_total,
            "table_ids": ids,
        }
        if self.scheduler is not None:
            meta["adaptive"] = self.scheduler.to_state()
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
            **arrays,
        )
        blob = pack_checkpoint(buffer.getvalue())
        directory = os.path.dirname(os.path.abspath(path)) or "."

        def write_attempt() -> str:
            data = blob
            if self.fault_plane is not None:
                # May raise InjectedFault (retried like real EIO/ENOSPC)
                # or return torn/bit-flipped bytes that "write fine" and
                # only the read-side CRC can catch.
                data = self.fault_plane.filter_write("checkpoint.write", data)
            fd, attempt_path = tempfile.mkstemp(
                prefix=os.path.basename(path) + ".",
                suffix=".tmp",
                dir=directory,
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
            except BaseException:
                if os.path.exists(attempt_path):
                    os.unlink(attempt_path)
                raise
            return attempt_path

        tmp_path: Optional[str] = None
        try:
            tmp_path = retry_io(
                write_attempt,
                self.retry,
                site="checkpoint.write",
                hook=self.hook,
            )
            if os.path.exists(path):
                os.replace(path, path + ".prev")
            os.replace(tmp_path, path)
            tmp_path = None
        except OSError as exc:
            raise CheckpointError(
                f"could not write checkpoint {path!r}: {exc}"
            ) from exc
        finally:
            if tmp_path is not None and os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def _resume_from_checkpoint(self, path: str) -> int:
        """Load the newest intact checkpoint generation.

        Tries the current generation, then ``path + ".prev"``.  A
        generation failing its integrity checks is quarantined to
        ``<generation>.corrupt`` (for post-mortems -- it is never loaded
        again) and the next one takes over; with no intact generation left
        the campaign restarts from block 0.  Every outcome re-simulates
        exactly the blocks the surviving state is missing, so the final
        report is bit-identical regardless of which path was taken.
        Configuration mismatches (:class:`CheckpointError` proper) still
        raise: falling back on those would silently mix incompatible
        samples.
        """
        for generation, candidate in ((0, path), (1, path + ".prev")):
            if not os.path.exists(candidate):
                continue
            try:
                next_block = self._load_checkpoint(candidate)
            except CheckpointCorrupt as exc:
                quarantine: Optional[str] = candidate + ".corrupt"
                try:
                    os.replace(candidate, quarantine)
                except OSError:  # pragma: no cover - quarantine best-effort
                    quarantine = None
                self._emit(
                    "checkpoint_corrupt",
                    path=candidate,
                    quarantine=quarantine,
                    error=str(exc),
                )
                continue
            if generation:
                self._emit(
                    "checkpoint_fallback",
                    path=candidate,
                    generation="prev",
                    next_block=next_block,
                )
            return next_block
        self._emit(
            "checkpoint_fallback", path=path, generation="fresh", next_block=0
        )
        return 0

    def _load_checkpoint(self, path: str) -> int:
        """Restore tables and return the next block to simulate.

        Integrity failures (unreadable file, bad container, CRC mismatch,
        unparseable payload) raise :class:`CheckpointCorrupt` so resume can
        fall back a generation; configuration problems (version or
        fingerprint mismatch) raise :class:`CheckpointError` and always
        surface.
        """

        def read_attempt() -> bytes:
            if self.fault_plane is not None:
                self.fault_plane.maybe_fail("checkpoint.read")
            with open(path, "rb") as handle:
                return handle.read()

        try:
            blob = retry_io(
                read_attempt,
                self.retry,
                site="checkpoint.read",
                hook=self.hook,
            )
        except OSError as exc:
            raise CheckpointCorrupt(
                f"could not read checkpoint {path!r}: {exc}"
            ) from exc
        payload = unpack_checkpoint(blob, path)
        try:
            with np.load(io.BytesIO(payload)) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                if meta.get("version") != CHECKPOINT_VERSION:
                    raise CheckpointError(
                        f"checkpoint {path!r} has version "
                        f"{meta.get('version')!r}, expected "
                        f"{CHECKPOINT_VERSION}"
                    )
                if meta["fingerprint"] != self.fingerprint():
                    raise CheckpointError(
                        f"checkpoint {path!r} was written by a campaign "
                        "with a different configuration; refusing to mix "
                        "incompatible samples"
                    )
                arrays = {
                    key: data[key] for key in data.files if key != "meta"
                }
        except CheckpointError:
            raise
        except Exception as exc:  # zip/JSON/key errors -> corrupt file
            raise CheckpointCorrupt(
                f"could not parse checkpoint {path!r}: {exc}"
            ) from exc
        self.accumulator = HistogramAccumulator.from_state(
            meta["table_ids"], arrays
        )
        if self.scheduler is not None:
            if "adaptive" not in meta:
                raise CheckpointError(
                    f"checkpoint {path!r} has no adaptive scheduler state"
                )
            self.scheduler = AdaptiveScheduler.from_state(meta["adaptive"])
        next_block = int(meta["next_block"])
        max_blocks = self.evaluator.block_count(self._esc_lanes)
        if not 0 <= next_block <= max_blocks:
            raise CheckpointError(
                f"checkpoint {path!r} points at block {next_block} of "
                f"{max_blocks}"
            )
        return next_block


def run_campaign(
    evaluator: LeakageEvaluator,
    config: CampaignConfig,
    resume: bool = False,
) -> LeakageReport:
    """Convenience wrapper: build and run an :class:`EvaluationCampaign`."""
    return EvaluationCampaign(evaluator, config).run(resume=resume)
