"""PROLEAD-style leakage evaluation.

Implements the evaluation methodology of the paper's Section III on our
netlist IR:

* :mod:`repro.leakage.dut` -- the design-under-test protocol (which inputs
  are secret shares, fresh masks, or fresh mask bytes).
* :mod:`repro.leakage.model` -- the probing models (glitch-extended,
  glitch+transition-extended).
* :mod:`repro.leakage.probes` -- probe extraction and deduplication.
* :mod:`repro.leakage.traces` -- bitsliced fixed-vs-random trace generation.
* :mod:`repro.leakage.gtest` -- contingency-table G-tests with rare-bin
  pooling, reporting -log10(p) like PROLEAD.
* :mod:`repro.leakage.evaluator` -- the Monte-Carlo evaluator.
* :mod:`repro.leakage.campaign` -- chunked, checkpointable evaluation
  campaigns over the evaluator (resume, budgets, early stop).
* :mod:`repro.leakage.adaptive` -- per-probe adaptive scheduling: decide
  easy probes early, prune them, spend the budget on uncertain ones.
* :mod:`repro.leakage.faults` -- fault-injection self-validation: the
  evaluator must flag known-broken mutants and pass the clean design.
* :mod:`repro.leakage.exact` -- exact (SILVER-style) distribution analysis by
  exhaustive randomness enumeration for small supports.
* :mod:`repro.leakage.certify` -- exact verification at scale: sharded
  exhaustive enumeration across worker processes (bit-identical to serial,
  checkpointable) and compositional (S)NI/PINI certificates over the
  netlist's gadget decomposition with exact-enumeration fallback.
"""

from repro.leakage.adaptive import (
    AdaptiveConfig,
    AdaptiveScheduler,
    ProbeState,
)
from repro.leakage.campaign import (
    CampaignConfig,
    EvaluationCampaign,
    run_campaign,
)
from repro.leakage.certify import (
    CertificateReport,
    CompositionalChecker,
    ShardedExactAnalyzer,
    run_exact_analysis,
)
from repro.leakage.dut import DesignUnderTest
from repro.leakage.faults import FaultSpec, SelfCheckMatrix, run_self_check
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.leakage.gtest import g_test, g_test_from_counts
from repro.leakage.evaluator import HistogramAccumulator, LeakageEvaluator
from repro.leakage.exact import ExactAnalyzer
from repro.leakage.periodic import PeriodicLeakageEvaluator
from repro.leakage.report import LeakageReport, ProbeResult
from repro.leakage.sni import GadgetSpec, SniChecker

__all__ = [
    "AdaptiveConfig",
    "AdaptiveScheduler",
    "CampaignConfig",
    "ProbeState",
    "DesignUnderTest",
    "EvaluationCampaign",
    "FaultSpec",
    "HistogramAccumulator",
    "ProbingModel",
    "ProbeClass",
    "SelfCheckMatrix",
    "extract_probe_classes",
    "g_test",
    "g_test_from_counts",
    "run_campaign",
    "run_self_check",
    "LeakageEvaluator",
    "PeriodicLeakageEvaluator",
    "ExactAnalyzer",
    "CertificateReport",
    "CompositionalChecker",
    "ShardedExactAnalyzer",
    "run_exact_analysis",
    "LeakageReport",
    "ProbeResult",
    "GadgetSpec",
    "SniChecker",
]
