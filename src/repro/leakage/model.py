"""Probing models (Section II-D / Section IV of the paper).

* ``GLITCH``: a probe on a net observes every stable signal (primary input
  or register output) in the net's combinational fan-in cone, at the probed
  cycle.  This is the glitch-extended (robust) probing model PROLEAD uses by
  default and the adversarial model of De Meyer et al.
* ``GLITCH_TRANSITION``: additionally observes the same stable signals one
  cycle earlier -- "a probe ... propagates ... to two consecutive inputs of
  such a combinational circuit" (Section IV).
"""

from __future__ import annotations

import enum
from typing import Tuple


class ProbingModel(enum.Enum):
    """The two extended probing models evaluated in the paper."""

    GLITCH = "glitch"
    GLITCH_TRANSITION = "glitch_transition"

    @property
    def cycles_back(self) -> Tuple[int, ...]:
        """Relative cycles a probe observes: 0 = probed cycle, 1 = previous."""
        if self is ProbingModel.GLITCH:
            return (0,)
        return (0, 1)

    @property
    def description(self) -> str:
        """Human-readable model name."""
        if self is ProbingModel.GLITCH:
            return "glitch-extended probing model"
        return "glitch- and transition-extended probing model"
