"""Adaptive per-probe evaluation scheduling.

E9 in ``EXPERIMENTS.md`` shows why uniform sample budgets are the cost wall
of Monte-Carlo leakage evaluation: the paper's central leaks (Eq. (6),
r1=r3) are statistically decisive below 5 k simulations, while secure
designs need the full budget only to *build confidence* -- yet a uniform
campaign spends the same budget on every one of the ~92 Kronecker probe
classes (720 for the full S-box, plus hundreds of probe pairs).  Hybrid
formal/simulation tools (aLEAKator et al.) get their speed from deciding
easy nodes early and spending effort only where the verdict is uncertain.

The :class:`AdaptiveScheduler` does the same for the sampling evaluator.
At every chunk boundary of an :class:`~repro.leakage.campaign.
EvaluationCampaign` it G-tests each still-active probe's *cumulative*
contingency table and classifies the probe:

* **decided-leaky** -- -log10(p) at or above ``decide_threshold`` for
  ``decide_chunks`` consecutive boundaries.  The evidence only grows with
  more samples (E9: linearly), so further budget is wasted on it.
* **decided-null** -- -log10(p) at or below ``null_threshold`` for
  ``decide_chunks`` consecutive boundaries, with at least
  ``min_null_samples`` samples.  ``null_threshold`` sits below the leak
  threshold, so a probe must fall out of a *margin* below the verdict line,
  not merely below the line itself.
* **undecided** -- anything in between (or with oscillating evidence); it
  keeps accumulating.

Decided probes are pruned from subsequent accumulation passes: the shared
trace is still simulated once per block (other probes need it), but the
decided probes' key extraction, bucketing, and histogram updates -- the
dominant cost at realistic probe counts -- are skipped.  When *every* probe
is decided the campaign finishes early; when the base budget runs out with
stubborn undecided probes left, the scheduler can escalate their budget up
to ``max_budget_factor * n_simulations`` (1.0 -- the default -- never
exceeds the uniform budget, which keeps adaptive verdicts comparable to
uniform runs).

Decisions are deterministic: they depend only on the accumulated tables at
chunk boundaries, which are themselves bit-reproducible, so an adaptive
campaign checkpoint (which carries the scheduler state) resumes to the
exact same decision sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.leakage.evaluator import HistogramAccumulator

#: Probe decision states.
UNDECIDED = "undecided"
DECIDED_LEAKY = "leaky"
DECIDED_NULL = "null"


@dataclass(frozen=True)
class AdaptiveConfig:
    """Decision rule of the adaptive scheduler (see module docstring)."""

    decide_threshold: float = 5.0
    null_threshold: float = 4.0
    decide_chunks: int = 2
    min_null_samples: int = 8_192
    max_budget_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.decide_threshold <= 0 or self.null_threshold <= 0:
            raise SimulationError("decision thresholds must be positive")
        if self.null_threshold > self.decide_threshold:
            raise SimulationError(
                "null_threshold must not exceed decide_threshold"
            )
        if self.decide_chunks < 1:
            raise SimulationError("decide_chunks must be at least 1")
        if self.min_null_samples < 1:
            raise SimulationError("min_null_samples must be at least 1")
        if self.max_budget_factor < 1.0:
            raise SimulationError("max_budget_factor must be at least 1.0")

    def to_dict(self) -> Dict:
        return {
            "decide_threshold": self.decide_threshold,
            "null_threshold": self.null_threshold,
            "decide_chunks": self.decide_chunks,
            "min_null_samples": self.min_null_samples,
            "max_budget_factor": self.max_budget_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AdaptiveConfig":
        return cls(**data)


@dataclass
class ProbeState:
    """Mutable decision state of one contingency table (probe or pair)."""

    table_id: str
    state: str = UNDECIDED
    leaky_streak: int = 0
    null_streak: int = 0
    #: per-group samples accumulated while the probe was active.
    n_samples: int = 0
    mlog10p: float = 0.0
    decided_at_chunk: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self.state != UNDECIDED

    def to_dict(self) -> Dict:
        return {
            "table_id": self.table_id,
            "state": self.state,
            "leaky_streak": self.leaky_streak,
            "null_streak": self.null_streak,
            "n_samples": self.n_samples,
            "mlog10p": self.mlog10p,
            "decided_at_chunk": self.decided_at_chunk,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ProbeState":
        return cls(**data)


class AdaptiveScheduler:
    """Per-probe decision tracking over a campaign's chunk sequence.

    The scheduler owns one :class:`ProbeState` per first-order probe class
    (table id ``c<i>``, ``i`` indexing the evaluator's probe classes) and
    per probe-pair table (``p<i>:<j>:<delta>``).  The campaign asks it
    which class indices / pairs are still active before each chunk, feeds
    the accumulated tables back in at the chunk boundary via
    :meth:`observe`, and consults :meth:`all_decided` /
    :meth:`escalation_lanes` for early finish and budget escalation.
    """

    def __init__(
        self,
        config: AdaptiveConfig,
        n_classes: int,
        pairs: Sequence[Tuple[int, int]] = (),
        pair_offsets: Sequence[int] = (0,),
    ):
        self.config = config
        #: number of first-order probe classes tracked (0 in pairs mode).
        self.n_classes = n_classes
        self.pairs = [tuple(p) for p in pairs]
        self.pair_offsets = sorted(set(pair_offsets))
        self.chunks_observed = 0
        self._states: Dict[str, ProbeState] = {}
        for index in range(self.n_classes):
            self._add_state(f"c{index}")
        for i, j in self.pairs:
            for delta in self.pair_offsets:
                self._add_state(f"p{i}:{j}:{delta}")
        if not self._states:
            raise SimulationError(
                "adaptive scheduling needs at least one probe table"
            )

    def _add_state(self, table_id: str) -> None:
        self._states[table_id] = ProbeState(table_id=table_id)

    # ------------------------------------------------------------ queries

    def active_class_indices(self) -> List[int]:
        """Original probe-class indices still accumulating."""
        return [
            index
            for index in range(self.n_classes)
            if not self._states[f"c{index}"].decided
        ]

    def active_pairs(self) -> List[Tuple[int, int]]:
        """Pairs with at least one undecided offset table.

        A pair is pruned only once *every* one of its per-offset tables is
        decided; until then the whole pair stays in the batch (its raw keys
        are shared across offsets anyway).
        """
        return [
            (i, j)
            for i, j in self.pairs
            if any(
                not self._states[f"p{i}:{j}:{delta}"].decided
                for delta in self.pair_offsets
            )
        ]

    def states(self) -> Dict[str, ProbeState]:
        """All probe states keyed by table id (live objects)."""
        return self._states

    def all_decided(self) -> bool:
        return all(state.decided for state in self._states.values())

    def counts(self) -> Dict[str, int]:
        """Decision tally: {"leaky": n, "null": n, "undecided": n}."""
        tally = {DECIDED_LEAKY: 0, DECIDED_NULL: 0, UNDECIDED: 0}
        for state in self._states.values():
            tally[state.state] += 1
        return tally

    def escalation_lanes(self, base_lanes: int) -> int:
        """Total lane budget including escalation headroom.

        With ``max_budget_factor > 1`` and undecided probes left after the
        base budget, the campaign may extend the run up to this many lanes
        -- the budget freed by early decisions is reallocated to the
        stubborn probes, bounded by the hard cap.
        """
        return int(base_lanes * self.config.max_budget_factor)

    # ----------------------------------------------------------- decisions

    def observe(
        self,
        acc: HistogramAccumulator,
        samples_added: int,
        chunk_index: Optional[int] = None,
    ) -> List[ProbeState]:
        """Update decisions at a chunk boundary; returns new decisions.

        ``acc`` holds the *cumulative* tables, ``samples_added`` the
        per-group samples this chunk contributed to every still-active
        table.  Decisions are monotonic: a decided probe never reverts
        (its table no longer accumulates, so its evidence cannot change).
        """
        cfg = self.config
        self.chunks_observed += 1
        if chunk_index is None:
            chunk_index = self.chunks_observed
        decided_now: List[ProbeState] = []
        for state in self._states.values():
            if state.decided:
                continue
            state.n_samples += samples_added
            outcome = acc.test(state.table_id)
            state.mlog10p = outcome.mlog10p
            if outcome.mlog10p >= cfg.decide_threshold:
                state.leaky_streak += 1
                state.null_streak = 0
            elif (
                outcome.mlog10p <= cfg.null_threshold
                and state.n_samples >= cfg.min_null_samples
            ):
                state.null_streak += 1
                state.leaky_streak = 0
            else:
                state.leaky_streak = 0
                state.null_streak = 0
            if state.leaky_streak >= cfg.decide_chunks:
                state.state = DECIDED_LEAKY
            elif state.null_streak >= cfg.decide_chunks:
                state.state = DECIDED_NULL
            if state.decided:
                state.decided_at_chunk = chunk_index
                decided_now.append(state)
        return decided_now

    # -------------------------------------------------------------- report

    def summary(self, uniform_samples: int) -> Dict:
        """The mixed-budget verdict table recorded on the report.

        ``uniform_samples`` is the per-probe budget a uniform run would
        have spent; together with the per-probe actuals it yields the
        probe-sample savings factor the scheduler achieved.
        """
        tally = self.counts()
        spent = sum(s.n_samples for s in self._states.values())
        uniform_total = uniform_samples * len(self._states)
        return {
            "config": self.config.to_dict(),
            "chunks_observed": self.chunks_observed,
            "n_tables": len(self._states),
            "decided_leaky": tally[DECIDED_LEAKY],
            "decided_null": tally[DECIDED_NULL],
            "undecided": tally[UNDECIDED],
            "probe_samples_spent": spent,
            "probe_samples_uniform": uniform_total,
            "probe_sample_savings": (
                round(uniform_total / spent, 3) if spent else None
            ),
            "probes": {
                table_id: {
                    "state": state.state,
                    "n_samples": state.n_samples,
                    "mlog10p": state.mlog10p,
                    "decided_at_chunk": state.decided_at_chunk,
                }
                for table_id, state in sorted(self._states.items())
            },
        }

    # ------------------------------------------------------- serialization

    def to_state(self) -> Dict:
        """JSON-safe snapshot for campaign checkpoints."""
        return {
            "config": self.config.to_dict(),
            "n_classes": self.n_classes,
            "pairs": [list(p) for p in self.pairs],
            "pair_offsets": list(self.pair_offsets),
            "chunks_observed": self.chunks_observed,
            "states": [s.to_dict() for s in self._states.values()],
        }

    @classmethod
    def from_state(cls, data: Dict) -> "AdaptiveScheduler":
        """Rebuild a scheduler (and its decisions) from :meth:`to_state`."""
        scheduler = cls(
            AdaptiveConfig.from_dict(data["config"]),
            n_classes=data["n_classes"],
            pairs=[tuple(p) for p in data["pairs"]],
            pair_offsets=data["pair_offsets"],
        )
        scheduler.chunks_observed = int(data["chunks_observed"])
        for state_dict in data["states"]:
            state = ProbeState.from_dict(state_dict)
            if state.table_id not in scheduler._states:
                raise SimulationError(
                    f"adaptive checkpoint state references unknown table "
                    f"{state.table_id!r}"
                )
            scheduler._states[state.table_id] = state
        return scheduler
