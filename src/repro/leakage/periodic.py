"""Fixed-vs-random evaluation of periodic (protocol-driven) designs.

The :class:`repro.leakage.evaluator.LeakageEvaluator` assumes a free-running
pipeline with i.i.d. per-cycle inputs.  A full cipher core instead executes
a *protocol*: control signals and round keys follow a fixed public schedule
with period P, and one plaintext is consumed per period.  Observations are
then comparable only at equal phase, so the fixed-vs-random test runs per
``(probe class, phase)`` pair across many periods.

This is how PROLEAD analyzes complete masked cipher implementations; the
E11 benchmark applies it to our gate-level masked AES-128 core.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.leakage.evaluator import _mix_hash
from repro.leakage.gtest import DEFAULT_THRESHOLD, g_test
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.leakage.report import LeakageReport, ProbeResult
from repro.netlist.core import Netlist
from repro.netlist.simulate import BitslicedSimulator, Trace, unpack_lanes

Stimulus = Callable[[int], Dict[int, np.ndarray]]


class PeriodicLeakageEvaluator:
    """Fixed-vs-random test for designs driven by a periodic protocol."""

    def __init__(
        self,
        netlist: Netlist,
        period: int,
        model: ProbingModel = ProbingModel.GLITCH,
        max_support_bits: int = 24,
        hash_bits: int = 10,
        probe_nets: Optional[Iterable[int]] = None,
    ):
        self.netlist = netlist
        self.period = period
        self.model = model
        self.hash_bits = hash_bits
        self.probe_classes, self.skipped_classes = extract_probe_classes(
            netlist, model, probe_nets=probe_nets,
            max_support_bits=max_support_bits,
        )

    def evaluate(
        self,
        stimulus_fixed: Stimulus,
        stimulus_random: Stimulus,
        n_lanes: int,
        phases: Sequence[int],
        n_periods: int = 1,
        warmup_periods: int = 1,
        threshold: float = DEFAULT_THRESHOLD,
        design_name: str = "periodic design",
    ) -> LeakageReport:
        """Run the test at the given phases of the protocol period.

        Samples per test = ``n_lanes * n_periods`` (periods are independent
        because each consumes fresh inputs and randomness).  ``phases`` are
        cycle offsets within a period (e.g. the cycles during which a
        particular pipeline stage processes round-1 data).
        """
        max_back = max(self.model.cycles_back)
        observe_cycles: List[int] = []
        record: set = set()
        for period_index in range(warmup_periods, warmup_periods + n_periods):
            for phase in phases:
                t = period_index * self.period + phase
                observe_cycles.append(t)
                for back in self.model.cycles_back:
                    record.add(t - back)
        n_cycles = max(observe_cycles) + 1

        traces = []
        for stimulus in (stimulus_fixed, stimulus_random):
            simulator = BitslicedSimulator(self.netlist, n_lanes)
            traces.append(
                simulator.run(stimulus, n_cycles, record_cycles=record)
            )
        trace_fixed, trace_random = traces

        report = LeakageReport(
            design=design_name,
            model=self.model.description,
            fixed_secret=0,
            n_simulations=n_lanes * n_periods,
            threshold=threshold,
            skipped_probes=[
                pc.member_names(self.netlist) for pc in self.skipped_classes
            ],
        )
        n_phases = len(phases)
        for probe_class in self.probe_classes:
            for phase_index, phase in enumerate(phases):
                cycles = [
                    (warmup_periods + k) * self.period + phase
                    for k in range(n_periods)
                ]
                keys_fixed = self._keys(trace_fixed, probe_class, cycles)
                keys_random = self._keys(trace_random, probe_class, cycles)
                outcome = g_test(keys_fixed, keys_random)
                report.results.append(
                    ProbeResult(
                        probe_names=(
                            probe_class.member_names(self.netlist)
                            + f" @phase{phase}"
                        ),
                        support_names=tuple(
                            probe_class.support_names(self.netlist)
                        ),
                        n_samples=outcome.n_fixed + outcome.n_random,
                        g_statistic=outcome.g_statistic,
                        dof=outcome.dof,
                        mlog10p=outcome.mlog10p,
                        leaking=outcome.is_leaking(threshold),
                    )
                )
        return report

    def _keys(
        self, trace: Trace, probe_class: ProbeClass, cycles: List[int]
    ) -> np.ndarray:
        segments = []
        for t in cycles:
            key = np.zeros(trace.n_lanes, dtype=np.uint64)
            position = 0
            for back in probe_class.cycles_back:
                for net in probe_class.support:
                    bits = unpack_lanes(
                        trace.words(t - back, net), trace.n_lanes
                    )
                    key |= bits.astype(np.uint64) << np.uint64(position)
                    position += 1
            segments.append(key)
        keys = np.concatenate(segments)
        if probe_class.observation_bits > self.hash_bits:
            keys = _mix_hash(keys) >> np.uint64(64 - self.hash_bits)
        return keys
