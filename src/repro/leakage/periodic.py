"""Fixed-vs-random evaluation of periodic (protocol-driven) designs.

The :class:`repro.leakage.evaluator.LeakageEvaluator` assumes a free-running
pipeline with i.i.d. per-cycle inputs.  A full cipher core instead executes
a *protocol*: control signals and round keys follow a fixed public schedule
with period P, and one plaintext is consumed per period.  Observations are
then comparable only at equal phase, so the fixed-vs-random test runs per
``(probe class, phase)`` pair across many periods.

This is how PROLEAD analyzes complete masked cipher implementations; the
E11 benchmark applies it to our gate-level masked AES-128 core.
"""

from __future__ import annotations

from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

import numpy as np

from repro import engines as engine_registry
from repro.errors import SimulationError
from repro.leakage.evaluator import _mix_hash
from repro.leakage.gtest import (
    DEFAULT_THRESHOLD,
    g_test_batch,
    g_test_counts_batch,
)
from repro.leakage.model import ProbingModel
from repro.leakage.probes import ProbeClass, extract_probe_classes
from repro.leakage.report import LeakageReport, ProbeResult
from repro.netlist.core import Netlist
from repro.netlist.simulate import Trace, unpack_lanes

Stimulus = Callable[[int], Dict[int, np.ndarray]]


class PeriodicLeakageEvaluator:
    """Fixed-vs-random test for designs driven by a periodic protocol."""

    def __init__(
        self,
        netlist: Netlist,
        period: int,
        model: ProbingModel = ProbingModel.GLITCH,
        max_support_bits: int = 24,
        hash_bits: int = 10,
        probe_nets: Optional[Iterable[int]] = None,
        slice_cones: bool = True,
        control_schedule: Optional[Mapping[int, Sequence[int]]] = None,
        engine: str = engine_registry.DEFAULT_ENGINE,
    ):
        self.netlist = netlist
        self.period = period
        self.model = model
        self.hash_bits = hash_bits
        # Engine for the unscheduled simulation path, resolved through
        # repro.engines with the standard degradation ladder; the
        # scheduled-cone path has its own dispatch machinery and ignores
        # it.  All engines are bit-identical.
        engine_registry.get_engine(engine)
        self.engine = engine
        #: degradation-ladder steps taken while building simulators.
        self.degradations: List[Dict[str, str]] = []
        # Simulate only the fan-in cone of the probe supports
        # (bit-identical; see repro.netlist.slice).  A recirculating core
        # defeats the static cone -- its state registers feed themselves,
        # so the cone is the whole design -- but ``control_schedule``
        # (per-period scalar values of control-input nets, e.g. from
        # AesCoreHarness.control_net_schedule) lets the slicer cut the
        # feedback at the load/capture muxes and simulate only the
        # per-cycle cone of the observations: on the E11 whole-core
        # workload this skips ~99% of all cell evaluations.
        self.slice_cones = slice_cones
        self.control_schedule = (
            dict(control_schedule) if control_schedule else None
        )
        if self.control_schedule is not None:
            for net, bits in self.control_schedule.items():
                if len(bits) != period:
                    raise ValueError(
                        f"control schedule for net {net} has {len(bits)} "
                        f"entries, expected one period ({period})"
                    )
        #: filled by evaluate(): how the last run was sliced (telemetry).
        self.last_slice_info: Optional[Dict[str, object]] = None
        #: filled by evaluate(): seconds per evaluation stage
        #: (stimulus / simulate / extract / histogram) of the last run.
        self.last_stage_seconds: Optional[Dict[str, float]] = None
        self.probe_classes, self.skipped_classes = extract_probe_classes(
            netlist, model, probe_nets=probe_nets,
            max_support_bits=max_support_bits,
        )

    def _on_degrade(self, from_info, to_info, exc) -> None:
        """Record one engine degradation rung permanently (provenance)."""
        self.engine = to_info.name
        self.degradations.append(
            {
                "kind": f"engine_{to_info.name}",
                "detail": (
                    f"{from_info.name} engine unavailable ({exc}); "
                    f"continuing on the bit-identical {to_info.name} "
                    "engine"
                ),
            }
        )

    def evaluate(
        self,
        stimulus_fixed: Stimulus,
        stimulus_random: Stimulus,
        n_lanes: int,
        phases: Sequence[int],
        n_periods: int = 1,
        warmup_periods: int = 1,
        threshold: float = DEFAULT_THRESHOLD,
        design_name: str = "periodic design",
    ) -> LeakageReport:
        """Run the test at the given phases of the protocol period.

        Samples per test = ``n_lanes * n_periods`` (periods are independent
        because each consumes fresh inputs and randomness).  ``phases`` are
        cycle offsets within a period (e.g. the cycles during which a
        particular pipeline stage processes round-1 data).
        """
        max_back = max(self.model.cycles_back)
        observe_cycles: List[int] = []
        record: set = set()
        for period_index in range(warmup_periods, warmup_periods + n_periods):
            for phase in phases:
                t = period_index * self.period + phase
                observe_cycles.append(t)
                for back in self.model.cycles_back:
                    record.add(t - back)
        n_cycles = max(observe_cycles) + 1

        keep_nets = None
        record_nets = None
        if self.slice_cones:
            roots: set = set()
            for probe_class in self.probe_classes:
                roots.update(probe_class.support)
            if roots:
                keep_nets = sorted(roots)
                record_nets = keep_nets

        self.last_slice_info = None
        stage = {
            "stimulus": 0.0, "simulate": 0.0,
            "extract": 0.0, "histogram": 0.0,
        }
        self.last_stage_seconds = stage
        # The in-kernel pipeline (stimulus + simulate + extract +
        # histogram in one C pass per group) applies when both stimuli
        # are fresh StimulusPlans with a PCG64 snapshot, the keys fit
        # the dense bincount path, and the cones were sliced (so the
        # record-net list is explicit).  It is bit-identical to the
        # python path; anything missing degrades gracefully below.
        pipeline_ready = (
            record_nets is not None
            and self.hash_bits <= 16
            and self._plan_ready(stimulus_fixed)
            and self._plan_ready(stimulus_random)
        )
        traces: List[Trace] = []
        pipeline_sim = None
        pipeline_scheduled = False
        if keep_nets is not None and self.control_schedule is not None:
            from repro.netlist.slice import ScheduledSimulator

            schedule = {
                net: [bits[t % self.period] for t in range(n_cycles)]
                for net, bits in self.control_schedule.items()
            }
            # run() is stateless, so one compiled schedule serves both
            # stimulus streams.
            simulator = None
            sched_engine = "python"
            if self.engine == "native":
                try:
                    from repro.netlist.native import (
                        NativeScheduledSimulator,
                    )

                    simulator = NativeScheduledSimulator(
                        self.netlist, n_lanes, keep_nets,
                        record, n_cycles, schedule,
                    )
                    sched_engine = "native"
                except (ImportError, SimulationError) as exc:
                    self.degradations.append(
                        {
                            "kind": "scheduled_python",
                            "detail": (
                                f"native scheduled kernel unavailable "
                                f"({exc}); continuing on the "
                                "bit-identical python scheduled path"
                            ),
                        }
                    )
            if simulator is None:
                simulator = ScheduledSimulator(
                    self.netlist, n_lanes, keep_nets,
                    record, n_cycles, schedule,
                )
            if sched_engine == "native" and pipeline_ready:
                pipeline_sim = simulator
                pipeline_scheduled = True

            def trace_runner(stimulus):
                return simulator.run(stimulus)

            self.last_slice_info = {
                "mode": "scheduled", "engine": sched_engine,
                **simulator.stats()
            }
        else:
            # run() is stateless on every engine, so one simulator
            # serves both stimulus streams.
            simulator, info = engine_registry.build_simulator(
                self.engine, self.netlist, n_lanes,
                keep_nets=keep_nets,
                record_nets=record_nets,
                on_degrade=self._on_degrade,
            )
            if (
                info.name == "native"
                and pipeline_ready
                and hasattr(simulator, "run_pipeline")
            ):
                pipeline_sim = simulator

            def trace_runner(stimulus):
                return simulator.run(
                    stimulus, n_cycles,
                    record_nets=record_nets, record_cycles=record,
                )

            if keep_nets is not None:
                cone = getattr(simulator, "_cone", None)
                self.last_slice_info = {
                    "mode": "static",
                    "engine": info.name,
                    "cone_nets": len(cone) if cone is not None else None,
                    "n_nets": self.netlist.n_nets,
                }
            else:
                self.last_slice_info = {"mode": "full", "engine": info.name}

        report = LeakageReport(
            design=design_name,
            model=self.model.description,
            fixed_secret=0,
            n_simulations=n_lanes * n_periods,
            threshold=threshold,
            skipped_probes=[
                pc.member_names(self.netlist) for pc in self.skipped_classes
            ],
        )
        labels = [
            (probe_class, phase)
            for probe_class in self.probe_classes
            for phase in phases
        ]

        outcomes = None
        if pipeline_sim is not None:
            try:
                tests = self._count_specs(labels, warmup_periods, n_periods)
                group_counts = []
                for plan in (stimulus_fixed, stimulus_random):
                    if pipeline_scheduled:
                        counts, timings = pipeline_sim.run_pipeline(
                            plan, record_nets, tests, self.hash_bits
                        )
                    else:
                        counts, timings = pipeline_sim.run_pipeline(
                            plan, n_cycles, record_nets, record,
                            tests, self.hash_bits,
                        )
                    group_counts.append(counts)
                    for name, seconds in timings.items():
                        stage[name] += seconds
                t0 = perf_counter()
                outcomes = g_test_counts_batch(
                    list(zip(group_counts[0], group_counts[1]))
                )
                stage["histogram"] += perf_counter() - t0
                self.last_slice_info["pipeline"] = True
            except SimulationError as exc:
                self.degradations.append(
                    {
                        "kind": "pipeline_python",
                        "detail": (
                            f"in-kernel pipeline failed ({exc}); "
                            "continuing on the bit-identical python "
                            "extraction path"
                        ),
                    }
                )
                outcomes = None

        if outcomes is None:
            for stimulus in (stimulus_fixed, stimulus_random):
                t0 = perf_counter()
                traces.append(trace_runner(stimulus))
                stage["simulate"] += perf_counter() - t0
            trace_fixed, trace_random = traces
            # Unpacked bit-planes are shared across probe classes
            # (supports overlap heavily), and the chi-square p-value
            # pass is batched over all (probe class, phase) tests at
            # once -- both are exact (see g_test_batch).
            bit_cache_fixed: Dict = {}
            bit_cache_random: Dict = {}

            def key_pairs():
                # Generator: each pair of key arrays is histogrammed
                # and freed before the next is built (thousands of
                # tests at thousands of lanes would otherwise pin
                # 100s of MB).
                for probe_class, phase in labels:
                    cycles = [
                        (warmup_periods + k) * self.period + phase
                        for k in range(n_periods)
                    ]
                    t0 = perf_counter()
                    pair = (
                        self._keys(
                            trace_fixed, probe_class, cycles,
                            bit_cache_fixed,
                        ),
                        self._keys(
                            trace_random, probe_class, cycles,
                            bit_cache_random,
                        ),
                    )
                    stage["extract"] += perf_counter() - t0
                    yield pair

            t0 = perf_counter()
            outcomes = g_test_batch(key_pairs())
            stage["histogram"] += (
                perf_counter() - t0 - stage["extract"]
            )

        for (probe_class, phase), outcome in zip(labels, outcomes):
            report.results.append(
                ProbeResult(
                    probe_names=(
                        probe_class.member_names(self.netlist)
                        + f" @phase{phase}"
                    ),
                    support_names=tuple(
                        probe_class.support_names(self.netlist)
                    ),
                    n_samples=outcome.n_fixed + outcome.n_random,
                    g_statistic=outcome.g_statistic,
                    dof=outcome.dof,
                    mlog10p=outcome.mlog10p,
                    leaking=outcome.is_leaking(threshold),
                )
            )
        return report

    @staticmethod
    def _plan_ready(stimulus: Stimulus) -> bool:
        """True when the stimulus is a plan the kernel can execute.

        The plan must expose a fresh PCG64 snapshot (``rng_state``
        raises once the python interpreter has consumed from the
        stream, or when the generator is not PCG64).
        """
        rng_state = getattr(stimulus, "rng_state", None)
        if rng_state is None:
            return False
        try:
            rng_state()
        except Exception:
            return False
        return True

    def _count_specs(self, labels, warmup_periods: int, n_periods: int):
        """One CountSpec per (probe class, phase) test.

        Bit positions follow :meth:`_keys` exactly (``for back in
        cycles_back: for net in support``), periods become segments of
        the same count table (the histogram of a concatenation is the
        sum of per-segment histograms), and hashing mirrors the
        ``observation_bits > hash_bits`` rule.
        """
        from repro.netlist.native import CountSpec

        specs = []
        for probe_class, phase in labels:
            segments = []
            for k in range(n_periods):
                t = (warmup_periods + k) * self.period + phase
                bits = []
                position = 0
                for back in probe_class.cycles_back:
                    for net in probe_class.support:
                        bits.append((t - back, net, position))
                        position += 1
                segments.append(tuple(bits))
            hashed = probe_class.observation_bits > self.hash_bits
            key_bits = (
                self.hash_bits if hashed else probe_class.observation_bits
            )
            specs.append(
                CountSpec(tuple(segments), hashed, 1 << key_bits)
            )
        return specs

    def _keys(
        self,
        trace: Trace,
        probe_class: ProbeClass,
        cycles: List[int],
        bit_cache: Optional[Dict] = None,
    ) -> np.ndarray:
        if bit_cache is None:
            bit_cache = {}
        segments = []
        for t in cycles:
            key = np.zeros(trace.n_lanes, dtype=np.uint64)
            position = 0
            for back in probe_class.cycles_back:
                for net in probe_class.support:
                    bits = bit_cache.get((t - back, net))
                    if bits is None:
                        bits = unpack_lanes(
                            trace.words(t - back, net), trace.n_lanes
                        ).astype(np.uint64)
                        bit_cache[(t - back, net)] = bits
                    key |= bits << np.uint64(position)
                    position += 1
            segments.append(key)
        keys = np.concatenate(segments)
        if probe_class.observation_bits > self.hash_bits:
            keys = _mix_hash(keys) >> np.uint64(64 - self.hash_bits)
        return keys
