"""Leakage report structures and formatting (PROLEAD-style output)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

#: Version of every machine-readable dict/JSON this package emits
#: (:meth:`LeakageReport.to_dict`, the self-check coverage matrix, the
#: service wire format).  Bumped on any incompatible field change so
#: long-lived consumers -- dashboards, the verdict cache -- can refuse
#: records they do not understand.
#:
#: Version history:
#:
#: * 1 -- initial machine-readable report/job-record format.
#: * 2 -- adaptive per-probe scheduling: reports gain an optional
#:   ``"adaptive"`` object (per-probe decisions, mixed per-probe sample
#:   counts, budget savings); ``/healthz`` gains ``api_version``.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ProbeResult:
    """Result for one probe class."""

    probe_names: str
    support_names: Tuple[str, ...]
    n_samples: int
    g_statistic: float
    dof: int
    mlog10p: float
    leaking: bool

    def format_row(self) -> str:
        """One summary line for this probe."""
        flag = "LEAK" if self.leaking else "ok"
        return (
            f"{flag:<5} -log10(p)={self.mlog10p:9.2f}  dof={self.dof:<5} "
            f"probe={self.probe_names}"
        )


@dataclass
class LeakageReport:
    """Full outcome of a fixed-vs-random evaluation."""

    design: str
    model: str
    fixed_secret: int
    n_simulations: int
    threshold: float
    results: List[ProbeResult] = field(default_factory=list)
    skipped_probes: List[str] = field(default_factory=list)
    #: per-skip budget detail: one ``{"probe", "support_bits",
    #: "observation_bits", "budget"}`` entry per probe class excluded from
    #: evaluation because its support exceeds the evaluator's
    #: ``max_support_bits`` (or its observation exceeds 63 bits).  Present
    #: in :meth:`to_dict` as ``"skipped"`` only when non-empty, so reports
    #: of fully-evaluated designs stay byte-identical to earlier versions.
    skipped_detail: List[Dict] = field(default_factory=list)
    #: "complete", or "truncated:<reason>" when a campaign stopped early
    #: (time/memory budget, decisive early abort).
    status: str = "complete"
    #: adaptive-scheduler outcome (:meth:`AdaptiveScheduler.summary`):
    #: per-probe decisions and mixed per-probe sample counts.  ``None``
    #: for uniform-budget evaluations -- and then absent from
    #: :meth:`to_dict`, keeping uniform reports identical to earlier
    #: versions apart from the schema bump.
    adaptive: Optional[Dict] = None
    #: graceful-degradation provenance: one ``{"kind", "detail"}`` entry
    #: per ladder step taken while producing this report (parallel pool
    #: fell back to serial, compiled kernel fell back to bitsliced, ...).
    #: Execution provenance, not a statistical result: the verdict bytes
    #: are bit-identical with or without degradation, so :meth:`to_dict`
    #: omits this by default (``provenance=True`` includes it) and the
    #: cached/compared report JSON stays invariant across machines.
    degradations: List[Dict] = field(default_factory=list)

    @property
    def truncated(self) -> bool:
        """True when the evaluation stopped before the requested samples."""
        return self.status != "complete"

    @property
    def leaking_results(self) -> List[ProbeResult]:
        """Probe results flagged as leaking."""
        return [r for r in self.results if r.leaking]

    @property
    def passed(self) -> bool:
        """True when no evaluated probe exceeded the threshold."""
        return not self.leaking_results

    @property
    def max_mlog10p(self) -> float:
        """Worst (largest) -log10(p) across all probes."""
        return max((r.mlog10p for r in self.results), default=0.0)

    @property
    def worst(self) -> Optional[ProbeResult]:
        """The probe result with the largest -log10(p)."""
        if not self.results:
            return None
        return max(self.results, key=lambda r: r.mlog10p)

    def to_dict(
        self, top: Optional[int] = None, provenance: bool = False
    ) -> Dict:
        """Machine-readable form (for JSON dashboards / CI gating).

        ``provenance=True`` additionally includes the ``degradations``
        execution provenance; the default excludes it so the serialized
        verdict is byte-identical across execution environments (which the
        content-addressed cache and the chaos golden comparison rely on).
        """
        ranked = sorted(self.results, key=lambda r: -r.mlog10p)
        if top is not None:
            ranked = ranked[:top]
        out = {
            "schema_version": SCHEMA_VERSION,
            "design": self.design,
            "model": self.model,
            "fixed_secret": self.fixed_secret,
            "n_simulations": self.n_simulations,
            "threshold": self.threshold,
            "status": self.status,
            "passed": self.passed,
            "max_mlog10p": self.max_mlog10p,
            "n_probe_classes": len(self.results),
            "n_skipped": len(self.skipped_probes),
            "results": [asdict(r) for r in ranked],
        }
        if self.skipped_detail:
            out["skipped"] = list(self.skipped_detail)
        if self.adaptive is not None:
            out["adaptive"] = self.adaptive
        if provenance and self.degradations:
            out["degradations"] = list(self.degradations)
        return out

    def to_json(self, top: Optional[int] = None, indent: int = 2) -> str:
        """JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(top), indent=indent)

    def format_summary(self, top: int = 10) -> str:
        """Human-readable report, worst probes first."""
        verdict = "PASS (no leakage detected)" if self.passed else "FAIL (leakage)"
        if self.truncated and self.passed:
            verdict = "INCONCLUSIVE (truncated before completion)"
        lines = [
            f"=== Leakage evaluation: {self.design} ===",
            f"  model:        {self.model}",
            f"  fixed secret: 0x{self.fixed_secret:02X}",
            f"  simulations:  {self.n_simulations}"
            + (f" [{self.status}]" if self.truncated else ""),
            f"  threshold:    -log10(p) > {self.threshold:g}",
            f"  probe classes evaluated: {len(self.results)}"
            + (f" (skipped {len(self.skipped_probes)} wide)" if self.skipped_probes else ""),
            f"  verdict:      {verdict}",
        ]
        for entry in self.skipped_detail[:3]:
            lines.append(
                f"  skipped:      {entry.get('probe')} -- support "
                f"{entry.get('support_bits')} bits > budget "
                f"{entry.get('budget')}"
            )
        if self.adaptive is not None:
            savings = self.adaptive.get("probe_sample_savings")
            lines.append(
                "  adaptive:     "
                f"{self.adaptive['decided_leaky']} leaky / "
                f"{self.adaptive['decided_null']} null / "
                f"{self.adaptive['undecided']} undecided"
                + (f", {savings}x probe-sample savings" if savings else "")
            )
        for entry in self.degradations:
            lines.append(
                f"  degraded:     {entry.get('kind')} -- {entry.get('detail')}"
            )
        ranked = sorted(self.results, key=lambda r: -r.mlog10p)
        for result in ranked[:top]:
            lines.append("  " + result.format_row())
        return "\n".join(lines)
