"""(Strong) Non-Interference verification of small gadgets by enumeration.

De Meyer et al. justified their randomness optimization with a manual
1-SNI proof "aligned with the concept of Strong Non-Interference [16] and
one-time pad transformation [17]".  The paper's whole point is that such a
proof, conducted on *stable* wire values, does not transfer to the
glitch-extended probing model once randomness is reused across gadgets.

This module makes both sides of that story checkable:

* ``robust=False`` -- classic (S)NI on settled wire values: a probe sees one
  wire.  The DOM-AND gadget *is* 1-SNI here, confirming the original proof
  was sound in its own model.
* ``robust=True`` -- glitch-extended probes: a probe sees every stable
  signal in the wire's combinational cone.  Reused-randomness compositions
  that pass the classic check fail here, which is the paper's finding.

Definitions (Barthe et al.): a probe set with ``t_int`` internal and
``t_out`` output-share probes is *simulatable* from input-share subsets
``I_k`` if any two full input-share assignments that agree on the selected
shares induce identical observation distributions (over the fresh masks).
A gadget is t-NI if every set of at most t probes is simulatable with
``|I_k| <= t``; t-SNI additionally requires ``|I_k| <= t_int``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import MaskingError
from repro.netlist.core import Netlist
from repro.netlist.topo import all_stable_supports


@dataclass
class GadgetSpec:
    """A small masked gadget prepared for (S)NI checking.

    ``input_shares[k][i]`` is the net of share ``i`` of input ``k`` (1-bit
    inputs); ``mask_nets`` are the fresh-mask wires; ``output_shares`` are
    the gadget's output share nets.  ``settle_cycles`` flushes pipeline
    registers (inputs held constant), so wire values are their steady
    functions of shares and masks.
    """

    netlist: Netlist
    input_shares: List[List[int]]
    mask_nets: List[int]
    output_shares: List[int]
    settle_cycles: int = 4

    @property
    def n_shares(self) -> int:
        """Shares per input."""
        return len(self.input_shares[0])


@dataclass
class SniViolation:
    """One failing probe set."""

    probe_names: Tuple[str, ...]
    required_shares: str


@dataclass
class SniResult:
    """Verdict of a (S)NI check."""

    order: int
    robust: bool
    is_ni: bool
    is_sni: bool
    n_probe_sets: int
    ni_violations: List[SniViolation] = field(default_factory=list)
    sni_violations: List[SniViolation] = field(default_factory=list)

    def summary(self) -> str:
        """One-line verdict."""
        model = "glitch-robust" if self.robust else "standard"
        return (
            f"order-{self.order} {model} probes over "
            f"{self.n_probe_sets} probe sets: "
            f"NI={'yes' if self.is_ni else 'NO'}, "
            f"SNI={'yes' if self.is_sni else 'NO'}"
        )


@dataclass
class PiniResult:
    """Verdict of a PINI check (Cassiers & Standaert's composable notion).

    PINI strengthens NI by tying simulator shares to *share domains*: a set
    of ``t_int`` internal probes plus output probes on domains ``J`` must be
    simulatable from the input shares of at most ``t_int`` domains plus the
    domains ``J`` themselves -- across all inputs.  PINI gadgets compose
    freely at any order, which is what makes the per-gadget certificate a
    whole-circuit statement.
    """

    order: int
    robust: bool
    is_pini: bool
    n_probe_sets: int
    violations: List[SniViolation] = field(default_factory=list)

    def summary(self) -> str:
        """One-line verdict."""
        model = "glitch-robust" if self.robust else "standard"
        return (
            f"order-{self.order} {model} probes over "
            f"{self.n_probe_sets} probe sets: "
            f"PINI={'yes' if self.is_pini else 'NO'}"
        )


class SniChecker:
    """Exhaustive (S)NI verification, bitsliced over all assignments.

    Internally, every net's steady value is tabulated over all
    ``2^(shares + masks)`` input assignments in one bitsliced simulation;
    per probe set the observation is packed into an integer key, the key
    array is canonicalized over the mask axis (sorted -> digest), and
    simulatability from a share subset reduces to "the digest depends only
    on the selected share bits".
    """

    def __init__(
        self,
        gadget: GadgetSpec,
        robust: bool = False,
        probe_nets: Optional[Sequence[int]] = None,
        max_bits: int = 22,
    ):
        self.gadget = gadget
        self.robust = robust
        self.n_share_bits = sum(len(s) for s in gadget.input_shares)
        self.n_mask_bits = len(gadget.mask_nets)
        total_bits = self.n_share_bits + self.n_mask_bits
        if total_bits > max_bits:
            raise MaskingError(
                f"{total_bits} input/mask bits exceed the enumeration limit"
                f" ({max_bits})"
            )
        #: restrict probe positions to these nets (compositional checking
        #: places probes only on a gadget's own cells while the fan-in
        #: slice provides the glitch-extended context); None probes all.
        self.probe_nets: Optional[Set[int]] = (
            set(probe_nets) if probe_nets is not None else None
        )
        self._observables = self._probe_observables()
        self._tables = self._build_wire_tables()

    # -------------------------------------------------------------- tables

    def _build_wire_tables(self) -> Dict[int, np.ndarray]:
        """Steady per-net bit over every assignment (shares low, masks high)."""
        from repro.leakage.exact import _enum_pattern
        from repro.netlist.simulate import BitslicedSimulator, unpack_lanes

        gadget = self.gadget
        share_nets = [n for group in gadget.input_shares for n in group]
        all_inputs = share_nets + list(gadget.mask_nets)
        n_lanes = 1 << (self.n_share_bits + self.n_mask_bits)
        n_words = (n_lanes + 63) // 64
        patterns = {
            net: _enum_pattern(position, n_words)
            for position, net in enumerate(all_inputs)
        }

        needed = set()
        for nets in self._observables.values():
            needed.update(nets)

        simulator = BitslicedSimulator(gadget.netlist, n_lanes)
        trace = simulator.run(
            lambda cycle: patterns,
            gadget.settle_cycles,
            record_nets=sorted(needed),
            record_cycles={gadget.settle_cycles - 1},
        )
        final = gadget.settle_cycles - 1
        return {
            net: unpack_lanes(trace.words(final, net), n_lanes)
            for net in needed
        }

    def _probe_observables(self) -> Dict[int, Tuple[int, ...]]:
        """Nets a probe on each wire observes (1 wire, or its cone)."""
        netlist = self.gadget.netlist
        candidates = [
            cell.output
            for cell in netlist.cells
            if not cell.cell_type.is_constant
            and (self.probe_nets is None or cell.output in self.probe_nets)
        ]
        if not self.robust:
            return {net: (net,) for net in candidates}
        supports = all_stable_supports(netlist)
        return {net: tuple(sorted(supports[net])) for net in candidates}

    # ----------------------------------------------------------- semantics

    def _share_positions(self) -> List[List[int]]:
        """Bit position of every input share within the assignment index."""
        positions = []
        counter = 0
        for group in self.gadget.input_shares:
            positions.append(list(range(counter, counter + len(group))))
            counter += len(group)
        return positions

    def _digest(self, probes: Sequence[int]) -> np.ndarray:
        """Per-share-assignment digest of the mask-distribution of probes.

        Two share assignments induce the same observation distribution iff
        their digests are equal (the digest hashes the *sorted* observation
        keys along the mask axis, i.e. the distribution as a multiset).
        """
        nets = [
            net for probe in probes for net in self._observables[probe]
        ]
        keys = np.zeros(
            1 << (self.n_share_bits + self.n_mask_bits), dtype=np.uint64
        )
        for position, net in enumerate(nets):
            keys |= self._tables[net].astype(np.uint64) << np.uint64(
                position
            )
        matrix = keys.reshape(1 << self.n_mask_bits, 1 << self.n_share_bits)
        canonical = np.sort(matrix, axis=0)
        # Order-dependent polynomial hash down the sorted mask axis.
        digest = np.zeros(canonical.shape[1], dtype=np.uint64)
        multiplier = np.uint64(0x100000001B3)
        for row in canonical:
            digest = digest * multiplier + (row ^ np.uint64(0x9E3779B9))
        return digest

    def _simulatable_from(
        self, digest: np.ndarray, selected_bits: int
    ) -> bool:
        """Does the digest depend only on the selected share bits?"""
        indices = np.arange(digest.size, dtype=np.uint64)
        projected = indices & np.uint64(selected_bits)
        return bool(np.all(digest == digest[projected.astype(np.int64)]))

    def _exists_simulator(
        self, digest: np.ndarray, max_shares: int
    ) -> bool:
        positions = self._share_positions()
        n_shares = self.gadget.n_shares
        per_input_subsets = []
        for k in range(len(self.gadget.input_shares)):
            options = []
            for size in range(min(max_shares, n_shares) + 1):
                for combo in itertools.combinations(range(n_shares), size):
                    mask = 0
                    for share in combo:
                        mask |= 1 << positions[k][share]
                    options.append(mask)
            per_input_subsets.append(options)
        for selection in itertools.product(*per_input_subsets):
            mask = 0
            for bits in selection:
                mask |= bits
            if self._simulatable_from(digest, mask):
                return True
        return False

    # --------------------------------------------------------------- check

    def check(self, order: int = 1) -> SniResult:
        """Verify t-NI and t-SNI for ``t = order``."""
        netlist = self.gadget.netlist
        output_set = set(self.gadget.output_shares)
        internal = [
            net for net in self._observables if net not in output_set
        ]
        outputs = [net for net in self._observables if net in output_set]

        result = SniResult(
            order=order, robust=self.robust, is_ni=True, is_sni=True,
            n_probe_sets=0,
        )
        all_probes = internal + outputs
        for size in range(1, order + 1):
            for probes in itertools.combinations(all_probes, size):
                result.n_probe_sets += 1
                t_int = sum(1 for p in probes if p not in output_set)
                names = tuple(
                    netlist.net_name(p) for p in probes
                )
                digest = self._digest(probes)
                if not self._exists_simulator(digest, max_shares=size):
                    result.is_ni = False
                    result.ni_violations.append(
                        SniViolation(names, f"more than {size} shares")
                    )
                    result.is_sni = False
                    result.sni_violations.append(
                        SniViolation(names, f"more than {t_int} shares (SNI)")
                    )
                elif not self._exists_simulator(digest, max_shares=t_int):
                    result.is_sni = False
                    result.sni_violations.append(
                        SniViolation(names, f"more than {t_int} shares (SNI)")
                    )
        return result

    def _domain_mask(self, domains: Sequence[int]) -> int:
        """Selected-bit mask of the given share domains across all inputs."""
        positions = self._share_positions()
        mask = 0
        for group in positions:
            for domain in domains:
                if domain < len(group):
                    mask |= 1 << group[domain]
        return mask

    def check_pini(self, order: int = 1) -> PiniResult:
        """Verify t-PINI for ``t = order``.

        Output probes carry the share domain of their position in
        ``output_shares``; internal probes may pick any ``t_int`` extra
        domains.  The probe set must be simulatable from exactly those
        domains' input shares, across every input.
        """
        netlist = self.gadget.netlist
        output_domain = {
            net: i for i, net in enumerate(self.gadget.output_shares)
        }
        n_shares = self.gadget.n_shares
        result = PiniResult(
            order=order, robust=self.robust, is_pini=True, n_probe_sets=0
        )
        all_probes = list(self._observables)
        for size in range(1, order + 1):
            for probes in itertools.combinations(all_probes, size):
                result.n_probe_sets += 1
                out_domains = {
                    output_domain[p] for p in probes if p in output_domain
                }
                t_int = sum(1 for p in probes if p not in output_domain)
                digest = self._digest(probes)
                simulatable = False
                for extra in range(min(t_int, n_shares) + 1):
                    for combo in itertools.combinations(
                        range(n_shares), extra
                    ):
                        selected = self._domain_mask(
                            sorted(out_domains | set(combo))
                        )
                        if self._simulatable_from(digest, selected):
                            simulatable = True
                            break
                    if simulatable:
                        break
                if not simulatable:
                    names = tuple(netlist.net_name(p) for p in probes)
                    result.is_pini = False
                    result.violations.append(
                        SniViolation(
                            names,
                            f"domains beyond {t_int} + output domains "
                            f"{sorted(out_domains)} (PINI)",
                        )
                    )
        return result


def dom_and_gadget(register_inner: bool = True) -> GadgetSpec:
    """The first-order DOM-AND of the paper's Fig. 1c, as a GadgetSpec."""
    from repro.masking.dom import dom_and_first_order
    from repro.netlist.builder import CircuitBuilder

    builder = CircuitBuilder("dom_and_gadget")
    x = [builder.input("x0"), builder.input("x1")]
    y = [builder.input("y0"), builder.input("y1")]
    r = builder.input("r")
    z = dom_and_first_order(
        builder, x, y, r, "g", register_inner=register_inner
    )
    for i, net in enumerate(z):
        builder.output(net, f"z{i}")
    netlist = builder.build()
    return GadgetSpec(
        netlist=netlist,
        input_shares=[x, y],
        mask_nets=[r],
        output_shares=[netlist.net("z0"), netlist.net("z1")],
    )


def unprotected_and_gadget() -> GadgetSpec:
    """A trivially insecure 2-share AND (recombines shares internally)."""
    from repro.netlist.builder import CircuitBuilder

    builder = CircuitBuilder("bad_and")
    x = [builder.input("x0"), builder.input("x1")]
    y = [builder.input("y0"), builder.input("y1")]
    r = builder.input("r")
    x_clear = builder.xor(x[0], x[1], "x_clear")  # unmasked recombination
    y_clear = builder.xor(y[0], y[1], "y_clear")
    product = builder.and_(x_clear, y_clear, "product")
    z0 = builder.output(builder.xor(product, r), "z0")
    z1 = builder.output(builder.buf(r), "z1")
    netlist = builder.build()
    return GadgetSpec(
        netlist=netlist,
        input_shares=[x, y],
        mask_nets=[r],
        output_shares=[netlist.net("z0"), netlist.net("z1")],
    )
