"""G-test (log-likelihood ratio) on fixed-vs-random contingency tables.

PROLEAD's statistical back-end compares the distribution of each probe
observation between the fixed and the random input groups with a G-test and
reports ``-log10(p)``; an observation is flagged leaky when the p-value
drops below 1e-5 (``-log10(p) > 5``).  We reproduce that, including pooling
of rare table cells so the chi-square approximation stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy.stats import chi2

#: PROLEAD's default detection threshold on -log10(p).
DEFAULT_THRESHOLD = 5.0

#: Reported -log10(p) is capped here (scipy's logsf underflows beyond).
MLOG10P_CAP = 100_000.0

_LN10 = float(np.log(10.0))


@dataclass(frozen=True)
class GTestResult:
    """Outcome of one fixed-vs-random G-test."""

    g_statistic: float
    dof: int
    mlog10p: float
    n_categories: int
    n_fixed: int
    n_random: int

    def is_leaking(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        """Leakage verdict at a -log10(p) threshold."""
        return self.mlog10p > threshold


def _histogram_counts(
    keys_fixed: np.ndarray, keys_random: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Aligned per-category counts of the two groups (ascending key)."""
    n_fixed = int(keys_fixed.size)
    key_max = int(max(keys_fixed.max(), keys_random.max()))
    key_min = int(min(keys_fixed.min(), keys_random.min()))
    if 0 <= key_min and key_max < 65536:
        # Dense small-range keys (e.g. hashed observations): direct
        # bincount beats the sort inside np.unique.  Categories come out
        # in the same ascending-key order, so the statistics are
        # bit-identical to the generic path.
        length = key_max + 1
        cf = np.bincount(keys_fixed.astype(np.intp), minlength=length)
        cr = np.bincount(keys_random.astype(np.intp), minlength=length)
        occupied = (cf + cr) > 0
        return (
            cf[occupied].astype(np.float64),
            cr[occupied].astype(np.float64),
        )

    pooled = np.concatenate([keys_fixed, keys_random])
    _, inverse, total_counts = np.unique(
        pooled, return_inverse=True, return_counts=True
    )
    counts_fixed = np.bincount(
        inverse[:n_fixed], minlength=total_counts.size
    ).astype(np.float64)
    counts_random = (total_counts - counts_fixed).astype(np.float64)
    return counts_fixed, counts_random


def g_test(
    keys_fixed: np.ndarray,
    keys_random: np.ndarray,
    min_expected: float = 5.0,
) -> GTestResult:
    """G-test over the observation histograms of the two groups.

    ``keys_*`` are integer-encoded observations (one entry per simulation).
    Cells whose pooled count is below ``2 * min_expected`` are merged into a
    single rare-cell bin before testing.
    """
    n_fixed = int(keys_fixed.size)
    n_random = int(keys_random.size)
    if n_fixed == 0 or n_random == 0:
        return GTestResult(0.0, 0, 0.0, 0, n_fixed, n_random)
    counts_fixed, counts_random = _histogram_counts(
        keys_fixed, keys_random
    )
    return g_test_from_counts(counts_fixed, counts_random, min_expected)


def g_test_batch(
    pairs: "Iterable[tuple[np.ndarray, np.ndarray]]",
    min_expected: float = 5.0,
) -> "list[GTestResult]":
    """Many G-tests with one vectorized p-value evaluation.

    Returns exactly the results of ``[g_test(kf, kr) for kf, kr in pairs]``
    -- ``chi2.logsf`` is the same ufunc whether applied to a scalar or an
    array, so batching the p-value pass changes nothing but the per-call
    overhead (which dominates when thousands of probe/phase tests are
    evaluated per report).  ``pairs`` may be a generator: it is consumed
    once, and each key array can be freed as soon as its histogram is
    taken.
    """
    partial = [
        _g_statistic(kf, kr, min_expected) for kf, kr in pairs
    ]
    g_values = np.asarray([p[0] for p in partial], dtype=np.float64)
    dofs = np.asarray([p[1] for p in partial], dtype=np.int64)
    mlog10p = np.zeros(len(partial), dtype=np.float64)
    testable = dofs >= 1
    if np.any(testable):
        mlog10p[testable] = (
            -chi2.logsf(g_values[testable], dofs[testable]) / _LN10
        )
    mlog10p = np.minimum(mlog10p, MLOG10P_CAP)
    return [
        GTestResult(g, dof, float(m), ncat, nf, nr)
        for (g, dof, ncat, nf, nr), m in zip(partial, mlog10p)
    ]


def _g_statistic(
    keys_fixed: np.ndarray,
    keys_random: np.ndarray,
    min_expected: float,
) -> "tuple[float, int, int, int, int]":
    """(G, dof, n_categories, n_fixed, n_random) without the p-value."""
    n_fixed = int(keys_fixed.size)
    n_random = int(keys_random.size)
    if n_fixed == 0 or n_random == 0:
        return (0.0, 0, 0, n_fixed, n_random)
    counts_fixed, counts_random = _histogram_counts(
        keys_fixed, keys_random
    )
    return _g_from_counts(counts_fixed, counts_random, min_expected)


def g_test_from_counts(
    counts_fixed: np.ndarray,
    counts_random: np.ndarray,
    min_expected: float = 5.0,
) -> GTestResult:
    """G-test from per-category counts (one pair of cells per category).

    The categories must be aligned between the two arrays and sorted by
    observation key; histograms accumulated incrementally over chunks then
    produce bit-identical statistics to a single :func:`g_test` pass over
    the concatenated observations, because the G-test only ever sees the
    contingency table.
    """
    g, dof, n_categories, n_fixed, n_random = _g_from_counts(
        np.asarray(counts_fixed, dtype=np.float64),
        np.asarray(counts_random, dtype=np.float64),
        min_expected,
    )
    if dof < 1:
        return GTestResult(g, dof, 0.0, n_categories, n_fixed, n_random)
    # logsf keeps precision for astronomically small p-values (strong
    # leaks); a cap keeps the result finite when even logsf underflows.
    mlog10p = float(-chi2.logsf(g, dof) / _LN10)
    mlog10p = min(mlog10p, MLOG10P_CAP)
    return GTestResult(g, dof, mlog10p, n_categories, n_fixed, n_random)


def _g_from_counts(
    counts_fixed: np.ndarray,
    counts_random: np.ndarray,
    min_expected: float,
) -> "tuple[float, int, int, int, int]":
    """(G, dof, n_categories, n_fixed, n_random) from aligned counts."""
    n_fixed = int(counts_fixed.sum())
    n_random = int(counts_random.sum())
    if n_fixed == 0 or n_random == 0:
        return (0.0, 0, 0, n_fixed, n_random)

    total_counts = counts_fixed + counts_random
    keep = total_counts >= 2.0 * min_expected
    if not np.all(keep):
        rare_fixed = counts_fixed[~keep].sum()
        rare_random = counts_random[~keep].sum()
        counts_fixed = np.append(counts_fixed[keep], rare_fixed)
        counts_random = np.append(counts_random[keep], rare_random)
        nonempty = (counts_fixed + counts_random) > 0
        counts_fixed = counts_fixed[nonempty]
        counts_random = counts_random[nonempty]

    n_categories = counts_fixed.size
    if n_categories < 2:
        return (0.0, 0, n_categories, n_fixed, n_random)

    total = counts_fixed + counts_random
    grand_total = float(n_fixed + n_random)
    g = 0.0
    for counts, group_total in (
        (counts_fixed, float(n_fixed)),
        (counts_random, float(n_random)),
    ):
        expected = total * (group_total / grand_total)
        observed = counts
        mask = observed > 0
        g += 2.0 * float(
            np.sum(observed[mask] * np.log(observed[mask] / expected[mask]))
        )
    return (g, n_categories - 1, n_categories, n_fixed, n_random)
