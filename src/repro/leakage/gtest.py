"""G-test (log-likelihood ratio) on fixed-vs-random contingency tables.

PROLEAD's statistical back-end compares the distribution of each probe
observation between the fixed and the random input groups with a G-test and
reports ``-log10(p)``; an observation is flagged leaky when the p-value
drops below 1e-5 (``-log10(p) > 5``).  We reproduce that, including pooling
of rare table cells so the chi-square approximation stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy.stats import chi2

#: PROLEAD's default detection threshold on -log10(p).
DEFAULT_THRESHOLD = 5.0

#: Reported -log10(p) is capped here (scipy's logsf underflows beyond).
MLOG10P_CAP = 100_000.0

_LN10 = float(np.log(10.0))


@dataclass(frozen=True)
class GTestResult:
    """Outcome of one fixed-vs-random G-test."""

    g_statistic: float
    dof: int
    mlog10p: float
    n_categories: int
    n_fixed: int
    n_random: int

    def is_leaking(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        """Leakage verdict at a -log10(p) threshold."""
        return self.mlog10p > threshold


def _histogram_counts(
    keys_fixed: np.ndarray, keys_random: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Aligned per-category counts of the two groups (ascending key)."""
    n_fixed = int(keys_fixed.size)
    key_max = int(max(keys_fixed.max(), keys_random.max()))
    key_min = int(min(keys_fixed.min(), keys_random.min()))
    if 0 <= key_min and key_max < 65536:
        # Dense small-range keys (e.g. hashed observations): direct
        # bincount beats the sort inside np.unique.  Categories come out
        # in the same ascending-key order, so the statistics are
        # bit-identical to the generic path.
        length = key_max + 1
        cf = np.bincount(keys_fixed.astype(np.intp), minlength=length)
        cr = np.bincount(keys_random.astype(np.intp), minlength=length)
        occupied = (cf + cr) > 0
        return (
            cf[occupied].astype(np.float64),
            cr[occupied].astype(np.float64),
        )

    pooled = np.concatenate([keys_fixed, keys_random])
    _, inverse, total_counts = np.unique(
        pooled, return_inverse=True, return_counts=True
    )
    counts_fixed = np.bincount(
        inverse[:n_fixed], minlength=total_counts.size
    ).astype(np.float64)
    counts_random = (total_counts - counts_fixed).astype(np.float64)
    return counts_fixed, counts_random


def g_test(
    keys_fixed: np.ndarray,
    keys_random: np.ndarray,
    min_expected: float = 5.0,
) -> GTestResult:
    """G-test over the observation histograms of the two groups.

    ``keys_*`` are integer-encoded observations (one entry per simulation).
    Cells whose pooled count is below ``2 * min_expected`` are merged into a
    single rare-cell bin before testing.
    """
    n_fixed = int(keys_fixed.size)
    n_random = int(keys_random.size)
    if n_fixed == 0 or n_random == 0:
        return GTestResult(0.0, 0, 0.0, 0, n_fixed, n_random)
    counts_fixed, counts_random = _histogram_counts(
        keys_fixed, keys_random
    )
    return g_test_from_counts(counts_fixed, counts_random, min_expected)


def _g_batch_from_compact(
    compact: "list[tuple[np.ndarray, np.ndarray]]",
    min_expected: float,
) -> "list[tuple[float, int, int, int, int]]":
    """Vectorized G statistics for compacted (occupied-cell) count pairs.

    Rows where either group is empty short-circuit exactly like the
    scalar path (G=0, dof=0, zero reported categories).  Live rows are
    concatenated into flat cell arrays and reduced per row with
    ``np.add.reduceat``, so the work is proportional to the number of
    occupied cells -- no padding to the widest test.  Per-row semantics
    (pooling rule, degenerate-row handling) match
    :func:`_g_from_counts`; only the floating-point summation order
    differs, which is why both batch entry points below share this core
    -- equal tables in, bit-equal statistics out, regardless of which
    evaluator path built the tables.
    """
    results: "list[tuple[float, int, int, int, int]]" = [
        (0.0, 0, 0, 0, 0)
    ] * len(compact)
    live = []
    for index, (cf, cr) in enumerate(compact):
        n_fixed = int(cf.sum())
        n_random = int(cr.sum())
        if n_fixed == 0 or n_random == 0:
            results[index] = (0.0, 0, 0, n_fixed, n_random)
        else:
            live.append(index)
    if not live:
        return results
    lengths = np.asarray(
        [compact[i][0].size for i in live], dtype=np.int64
    )
    offsets = np.zeros(len(live), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    flat_f = np.concatenate([compact[i][0] for i in live])
    flat_r = np.concatenate([compact[i][1] for i in live])
    tot = flat_f + flat_r
    keep = tot >= 2.0 * min_expected
    nf = np.add.reduceat(flat_f, offsets)
    nr = np.add.reduceat(flat_r, offsets)
    pooled_f = np.add.reduceat(np.where(keep, 0.0, flat_f), offsets)
    pooled_r = np.add.reduceat(np.where(keep, 0.0, flat_r), offsets)
    pooled_tot = pooled_f + pooled_r
    ncat = (
        np.add.reduceat(keep.astype(np.int64), offsets)
        + (pooled_tot > 0)
    )
    grand = nf + nr
    g = np.zeros(len(live), dtype=np.float64)
    for obs, pooled_obs, group_total in (
        (flat_f, pooled_f, nf),
        (flat_r, pooled_r, nr),
    ):
        frac = group_total / grand
        expected = tot * np.repeat(frac, lengths)
        mask = keep & (obs > 0)
        ratio = np.where(mask, obs, 1.0) / np.where(mask, expected, 1.0)
        g += 2.0 * np.add.reduceat(
            np.where(mask, obs * np.log(ratio), 0.0), offsets
        )
        pmask = pooled_obs > 0
        pexp = pooled_tot * frac
        pratio = (
            np.where(pmask, pooled_obs, 1.0) / np.where(pmask, pexp, 1.0)
        )
        g += 2.0 * np.where(pmask, pooled_obs * np.log(pratio), 0.0)
    # Live rows have both group totals > 0; only the category floor can
    # still void a test.
    testable = ncat >= 2
    g = np.where(testable, g, 0.0)
    dof = np.where(testable, ncat - 1, 0)
    for row, index in enumerate(live):
        results[index] = (
            float(g[row]), int(dof[row]), int(ncat[row]),
            int(nf[row]), int(nr[row]),
        )
    return results


def _finish_batch(
    partial: "list[tuple[float, int, int, int, int]]",
) -> "list[GTestResult]":
    """One vectorized ``chi2.logsf`` pass over (G, dof, ...) tuples."""
    g_values = np.asarray([p[0] for p in partial], dtype=np.float64)
    dofs = np.asarray([p[1] for p in partial], dtype=np.int64)
    mlog10p = np.zeros(len(partial), dtype=np.float64)
    testable = dofs >= 1
    if np.any(testable):
        mlog10p[testable] = (
            -chi2.logsf(g_values[testable], dofs[testable]) / _LN10
        )
    mlog10p = np.minimum(mlog10p, MLOG10P_CAP)
    return [
        GTestResult(g, dof, float(m), ncat, nf, nr)
        for (g, dof, ncat, nf, nr), m in zip(partial, mlog10p)
    ]


def g_test_batch(
    pairs: "Iterable[tuple[np.ndarray, np.ndarray]]",
    min_expected: float = 5.0,
) -> "list[GTestResult]":
    """Many G-tests with vectorized statistics and p-value passes.

    Semantically ``[g_test(kf, kr) for kf, kr in pairs]``: identical
    contingency tables, pooling and verdicts; G itself may differ from
    the scalar function in the last bits because the stacked core sums
    per-cell terms in a different order.  What is exact is the contract
    the engine ladder relies on: this function and
    :func:`g_test_counts_batch` share one core, so any two evaluator
    paths that produce the same histograms report bit-identical
    statistics.  ``pairs`` may be a generator: it is consumed once, and
    each key array can be freed as soon as its histogram is taken.
    """
    compact = []
    for kf, kr in pairs:
        if kf.size == 0 or kr.size == 0:
            # Degenerate group: record sizes without histogramming
            # (mirrors the scalar short-circuit in g_test).
            compact.append((
                np.full(1, float(kf.size)),
                np.full(1, float(kr.size)),
            ))
            continue
        compact.append(_histogram_counts(kf, kr))
    return _finish_batch(_g_batch_from_compact(compact, min_expected))


def g_test_counts_batch(
    pairs: "Iterable[tuple[np.ndarray, np.ndarray]]",
    min_expected: float = 5.0,
) -> "list[GTestResult]":
    """Many G-tests straight from dense per-bin count tables.

    ``pairs`` yields ``(counts_fixed, counts_random)`` -- aligned dense
    histograms (bin index == observation key).  Each pair goes through
    the same empty-bin filter the dense branch of
    :func:`_histogram_counts` applies and then the same stacked core
    and batched p-value pass as :func:`g_test_batch`, so the results
    are bit-identical to histogramming the raw key arrays -- the G-test
    only ever sees the contingency table.
    """
    compact = []
    for cf, cr in pairs:
        cf = np.asarray(cf)
        cr = np.asarray(cr)
        occupied = (cf + cr) > 0
        compact.append((
            cf[occupied].astype(np.float64),
            cr[occupied].astype(np.float64),
        ))
    return _finish_batch(_g_batch_from_compact(compact, min_expected))


def g_test_from_counts(
    counts_fixed: np.ndarray,
    counts_random: np.ndarray,
    min_expected: float = 5.0,
) -> GTestResult:
    """G-test from per-category counts (one pair of cells per category).

    The categories must be aligned between the two arrays and sorted by
    observation key; histograms accumulated incrementally over chunks then
    produce bit-identical statistics to a single :func:`g_test` pass over
    the concatenated observations, because the G-test only ever sees the
    contingency table.
    """
    g, dof, n_categories, n_fixed, n_random = _g_from_counts(
        np.asarray(counts_fixed, dtype=np.float64),
        np.asarray(counts_random, dtype=np.float64),
        min_expected,
    )
    if dof < 1:
        return GTestResult(g, dof, 0.0, n_categories, n_fixed, n_random)
    # logsf keeps precision for astronomically small p-values (strong
    # leaks); a cap keeps the result finite when even logsf underflows.
    mlog10p = float(-chi2.logsf(g, dof) / _LN10)
    mlog10p = min(mlog10p, MLOG10P_CAP)
    return GTestResult(g, dof, mlog10p, n_categories, n_fixed, n_random)


def _g_from_counts(
    counts_fixed: np.ndarray,
    counts_random: np.ndarray,
    min_expected: float,
) -> "tuple[float, int, int, int, int]":
    """(G, dof, n_categories, n_fixed, n_random) from aligned counts."""
    n_fixed = int(counts_fixed.sum())
    n_random = int(counts_random.sum())
    if n_fixed == 0 or n_random == 0:
        return (0.0, 0, 0, n_fixed, n_random)

    total_counts = counts_fixed + counts_random
    keep = total_counts >= 2.0 * min_expected
    if not np.all(keep):
        rare_fixed = counts_fixed[~keep].sum()
        rare_random = counts_random[~keep].sum()
        counts_fixed = np.append(counts_fixed[keep], rare_fixed)
        counts_random = np.append(counts_random[keep], rare_random)
        nonempty = (counts_fixed + counts_random) > 0
        counts_fixed = counts_fixed[nonempty]
        counts_random = counts_random[nonempty]

    n_categories = counts_fixed.size
    if n_categories < 2:
        return (0.0, 0, n_categories, n_fixed, n_random)

    total = counts_fixed + counts_random
    grand_total = float(n_fixed + n_random)
    g = 0.0
    for counts, group_total in (
        (counts_fixed, float(n_fixed)),
        (counts_random, float(n_random)),
    ):
        expected = total * (group_total / grand_total)
        observed = counts
        mask = observed > 0
        g += 2.0 * float(
            np.sum(observed[mask] * np.log(observed[mask] / expected[mask]))
        )
    return (g, n_categories - 1, n_categories, n_fixed, n_random)
