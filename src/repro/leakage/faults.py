"""Fault-injection self-validation of the leakage evaluator.

A leakage evaluator that has only ever been shown *passing* designs is
unfalsifiable -- the motivation the paper gives for running known-broken
randomness schemes through PROLEAD.  This module turns that practice into an
executable self-check: it mutates the secure FULL Kronecker delta with
classic masking faults (via :mod:`repro.netlist.mutate`), runs the standard
fixed-vs-random campaign on every mutant, and asserts that

* the unmutated FULL design stays clean, and
* every mutant (plus the paper's known-leaky Eq. (6) control) is flagged.

The result is a detection-coverage matrix; a row where the verdict disagrees
with the expectation means the evaluator -- not the design -- is broken.

The built-in mutants are chosen so the leak is *provable* under per-cycle
re-sharing (which defeats naive single-register faults, because registered
values then mix independent sharings across cycles):

``drop-dom-register``
    All of G7's DOM registers become buffers.  A glitch-extended probe on
    output share ``z0`` then covers G6's four registers plus ``r7``; XOR-ing
    G6's registers cancels ``r6`` and reveals ``w1`` (1 always for fixed
    secret 0, 1 with probability 1/16 for random secrets).
``alias-fresh-masks``
    The fan-in of ``rand.r3`` is rewired onto ``rand.r1`` -- G1 and G3 share
    one "fresh" mask, the first-layer reuse the paper shows is leaky.
``stuck-mask``
    ``rand.r7`` is stuck at 0, so G7 registers its raw cross products.  The
    probe on ``z0`` sees ``(w0_0 & w1_0, w0_0 & w1_1)``; the outcome (1,1)
    is impossible when ``w1 = 1`` (fixed secret 0) but common otherwise.
``bypass-kronecker``
    XOR taps recombine ``x0[i] ^ x1[i]`` -- an unmasked shortcut; the probe
    on a tap observes a secret bit directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import engines as engine_registry
from repro.leakage.campaign import CampaignConfig, EvaluationCampaign
from repro.leakage.dut import DesignUnderTest
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.gtest import DEFAULT_THRESHOLD
from repro.leakage.model import ProbingModel
from repro.leakage.report import SCHEMA_VERSION
from repro.netlist.core import Netlist
from repro.netlist.mutate import (
    add_xor_taps,
    dff_by_name,
    registers_to_buffers,
    rewire_fanin,
    stuck_net,
)

#: -log10(p) level at which a mutant campaign may stop early: decisive
#: evidence well past the detection threshold.
DECISIVE_MLOG10P = 2.0 * DEFAULT_THRESHOLD


@dataclass(frozen=True)
class FaultSpec:
    """One design to evaluate, with the verdict the evaluator must reach."""

    name: str
    description: str
    expect_leak: bool
    build: Callable[[], DesignUnderTest]


@dataclass(frozen=True)
class FaultOutcome:
    """The evaluator's verdict on one fault spec."""

    name: str
    description: str
    expect_leak: bool
    detected_leak: bool
    max_mlog10p: float
    n_simulations: int
    status: str

    @property
    def ok(self) -> bool:
        """True when the verdict matches the expectation."""
        return self.detected_leak == self.expect_leak

    def format_row(self) -> str:
        """One matrix line."""
        expected = "leak" if self.expect_leak else "clean"
        detected = "leak" if self.detected_leak else "clean"
        verdict = "OK" if self.ok else "MISS"
        return (
            f"{verdict:<5} {self.name:<20} expect={expected:<6} "
            f"got={detected:<6} -log10(p)={self.max_mlog10p:9.2f}  "
            f"sims={self.n_simulations}"
        )


@dataclass
class SelfCheckMatrix:
    """Detection-coverage matrix over all fault specs."""

    threshold: float
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def coverage_complete(self) -> bool:
        """True when every verdict matched its expectation."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def misses(self) -> List[FaultOutcome]:
        """Outcomes where the evaluator disagreed with the expectation."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self) -> Dict:
        """Machine-readable matrix (for JSON output / CI gating)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "threshold": self.threshold,
            "coverage_complete": self.coverage_complete,
            "outcomes": [
                {
                    "name": o.name,
                    "description": o.description,
                    "expect_leak": o.expect_leak,
                    "detected_leak": o.detected_leak,
                    "ok": o.ok,
                    "max_mlog10p": o.max_mlog10p,
                    "n_simulations": o.n_simulations,
                    "status": o.status,
                }
                for o in self.outcomes
            ],
        }

    def format_table(self) -> str:
        """Human-readable matrix."""
        verdict = (
            "COVERAGE COMPLETE (every fault detected, clean design clean)"
            if self.coverage_complete
            else f"COVERAGE INCOMPLETE ({len(self.misses)} mismatch(es))"
        )
        lines = [
            "=== Evaluator self-check: fault-injection coverage ===",
            f"  threshold: -log10(p) > {self.threshold:g}",
            f"  verdict:   {verdict}",
        ]
        lines.extend("  " + outcome.format_row() for outcome in self.outcomes)
        return "\n".join(lines)


def _remap_dut(dut: DesignUnderTest, netlist: Netlist) -> DesignUnderTest:
    """Rebind a DUT protocol onto a mutated netlist.

    Mutations preserve net indices (new nets are appended), so the original
    share/mask net lists stay valid verbatim.
    """
    return DesignUnderTest(
        netlist=netlist,
        share_buses=[list(bus) for bus in dut.share_buses],
        mask_bits=list(dut.mask_bits),
        uniform_byte_buses=[list(b) for b in dut.uniform_byte_buses],
        nonzero_byte_buses=[list(b) for b in dut.nonzero_byte_buses],
        latency=dut.latency,
        output_share_buses=[list(b) for b in dut.output_share_buses],
        metadata=dict(dut.metadata),
    )


def _full_dut() -> DesignUnderTest:
    # Imported lazily: repro.core.kronecker itself depends on this package.
    from repro.core.kronecker import build_kronecker_delta
    from repro.core.optimizations import RandomnessScheme

    return build_kronecker_delta(RandomnessScheme.FULL).dut


def _eq6_dut() -> DesignUnderTest:
    from repro.core.kronecker import build_kronecker_delta
    from repro.core.optimizations import RandomnessScheme

    return build_kronecker_delta(RandomnessScheme.DEMEYER_EQ6).dut


def _drop_dom_register() -> DesignUnderTest:
    dut = _full_dut()
    mutant = registers_to_buffers(
        dut.netlist,
        dff_by_name(dut.netlist, "g7."),
        name=dut.netlist.name + "+drop-dom-register",
    )
    return _remap_dut(dut, mutant)


def _alias_fresh_masks() -> DesignUnderTest:
    dut = _full_dut()
    netlist = dut.netlist
    mutant = rewire_fanin(
        netlist,
        netlist.net("rand.r3"),
        netlist.net("rand.r1"),
        name=netlist.name + "+alias-fresh-masks",
    )
    return _remap_dut(dut, mutant)


def _stuck_mask() -> DesignUnderTest:
    dut = _full_dut()
    netlist = dut.netlist
    mutant = stuck_net(
        netlist,
        netlist.net("rand.r7"),
        0,
        name=netlist.name + "+stuck-mask",
    )
    return _remap_dut(dut, mutant)


def _bypass_kronecker() -> DesignUnderTest:
    dut = _full_dut()
    pairs = [
        (dut.share_bit(0, bit), dut.share_bit(1, bit)) for bit in (0, 1)
    ]
    mutant, _ = add_xor_taps(
        dut.netlist,
        pairs,
        prefix="bypass",
        name=dut.netlist.name + "+bypass-kronecker",
    )
    return _remap_dut(dut, mutant)


def builtin_faults() -> List[FaultSpec]:
    """The standard self-check suite over the FULL Kronecker delta."""
    return [
        FaultSpec(
            name="clean-full",
            description="unmutated FULL scheme (7 fresh bits) -- must pass",
            expect_leak=False,
            build=_full_dut,
        ),
        FaultSpec(
            name="control-eq6",
            description="De Meyer Eq. (6) reuse -- the paper's known leak",
            expect_leak=True,
            build=_eq6_dut,
        ),
        FaultSpec(
            name="drop-dom-register",
            description="G7's DOM registers replaced by buffers",
            expect_leak=True,
            build=_drop_dom_register,
        ),
        FaultSpec(
            name="alias-fresh-masks",
            description="rand.r3 consumers rewired onto rand.r1",
            expect_leak=True,
            build=_alias_fresh_masks,
        ),
        FaultSpec(
            name="stuck-mask",
            description="rand.r7 stuck at 0 (unblinded cross products)",
            expect_leak=True,
            build=_stuck_mask,
        ),
        FaultSpec(
            name="bypass-kronecker",
            description="XOR taps recombining input shares",
            expect_leak=True,
            build=_bypass_kronecker,
        ),
    ]


def run_self_check(
    n_simulations: int = 30_000,
    seed: int = 0,
    threshold: float = DEFAULT_THRESHOLD,
    model: ProbingModel = ProbingModel.GLITCH,
    faults: Optional[List[FaultSpec]] = None,
    chunk_size: Optional[int] = None,
    workers: int = 1,
    engine: str = engine_registry.DEFAULT_ENGINE,
) -> SelfCheckMatrix:
    """Evaluate every fault spec and return the coverage matrix.

    Leaky specs run as early-stopping campaigns (a decisive -log10(p) ends
    the run), so the matrix costs little more than the one clean design
    that must run its full sample budget.

    With ``workers > 1`` every campaign runs through the parallel executor,
    so the coverage matrix validates the whole worker/merge path, not just
    the serial evaluator; verdicts are bit-identical either way.
    """
    matrix = SelfCheckMatrix(threshold=threshold)
    for spec in faults if faults is not None else builtin_faults():
        evaluator = LeakageEvaluator(
            spec.build(), model=model, seed=seed, engine=engine
        )
        config = CampaignConfig(
            n_simulations=n_simulations,
            threshold=threshold,
            # Early stop is checked at chunk boundaries, so leaky specs need
            # chunks smaller than the full run to actually stop early.
            chunk_size=chunk_size if chunk_size is not None else 8192,
            early_stop=DECISIVE_MLOG10P if spec.expect_leak else None,
            workers=workers,
        )
        report = EvaluationCampaign(evaluator, config).run()
        matrix.outcomes.append(
            FaultOutcome(
                name=spec.name,
                description=spec.description,
                expect_leak=spec.expect_leak,
                detected_leak=not report.passed,
                max_mlog10p=report.max_mlog10p,
                n_simulations=report.n_simulations,
                status=report.status,
            )
        )
    return matrix
