"""TVLA-style leakage assessment with Welch's t-test.

The fixed-vs-random t-test methodology of Schneider & Moradi ("Leakage
assessment methodology", the paper's reference [19]): two trace groups
(fixed input vs random input), Welch's t statistic per sample point, and
the |t| > 4.5 detection threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SimulationError

#: The conventional TVLA detection threshold on |t|.
TVLA_THRESHOLD = 4.5


def welch_t_test(
    group_a: np.ndarray, group_b: np.ndarray
) -> np.ndarray:
    """Welch's t statistic per column (sample point) of two trace groups."""
    a = np.asarray(group_a, dtype=np.float64)
    b = np.asarray(group_b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise SimulationError("trace groups must be 2-D with equal width")
    if a.shape[0] < 2 or b.shape[0] < 2:
        raise SimulationError("each group needs at least two traces")
    mean_a = a.mean(axis=0)
    mean_b = b.mean(axis=0)
    var_a = a.var(axis=0, ddof=1) / a.shape[0]
    var_b = b.var(axis=0, ddof=1) / b.shape[0]
    denominator = np.sqrt(var_a + var_b)
    # Zero-variance points (constant power) carry no evidence either way.
    safe = denominator > 0
    t = np.zeros(a.shape[1], dtype=np.float64)
    t[safe] = (mean_a[safe] - mean_b[safe]) / denominator[safe]
    return t


@dataclass(frozen=True)
class TvlaResult:
    """Outcome of a fixed-vs-random TVLA run."""

    t_statistics: Tuple[float, ...]
    threshold: float

    @property
    def max_abs_t(self) -> float:
        """Largest |t| over all sample points."""
        return max((abs(t) for t in self.t_statistics), default=0.0)

    @property
    def leaking(self) -> bool:
        """True when the threshold is exceeded anywhere."""
        return self.max_abs_t > self.threshold

    @property
    def worst_cycle(self) -> int:
        """Sample point with the largest |t|."""
        values = [abs(t) for t in self.t_statistics]
        return int(np.argmax(values)) if values else 0

    def format_summary(self) -> str:
        """One-line TVLA outcome."""
        verdict = "FAIL (leakage)" if self.leaking else "PASS"
        return (
            f"TVLA: max |t| = {self.max_abs_t:.2f} at cycle "
            f"{self.worst_cycle} (threshold {self.threshold:g}) -> {verdict}"
        )


def tvla_fixed_vs_random(
    traces_fixed: np.ndarray,
    traces_random: np.ndarray,
    threshold: float = TVLA_THRESHOLD,
) -> TvlaResult:
    """Run the fixed-vs-random t-test over two trace groups."""
    t = welch_t_test(traces_fixed, traces_random)
    return TvlaResult(tuple(float(x) for x in t), threshold)
