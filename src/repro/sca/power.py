"""Synthetic power traces from netlist simulation.

Power at a cycle is modelled as the Hamming weight of the stable signals
(static CMOS leakage-style proxy) or the Hamming distance between
consecutive cycles (switching activity, the classic dynamic-power model),
plus i.i.d. Gaussian noise.  This is the standard simulation-level model
used to prototype SCA attacks before measuring silicon; it intentionally
sits *below* the glitch-extended probing model in adversary strength (the
probing evaluations are the security argument -- traces demonstrate the
practical attack side).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.core import Netlist
from repro.netlist.simulate import BitslicedSimulator, unpack_lanes

Stimulus = Callable[[int], Dict[int, np.ndarray]]


class PowerModel(enum.Enum):
    """Per-cycle power proxies."""

    HAMMING_WEIGHT = "hamming_weight"
    HAMMING_DISTANCE = "hamming_distance"


class TraceSynthesizer:
    """Produces (n_traces, n_cycles) float power traces for a netlist."""

    def __init__(
        self,
        netlist: Netlist,
        model: PowerModel = PowerModel.HAMMING_DISTANCE,
        nets: Optional[Sequence[int]] = None,
        noise_sigma: float = 0.0,
    ):
        self.netlist = netlist
        self.model = model
        # Default: the registers and primary inputs -- the signals whose
        # toggling dominates a synchronous design's power.
        self.nets = list(nets) if nets is not None else netlist.stable_nets()
        if not self.nets:
            raise SimulationError("no nets selected for the power model")
        self.noise_sigma = noise_sigma

    def synthesize(
        self,
        stimulus: Stimulus,
        n_traces: int,
        n_cycles: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Simulate and return power traces of shape (n_traces, n_cycles)."""
        simulator = BitslicedSimulator(self.netlist, n_traces)
        trace = simulator.run(stimulus, n_cycles, record_nets=self.nets)

        power = np.zeros((n_traces, n_cycles), dtype=np.float64)
        previous: Dict[int, np.ndarray] = {}
        for cycle in range(n_cycles):
            accumulator = np.zeros(n_traces, dtype=np.float64)
            for net in self.nets:
                bits = unpack_lanes(trace.words(cycle, net), n_traces)
                if self.model is PowerModel.HAMMING_WEIGHT:
                    accumulator += bits
                else:
                    if cycle > 0:
                        accumulator += bits ^ previous[net]
                    previous[net] = bits
            power[:, cycle] = accumulator
        if self.noise_sigma > 0.0:
            rng = rng or np.random.default_rng()
            power += rng.normal(0.0, self.noise_sigma, size=power.shape)
        return power
