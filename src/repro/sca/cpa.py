"""Correlation power analysis (CPA) against S-box traces.

The classic first-order DPA-style attack (Kocher et al., the paper's
reference [1], in its correlation form): hypothesize a key byte, predict
the Hamming weight of ``SBox(plaintext xor key)``, and correlate the
prediction with the measured power at every sample point.  The right key
produces the highest correlation against an *unprotected* implementation;
against a sound first-order masked implementation the first-order
correlation vanishes -- the attack-side demonstration of what the probing
evaluations certify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.aes.sbox import SBOX_TABLE

_HW_TABLE = np.array([bin(v).count("1") for v in range(256)], dtype=np.float64)
_SBOX = np.array(SBOX_TABLE, dtype=np.int64)


@dataclass(frozen=True)
class CpaResult:
    """Outcome of a CPA key-byte recovery."""

    #: max |correlation| per key hypothesis (length 256).
    scores: Tuple[float, ...]
    best_key: int
    correct_key: int

    @property
    def succeeded(self) -> bool:
        """True when the highest-scoring hypothesis is the true key."""
        return self.best_key == self.correct_key

    @property
    def key_rank(self) -> int:
        """0 = the correct key scored highest."""
        order = np.argsort(np.asarray(self.scores))[::-1]
        return int(np.nonzero(order == self.correct_key)[0][0])

    @property
    def margin(self) -> float:
        """Score of the correct key minus the best wrong key's score."""
        scores = np.asarray(self.scores)
        correct = scores[self.correct_key]
        wrong = np.delete(scores, self.correct_key).max()
        return float(correct - wrong)

    def format_summary(self) -> str:
        """One-line attack outcome."""
        verdict = "KEY RECOVERED" if self.succeeded else "attack failed"
        return (
            f"CPA: best key 0x{self.best_key:02X} "
            f"(true 0x{self.correct_key:02X}, rank {self.key_rank}, "
            f"margin {self.margin:+.4f}) -> {verdict}"
        )


def cpa_attack(
    traces: np.ndarray,
    plaintexts: Sequence[int],
    correct_key: int,
) -> CpaResult:
    """Attack one key byte from S-box power traces.

    ``traces`` is (n, cycles); ``plaintexts`` the per-trace input byte.
    Returns per-hypothesis scores (max |Pearson r| over cycles).
    """
    traces = np.asarray(traces, dtype=np.float64)
    plaintext_array = np.asarray(list(plaintexts), dtype=np.int64)
    if traces.ndim != 2 or traces.shape[0] != plaintext_array.size:
        raise SimulationError("traces and plaintexts must align")
    n = traces.shape[0]
    if n < 4:
        raise SimulationError("need at least four traces")

    centered = traces - traces.mean(axis=0)
    trace_norm = np.sqrt((centered**2).sum(axis=0))
    trace_norm[trace_norm == 0] = np.inf  # constant columns correlate with nothing

    scores = []
    for key_guess in range(256):
        prediction = _HW_TABLE[_SBOX[plaintext_array ^ key_guess]]
        p_centered = prediction - prediction.mean()
        p_norm = np.sqrt((p_centered**2).sum())
        if p_norm == 0:
            scores.append(0.0)
            continue
        correlation = (p_centered @ centered) / (p_norm * trace_norm)
        scores.append(float(np.max(np.abs(correlation))))

    best_key = int(np.argmax(scores))
    return CpaResult(tuple(scores), best_key, correct_key)
