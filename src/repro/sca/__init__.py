"""Side-channel analysis substrate: power models, TVLA, CPA.

The paper's evaluation is simulation-based (probing models); this package
bridges to trace-based SCA practice:

* :mod:`repro.sca.power` -- synthetic power traces from netlist simulation
  (Hamming-weight / Hamming-distance models over the stable signals, plus
  Gaussian noise).
* :mod:`repro.sca.tvla` -- Welch's t-test leakage assessment (the
  fixed-vs-random TVLA methodology of Schneider & Moradi, the paper's
  reference [19]).
* :mod:`repro.sca.cpa` -- correlation power analysis: recovers the key from
  an unprotected S-box's traces and fails against the masked design.
"""

from repro.sca.power import PowerModel, TraceSynthesizer
from repro.sca.tvla import TvlaResult, tvla_fixed_vs_random, welch_t_test
from repro.sca.cpa import CpaResult, cpa_attack

__all__ = [
    "PowerModel",
    "TraceSynthesizer",
    "welch_t_test",
    "tvla_fixed_vs_random",
    "TvlaResult",
    "cpa_attack",
    "CpaResult",
]
