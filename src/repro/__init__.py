"""Reproduction of Rahimi & Moradi, DATE 2025.

"One More Motivation to Use Evaluation Tools: This Time for Hardware
Multiplicative Masking of AES."

The package provides:

* ``repro.gf`` -- binary-field arithmetic (GF(2^n), the AES field, and the
  tower-field decomposition used by combinational inverters).
* ``repro.netlist`` -- a gate-level netlist IR with a circuit-builder API,
  optimization passes, area reporting, structural-Verilog export and a
  bitsliced cycle-accurate simulator.
* ``repro.masking`` -- value-level Boolean/multiplicative sharings and
  netlist-level DOM gadget generators with configurable randomness wiring.
* ``repro.aes`` -- a FIPS-197 reference AES-128 used as correctness oracle.
* ``repro.core`` -- the paper's subject: the masked Kronecker delta function,
  masking conversions, the 5-stage pipelined masked AES S-box of
  De Meyer et al. (CHES 2018), and a full masked AES-128.
* ``repro.leakage`` -- a PROLEAD-style leakage evaluator implementing the
  glitch- and transition-extended probing models with fixed-vs-random
  G-tests, plus an exact (SILVER-style) distribution checker.
* ``repro.analysis`` -- symbolic ANF tooling reproducing the paper's
  root-cause derivations.
* ``repro.chaos`` -- deterministic infrastructure fault injection and the
  chaos-torture harness guarding the byte-identical-or-typed-error
  robustness contract (see ``docs/robustness.md``).
"""

from repro.errors import (
    ChaosError,
    ExactAnalysisInfeasible,
    NetlistError,
    ReproError,
    SimulationError,
    SpecError,
)
from repro.spec import API_VERSION, EvaluationSpec

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "EvaluationSpec",
    "ReproError",
    "NetlistError",
    "SimulationError",
    "SpecError",
    "ChaosError",
    "ExactAnalysisInfeasible",
    "__version__",
]
