"""Evaluation-as-a-service: long-lived serving of leakage evaluations.

The rest of the package answers one evaluation per process; this subsystem
turns it into a service for the workload evaluation tools actually see --
many users re-querying the same (design, scheme, model, budget, seed)
tuples while comparing candidate randomness schemes:

* :mod:`repro.service.store` -- persistent job records plus a
  content-addressed verdict cache (identical re-queries are O(1) lookups
  returning byte-identical reports).
* :mod:`repro.service.queue` -- bounded admission queue with priority
  lanes and graduated low-priority shedding.
* :mod:`repro.service.runner` -- background worker threads executing jobs
  as checkpointable campaigns with cancellation and crash-resume.
* :mod:`repro.service.fleet` -- coordinator side of the distributed
  campaign fabric: a lease-based work queue of campaign block slices and
  exact shards, merged centrally and bit-identically to serial execution.
* :mod:`repro.service.worker` -- the stateless fleet worker loop, usable
  in-process (embedded local workers) or as the ``repro worker`` daemon
  speaking ``/v1/fleet/`` over HTTP.
* :mod:`repro.service.http` -- stdlib JSON HTTP API under the versioned
  ``/v1/`` prefix (``POST /v1/jobs``, ``GET /v1/jobs/<id>[?wait=s]``,
  ``GET /v1/jobs/<id>/report``, ``GET /v1/healthz``, ``GET /v1/metrics``,
  plus the ``/v1/fleet/`` lease protocol in coordinator mode;
  retired unversioned paths answer 404 with a
  ``Link: rel="successor-version"`` migration hint).
* :mod:`repro.service.telemetry` -- JSON-lines event log + live counters.

Entry points: ``python -m repro.cli serve``, ``python -m repro.cli
submit``, and ``python -m repro.cli worker``; see ``docs/service.md`` and
``docs/distributed.md``.
"""

from repro.service.fleet import FleetCoordinator, FleetExecutor
from repro.service.http import EvaluationService
from repro.service.queue import JobQueue, QueueFull, QuotaExceeded
from repro.service.runner import (
    DEFAULT_CHUNK_SIZE,
    JobRunner,
    build_design,
    evaluator_for,
    resolve_scheme,
    verdict_summary,
)
from repro.service.store import JobSpec, JobStore, canonical_key
from repro.service.telemetry import Telemetry
from repro.service.worker import FleetWorker, HttpTransport, LocalTransport

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EvaluationService",
    "FleetCoordinator",
    "FleetExecutor",
    "FleetWorker",
    "HttpTransport",
    "JobQueue",
    "JobRunner",
    "JobSpec",
    "JobStore",
    "LocalTransport",
    "QueueFull",
    "QuotaExceeded",
    "Telemetry",
    "build_design",
    "canonical_key",
    "evaluator_for",
    "resolve_scheme",
    "verdict_summary",
]
