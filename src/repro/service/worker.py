"""Fleet worker: pulls leased work items and executes them locally.

A :class:`FleetWorker` is the execution half of the distributed campaign
fabric (see :mod:`repro.service.fleet`).  It is deliberately *stateless*:
every work order carries the job's full spec, so a worker needs nothing
but a coordinator address -- no shared filesystem, no store access, no
checkpoint.  Determinism does the rest: a block samples from its private
``SeedSequence(seed, spawn_key=(group, block))`` stream and an exact shard
enumerates a fixed assignment range, so *which* worker executes an item
(or how many times, after lease expiries) cannot change the bytes the
coordinator merges.

Two transports bind the same loop to both deployments:

* :class:`LocalTransport` calls the in-process
  :class:`~repro.service.fleet.FleetCoordinator` directly -- the service's
  embedded local workers, making single-host serving the degenerate
  one-worker case of the distributed path;
* :class:`HttpTransport` speaks the ``/v1/fleet/`` protocol over urllib
  (stdlib only), with :func:`~repro.chaos.retry_io` exponential backoff on
  connection-level failures and 5xx responses so a coordinator restart
  costs a pause, not the lease.

The CLI front end is ``repro worker --coordinator URL``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
import uuid
from typing import Dict, Optional, Tuple

from repro.chaos import DEFAULT_RETRY, RetryPolicy, retry_io
from repro.errors import ReproError, ServiceError
from repro.leakage.evaluator import HistogramAccumulator
from repro.service.store import JobSpec
from repro.spec import EvaluationSpec

#: Heartbeats per lease lifetime; 3 renewals before expiry rides out a
#: couple of dropped heartbeat round-trips.
HEARTBEATS_PER_LEASE = 3.0


class LocalTransport:
    """Direct in-process coordinator calls (the embedded-worker path)."""

    def __init__(self, coordinator):
        self.coordinator = coordinator

    def lease(self, worker_id: str) -> Optional[Dict]:
        return self.coordinator.lease(worker_id)

    def heartbeat(self, lease_id: str, worker_id: str) -> bool:
        return self.coordinator.heartbeat(lease_id, worker_id)

    def complete(self, lease_id: str, worker_id: str, body: Dict) -> Dict:
        return self.coordinator.complete(lease_id, worker_id, body)

    def fail(self, lease_id: str, worker_id: str, error: str) -> Dict:
        return self.coordinator.fail(lease_id, worker_id, error)


class _RetryableHTTP(OSError):
    """A 5xx coordinator response, wrapped so ``retry_io`` retries it."""


class HttpTransport:
    """``/v1/fleet/`` protocol over urllib with retry/backoff.

    Connection-level failures (``URLError``: refused, reset, DNS) and 5xx
    responses retry with exponential backoff -- a coordinator restart or a
    transient overload is survivable.  4xx responses raise
    :class:`ServiceError` immediately: the request itself is wrong and
    retrying cannot fix it.
    """

    def __init__(
        self,
        base_url: str,
        retry: RetryPolicy = DEFAULT_RETRY,
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.retry = retry
        self.timeout = timeout

    def _post(self, path: str, payload: Dict) -> Dict:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8")

        def round_trip() -> Dict:
            request = urllib.request.Request(
                url, data=data, headers={"Content-Type": "application/json"}
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # Must precede URLError: HTTPError subclasses it (and
                # OSError), and a 4xx must not burn retry attempts.
                body = exc.read().decode("utf-8", "replace")
                if exc.code >= 500:
                    raise _RetryableHTTP(
                        f"coordinator {exc.code} on {path}: {body[:200]}"
                    )
                raise ServiceError(
                    f"coordinator rejected {path} ({exc.code}): {body[:200]}"
                )

        return retry_io(
            round_trip,
            self.retry,
            site="fleet.rpc",
            retry_on=(urllib.error.URLError, _RetryableHTTP, TimeoutError),
        )

    def lease(self, worker_id: str) -> Optional[Dict]:
        body = self._post("/v1/fleet/lease", {"worker_id": worker_id})
        return body.get("work")

    def heartbeat(self, lease_id: str, worker_id: str) -> bool:
        body = self._post(
            f"/v1/fleet/leases/{lease_id}/heartbeat",
            {"worker_id": worker_id},
        )
        return bool(body.get("ok"))

    def complete(self, lease_id: str, worker_id: str, body: Dict) -> Dict:
        payload = dict(body)
        payload["worker_id"] = worker_id
        return self._post(f"/v1/fleet/leases/{lease_id}/complete", payload)

    def fail(self, lease_id: str, worker_id: str, error: str) -> Dict:
        return self._post(
            f"/v1/fleet/leases/{lease_id}/fail",
            {"worker_id": worker_id, "error": error},
        )


class FleetWorker:
    """Lease → execute → complete loop over a transport.

    Caches built evaluators and exact analyzers across items keyed by the
    spec fields that shape them, so a thousand-block campaign compiles its
    engine once per worker, not once per lease.
    """

    def __init__(
        self,
        transport,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.5,
    ):
        self.transport = transport
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.poll_interval = poll_interval
        self._evaluators: Dict[Tuple, object] = {}
        self._analyzers: Dict[Tuple, object] = {}
        self.items_done = 0
        self.items_failed = 0

    # ------------------------------------------------------------ build cache

    def _evaluator_for(self, spec: EvaluationSpec):
        from repro.service.runner import evaluator_for

        key = (
            spec.design,
            spec.scheme,
            spec.model,
            spec.seed,
            spec.engine,
            spec.slice,
        )
        if key not in self._evaluators:
            self._evaluators[key] = evaluator_for(spec)
        return self._evaluators[key]

    def _analyzer_for(self, spec: EvaluationSpec):
        from repro.leakage.exact import ExactAnalyzer
        from repro.leakage.model import ProbingModel
        from repro.service.runner import build_design

        key = (
            spec.design, spec.scheme, spec.model, spec.max_enum_bits,
            spec.engine,
        )
        if key not in self._analyzers:
            built = build_design(spec.design, spec.scheme)
            model = (
                ProbingModel.GLITCH_TRANSITION
                if spec.model == "glitch-transition"
                else ProbingModel.GLITCH
            )
            self._analyzers[key] = ExactAnalyzer(
                built.dut, model, max_enum_bits=spec.max_enum_bits,
                engine=spec.engine,
            )
        return self._analyzers[key]

    # -------------------------------------------------------------- execution

    def execute_item(self, work: Dict) -> Dict:
        """Run one work order; returns the completion body (npz + meta)."""
        from repro.service.fleet import encode_arrays

        spec = JobSpec.from_dict(work["spec"])
        payload = work["work"]
        kind = payload.get("kind")
        if kind == "blocks":
            evaluator = self._evaluator_for(spec)
            acc = HistogramAccumulator()
            class_indices = payload.get("class_indices")
            evaluator.accumulate(
                acc,
                int(payload["fixed_secret"]),
                int(payload["n_lanes"]),
                int(payload["n_windows"]),
                class_indices=(
                    tuple(int(i) for i in class_indices)
                    if class_indices is not None
                    else None
                ),
                pairs=tuple(
                    (int(a), int(b)) for a, b in payload.get("pairs", [])
                ),
                pair_offsets=tuple(
                    int(o) for o in payload.get("pair_offsets", [0])
                ),
                blocks=[int(b) for b in payload["blocks"]],
            )
            ids, arrays = acc.state_arrays()
            return {
                "npz": encode_arrays(arrays),
                "meta": {"table_ids": ids},
            }
        if kind == "exact_shard":
            analyzer = self._analyzer_for(spec)
            class_index = int(payload["class_index"])
            probe_class = analyzer.probe_classes[class_index]
            keys, rows, counts = analyzer.count_shard(
                probe_class,
                shard_index=int(payload["shard_index"]),
                shard_lane_bits=int(payload["lane_bits"]),
            )
            return {
                "npz": encode_arrays(
                    {"keys": keys, "rows": rows, "counts": counts}
                ),
                "meta": {
                    "class_index": class_index,
                    "shard_index": int(payload["shard_index"]),
                },
            }
        raise ServiceError(f"unknown work item kind {kind!r}")

    def _run_one(self, work: Dict) -> None:
        lease_id = work["lease_id"]
        lease_seconds = float(work.get("lease_seconds") or 30.0)
        done = threading.Event()

        def heartbeat_loop() -> None:
            interval = max(0.05, lease_seconds / HEARTBEATS_PER_LEASE)
            while not done.wait(interval):
                try:
                    # A False renewal means the lease already expired; keep
                    # computing anyway -- the completion resolves through
                    # the coordinator's settled-lease map and is either the
                    # first (accepted) or a byte-identical duplicate.
                    self.transport.heartbeat(lease_id, self.worker_id)
                except (ServiceError, OSError):
                    pass

        beat = threading.Thread(target=heartbeat_loop, daemon=True)
        beat.start()
        try:
            body = self.execute_item(work)
        except ReproError as exc:
            done.set()
            self.items_failed += 1
            try:
                self.transport.fail(lease_id, self.worker_id, str(exc))
            except (ServiceError, OSError):
                pass
            return
        finally:
            done.set()
            beat.join(timeout=1.0)
        self.transport.complete(lease_id, self.worker_id, body)
        self.items_done += 1

    def run(self, stop_event: Optional[threading.Event] = None) -> None:
        """Poll for leases until ``stop_event`` is set (or forever)."""
        stop = stop_event or threading.Event()
        while not stop.is_set():
            try:
                work = self.transport.lease(self.worker_id)
            except (ServiceError, OSError):
                # Coordinator briefly gone (restart, chaos "fleet.lease"
                # fault past the retry budget): back off and re-poll.
                stop.wait(self.poll_interval)
                continue
            if work is None:
                stop.wait(self.poll_interval)
                continue
            try:
                self._run_one(work)
            except (ServiceError, OSError):
                # Completion never arrived; the lease will expire and the
                # item reissues elsewhere.
                stop.wait(self.poll_interval)

    def run_forever(self) -> None:
        """Blocking entry point for the CLI daemon (Ctrl-C to stop)."""
        stop = threading.Event()
        try:
            self.run(stop)
        except KeyboardInterrupt:
            stop.set()
