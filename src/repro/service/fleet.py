"""Distributed campaign fabric: the coordinator side of ``/v1/fleet/``.

The service historically executed jobs on local runner threads only.  This
module promotes it to a coordinator/worker architecture without touching
the determinism contract:

* the **coordinator** (:class:`FleetCoordinator`) holds a lease-based work
  queue of *work items* -- either a contiguous slice of a campaign chunk's
  sampling blocks, or one ``(probe class, shard)`` of an exact enumeration
  plan.  Workers pull items over HTTP (``POST /v1/fleet/lease``), renew
  them with heartbeats, and stream back serialized
  :class:`~repro.leakage.evaluator.HistogramAccumulator` state (or exact
  shard counts).  A lease that is neither completed nor renewed within
  ``lease_seconds`` expires and its item is reissued -- a SIGKILLed worker
  costs wall-clock time, never results;
* the **executor** (:class:`FleetExecutor`) plugs into
  :class:`~repro.leakage.campaign.EvaluationCampaign` exactly where the
  process-pool :class:`~repro.leakage.parallel.ParallelExecutor` does.
  The campaign loop -- checkpoints, adaptive decisions at chunk
  boundaries, slice telemetry, the verdict cache -- runs unchanged on the
  coordinator; only the per-chunk block accumulation is farmed out.

Why the merged results are **bit-identical** to serial execution for any
worker count, interleaving, or mid-campaign worker death:

* every sampling block draws from a private
  ``SeedSequence(seed, spawn_key=(group, block))`` stream, so a block
  simulates to the same trace on any host that executes it;
* per-probe histogram accumulation commutes and the report layer sorts
  table ids and observation keys, so merge *order* cannot leak into the
  report bytes;
* a reissued item re-executes the identical block list (or shard), and
  the coordinator accepts only the *first* completion per item -- a slow
  worker finishing after its lease expired produces a byte-identical
  duplicate that is acknowledged and discarded, never double-merged;
* exact shard counts merge by sorted key union + elementwise addition
  (:func:`repro.leakage.certify.merge_shard_counts`), commutative and
  associative by construction.

Result payloads cross the wire as base64-wrapped NPZ; a payload that fails
to decode (torn connection, chaos site ``"fleet.complete"``) requeues its
item instead of poisoning the merge.
"""

from __future__ import annotations

import base64
import io
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FleetInterrupted, ServiceError
from repro.leakage.evaluator import HistogramAccumulator
from repro.leakage.parallel import shard_blocks

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_SECONDS = 30.0

#: Times an item may be leased (first grant included) before the job that
#: owns it fails.  Expiries and corrupt payloads both consume attempts, so
#: a systematically failing item cannot livelock a campaign.
DEFAULT_MAX_ATTEMPTS = 5

#: A worker counts as live while its last lease/heartbeat/complete call is
#: at most this many seconds old (for ``/v1/metrics`` liveness gauges).
WORKER_LIVE_SECONDS = 30.0


def encode_arrays(arrays: Dict[str, np.ndarray]) -> str:
    """Base64 NPZ of named arrays (the wire form of result state)."""
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_arrays(text: str) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_arrays`; raises ``ServiceError`` on rot."""
    return decode_arrays_bytes(_b64_bytes(text))


def _b64_bytes(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError, AttributeError) as exc:
        raise ServiceError(f"result payload is not valid base64: {exc}")


def decode_arrays_bytes(blob: bytes) -> Dict[str, np.ndarray]:
    try:
        with np.load(io.BytesIO(blob)) as data:
            return {key: np.array(data[key]) for key in data.files}
    except Exception as exc:  # zip/format errors -> typed rejection
        raise ServiceError(f"result payload failed to decode: {exc}")


class _WorkItem:
    """One leased unit of work (a block slice or an exact shard)."""

    __slots__ = ("item_id", "job_id", "payload", "attempts", "result", "error")

    def __init__(self, item_id: str, job_id: str, payload: Dict):
        self.item_id = item_id
        self.job_id = job_id
        self.payload = payload
        self.attempts = 0
        self.result: Optional[Dict] = None
        self.error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.result is not None


class _Lease:
    __slots__ = ("lease_id", "item_id", "worker_id", "deadline")

    def __init__(
        self, lease_id: str, item_id: str, worker_id: str, deadline: float
    ):
        self.lease_id = lease_id
        self.item_id = item_id
        self.worker_id = worker_id
        self.deadline = deadline


class FleetCoordinator:
    """Lease-based work queue with central, first-writer-wins merging.

    Thread-safe; shared by the HTTP handler threads (worker RPCs), the
    runner threads (item submission and waiting), and -- through
    :class:`~repro.service.worker.LocalTransport` -- embedded local
    workers, which make the single-host deployment the degenerate
    one-worker case of the same code path.
    """

    def __init__(
        self,
        telemetry=None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        fault_plane=None,
    ):
        if lease_seconds <= 0:
            raise ServiceError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ServiceError("max_attempts must be at least 1")
        self.telemetry = telemetry
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        #: chaos fault plane for the "fleet.lease" / "fleet.complete"
        #: sites; ``None`` in production.
        self.fault_plane = fault_plane
        self._lock = threading.Lock()
        self._results_ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Dict] = {}
        self._items: Dict[str, _WorkItem] = {}
        self._pending: Deque[str] = deque()
        self._leases: Dict[str, _Lease] = {}
        #: expired/settled lease ids -> item ids, kept so a late complete
        #: from a reaped worker still resolves (and gets acknowledged as a
        #: duplicate instead of erroring the worker into a retry storm).
        self._settled_leases: Dict[str, str] = {}
        self._workers: Dict[str, Dict] = {}
        self._counter = 0
        self.counters: Dict[str, int] = {
            "items_submitted": 0,
            "items_completed": 0,
            "leases_granted": 0,
            "leases_expired": 0,
            "duplicate_results": 0,
            "bad_results": 0,
            "worker_failures": 0,
        }

    # ----------------------------------------------------------- telemetry

    def _emit(self, event: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event, **fields)

    # ------------------------------------------------------- job lifecycle

    def register_job(self, job_id: str, spec_dict: Dict) -> None:
        """Make a job's spec available to work-item payloads."""
        with self._lock:
            self._jobs[job_id] = dict(spec_dict)

    def release_job(self, job_id: str) -> None:
        """Drop a finished/aborted job's items, leases, and spec."""
        with self._lock:
            self._jobs.pop(job_id, None)
            dead = [
                item_id
                for item_id, item in self._items.items()
                if item.job_id == job_id
            ]
            for item_id in dead:
                del self._items[item_id]
            self._pending = deque(
                item_id for item_id in self._pending if item_id not in dead
            )
            for lease_id, lease in list(self._leases.items()):
                if lease.item_id in dead:
                    del self._leases[lease_id]
            for lease_id, item_id in list(self._settled_leases.items()):
                if item_id in dead:
                    del self._settled_leases[lease_id]
            self._results_ready.notify_all()

    # ------------------------------------------------------- work planning

    def suggest_shards(self, n_blocks: int) -> int:
        """Slices to cut a chunk into, sized to the live worker set.

        Twice the live worker count keeps the fleet busy while leaving
        slices small enough that a lost lease re-executes little; with no
        worker seen yet (job admitted before the first worker connects) a
        small default still produces parallelizable items.  Pure load
        balance -- the result bytes do not depend on it.
        """
        live = self.live_worker_count()
        return max(1, min(n_blocks, 2 * live if live else 4))

    def submit_items(self, job_id: str, payloads: Sequence[Dict]) -> List[str]:
        """Enqueue work items for ``job_id``; returns their ids in order."""
        with self._lock:
            if job_id not in self._jobs:
                raise ServiceError(
                    f"job {job_id!r} is not registered with the fleet"
                )
            ids: List[str] = []
            for payload in payloads:
                self._counter += 1
                item_id = f"wi-{self._counter:08d}"
                self._items[item_id] = _WorkItem(item_id, job_id, dict(payload))
                self._pending.append(item_id)
                ids.append(item_id)
            self.counters["items_submitted"] += len(ids)
            return ids

    # ------------------------------------------------------- lease protocol

    def _sweep_locked(self, now: float) -> None:
        """Requeue items whose lease silently expired (dead worker)."""
        expired = [
            lease for lease in self._leases.values() if lease.deadline < now
        ]
        for lease in expired:
            del self._leases[lease.lease_id]
            self._settled_leases[lease.lease_id] = lease.item_id
            item = self._items.get(lease.item_id)
            if item is None or item.done:
                continue
            self.counters["leases_expired"] += 1
            self._requeue_locked(item, f"lease {lease.lease_id} expired")
            self._emit(
                "lease_expired",
                lease_id=lease.lease_id,
                item_id=item.item_id,
                worker_id=lease.worker_id,
                attempts=item.attempts,
            )

    def _requeue_locked(self, item: _WorkItem, reason: str) -> None:
        if item.attempts >= self.max_attempts:
            item.error = (
                f"work item failed after {item.attempts} attempts: {reason}"
            )
            self._results_ready.notify_all()
            return
        if item.item_id not in self._pending:
            self._pending.appendleft(item.item_id)

    def _touch_worker_locked(self, worker_id: str, now: float) -> None:
        entry = self._workers.setdefault(
            worker_id, {"completed": 0, "first_seen": now}
        )
        entry["last_seen"] = now

    def lease(self, worker_id: str) -> Optional[Dict]:
        """Grant the next pending item to ``worker_id`` (or ``None``).

        The returned work order carries everything a stateless worker
        needs: the job's spec, the item payload, and the lease terms.
        """
        if self.fault_plane is not None:
            # Chaos site "fleet.lease": the coordinator answers 500 (a
            # restart mid-request, say); workers must ride it out with
            # retry/backoff and re-lease.
            self.fault_plane.maybe_fail("fleet.lease")
        now = time.monotonic()
        with self._lock:
            self._touch_worker_locked(worker_id, now)
            self._sweep_locked(now)
            while self._pending:
                item_id = self._pending.popleft()
                item = self._items.get(item_id)
                if item is None or item.done or item.error is not None:
                    continue
                item.attempts += 1
                self._counter += 1
                lease_id = f"ls-{self._counter:08d}"
                self._leases[lease_id] = _Lease(
                    lease_id, item_id, worker_id, now + self.lease_seconds
                )
                self.counters["leases_granted"] += 1
                self._emit(
                    "lease_granted",
                    lease_id=lease_id,
                    item_id=item_id,
                    job_id=item.job_id,
                    worker_id=worker_id,
                    attempt=item.attempts,
                )
                return {
                    "lease_id": lease_id,
                    "item_id": item_id,
                    "job_id": item.job_id,
                    "lease_seconds": self.lease_seconds,
                    "spec": self._jobs.get(item.job_id, {}),
                    "work": item.payload,
                }
            return None

    def heartbeat(self, lease_id: str, worker_id: str) -> bool:
        """Renew a lease; ``False`` when it already expired or settled."""
        now = time.monotonic()
        with self._lock:
            self._touch_worker_locked(worker_id, now)
            self._sweep_locked(now)
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease.deadline = now + self.lease_seconds
            return True

    def complete(self, lease_id: str, worker_id: str, body: Dict) -> Dict:
        """Accept a finished item's result (first writer wins).

        The payload is decoded *before* any state changes: a corrupt
        result requeues the item and the worker is told to move on.  A
        completion against an expired lease whose item already finished
        elsewhere is acknowledged as a duplicate -- execution is
        deterministic, so the bytes are identical and nothing merges
        twice.
        """
        blob = _b64_bytes(str(body.get("npz", "")))
        if self.fault_plane is not None:
            # Chaos site "fleet.complete": the result payload rots in
            # flight (IO kinds raise like a dropped connection; payload
            # kinds corrupt the bytes so decoding must reject them).
            blob = self.fault_plane.filter_read("fleet.complete", blob)
        now = time.monotonic()
        with self._lock:
            self._touch_worker_locked(worker_id, now)
            self._sweep_locked(now)
            lease = self._leases.pop(lease_id, None)
            if lease is not None:
                self._settled_leases[lease_id] = lease.item_id
                item_id = lease.item_id
            else:
                item_id = self._settled_leases.get(lease_id, "")
            item = self._items.get(item_id)
            if item is None:
                # Job released (cancelled/failed) while the worker ran.
                return {"ok": True, "duplicate": True}
            if item.done:
                self.counters["duplicate_results"] += 1
                self._emit(
                    "lease_duplicate", lease_id=lease_id, item_id=item_id
                )
                return {"ok": True, "duplicate": True}
            try:
                arrays = decode_arrays_bytes(blob)
            except ServiceError as exc:
                self.counters["bad_results"] += 1
                self._requeue_locked(item, f"corrupt result payload ({exc})")
                self._results_ready.notify_all()
                self._emit(
                    "fleet_bad_result",
                    lease_id=lease_id,
                    item_id=item_id,
                    worker_id=worker_id,
                    error=str(exc),
                )
                return {"ok": False, "requeued": item.error is None}
            item.result = {"arrays": arrays, "meta": body.get("meta") or {}}
            self.counters["items_completed"] += 1
            entry = self._workers.get(worker_id)
            if entry is not None:
                entry["completed"] += 1
            self._emit(
                "lease_completed",
                lease_id=lease_id,
                item_id=item_id,
                job_id=item.job_id,
                worker_id=worker_id,
            )
            self._results_ready.notify_all()
            return {"ok": True, "duplicate": False}

    def fail(self, lease_id: str, worker_id: str, error: str) -> Dict:
        """A worker reports it could not execute its leased item."""
        now = time.monotonic()
        with self._lock:
            self._touch_worker_locked(worker_id, now)
            lease = self._leases.pop(lease_id, None)
            if lease is not None:
                self._settled_leases[lease_id] = lease.item_id
                item = self._items.get(lease.item_id)
                if item is not None and not item.done:
                    self.counters["worker_failures"] += 1
                    self._requeue_locked(item, f"worker error: {error}")
                    self._results_ready.notify_all()
                    self._emit(
                        "fleet_item_failed",
                        lease_id=lease_id,
                        item_id=item.item_id,
                        worker_id=worker_id,
                        error=error,
                        attempts=item.attempts,
                    )
            return {"ok": True}

    # ---------------------------------------------------------- collection

    def wait(
        self,
        item_ids: Sequence[str],
        should_stop: Optional[Callable[[], bool]] = None,
        on_result: Optional[Callable[[str, Dict], None]] = None,
        poll: float = 0.1,
    ) -> Dict[str, Dict]:
        """Block until every item in ``item_ids`` has a result.

        ``should_stop`` is polled between waits; once true the wait aborts
        with :class:`FleetInterrupted` (cancellation, watchdog stall, or
        service shutdown -- the campaign's ladder takes over).  An item
        that exhausted its attempts raises :class:`ServiceError`.
        ``on_result`` observes each result exactly once, in completion
        order, while later items are still in flight (the exact-mode merge
        path -- merging commutes, so order is load balance only).
        """
        wanted = list(item_ids)
        seen: set = set()
        results: Dict[str, Dict] = {}
        while True:
            with self._lock:
                self._sweep_locked(time.monotonic())
                newly: List[Tuple[str, Dict]] = []
                for item_id in wanted:
                    if item_id in seen:
                        continue
                    item = self._items.get(item_id)
                    if item is None:
                        raise FleetInterrupted(
                            f"work item {item_id!r} vanished (job released)"
                        )
                    if item.error is not None:
                        raise ServiceError(item.error)
                    if item.done:
                        seen.add(item_id)
                        results[item_id] = item.result
                        newly.append((item_id, item.result))
                all_done = len(seen) == len(wanted)
                if not all_done and not newly:
                    self._results_ready.wait(poll)
            for item_id, result in newly:
                if on_result is not None:
                    on_result(item_id, result)
            if all_done:
                return results
            if should_stop is not None and should_stop():
                raise FleetInterrupted(
                    "fleet wait interrupted (cancel/stall/shutdown)"
                )

    # -------------------------------------------------------------- gauges

    def live_worker_count(self, window: float = WORKER_LIVE_SECONDS) -> int:
        now = time.monotonic()
        with self._lock:
            return sum(
                1
                for entry in self._workers.values()
                if now - entry.get("last_seen", 0.0) <= window
            )

    def stats(self) -> Dict:
        """Gauges and counters for ``/v1/metrics`` and ``GET /v1/fleet``."""
        now = time.monotonic()
        with self._lock:
            return {
                "lease_seconds": self.lease_seconds,
                "pending_items": len(self._pending),
                "active_leases": len(self._leases),
                "registered_jobs": len(self._jobs),
                "workers_seen": len(self._workers),
                "workers_live": sum(
                    1
                    for entry in self._workers.values()
                    if now - entry.get("last_seen", 0.0)
                    <= WORKER_LIVE_SECONDS
                ),
                "counters": dict(self.counters),
            }


# ---------------------------------------------------------------- executor


class FleetExecutor:
    """Campaign executor that accumulates chunks through the fleet.

    Implements the :class:`~repro.leakage.parallel.ParallelExecutor`
    ``accumulate``/``close`` interface, so
    :class:`~repro.leakage.campaign.EvaluationCampaign` drives it without
    knowing whether blocks run in a process pool or on remote workers.
    """

    def __init__(
        self,
        coordinator: FleetCoordinator,
        job_id: str,
        spec_dict: Dict,
        should_stop: Optional[Callable[[], bool]] = None,
    ):
        self.coordinator = coordinator
        self.job_id = job_id
        self.should_stop = should_stop
        coordinator.register_job(job_id, spec_dict)

    def accumulate(
        self,
        acc: HistogramAccumulator,
        fixed_secret: int,
        n_lanes: int,
        n_windows: int,
        blocks,
        classes=None,
        class_indices: Optional[Sequence[int]] = None,
        pairs: Sequence[Tuple[int, int]] = (),
        pair_offsets: Sequence[int] = (0,),
    ) -> None:
        """Slice ``blocks`` into leases, wait, merge (submission order)."""
        if classes is not None:
            raise ServiceError(
                "fleet execution ships class indices, not probe objects"
            )
        block_list = list(blocks)
        if not block_list:
            return
        slices = shard_blocks(
            block_list, self.coordinator.suggest_shards(len(block_list))
        )
        payloads = [
            {
                "kind": "blocks",
                "fixed_secret": fixed_secret,
                "n_lanes": n_lanes,
                "n_windows": n_windows,
                "blocks": [int(b) for b in chunk_slice],
                "class_indices": (
                    [int(i) for i in class_indices]
                    if class_indices is not None
                    else None
                ),
                "pairs": [[int(a), int(b)] for a, b in pairs],
                "pair_offsets": [int(o) for o in pair_offsets],
            }
            for chunk_slice in slices
        ]
        ids = self.coordinator.submit_items(self.job_id, payloads)
        results = self.coordinator.wait(ids, should_stop=self.should_stop)
        for item_id in ids:
            arrays = results[item_id]["arrays"]
            meta = results[item_id]["meta"]
            acc.merge(
                HistogramAccumulator.from_state(
                    list(meta.get("table_ids", [])), arrays
                )
            )

    def close(self) -> None:
        """Drop any in-flight items for this job (idempotent)."""
        self.coordinator.release_job(self.job_id)


def fleet_exact_dispatch(
    coordinator: FleetCoordinator,
    job_id: str,
    should_stop: Optional[Callable[[], bool]] = None,
):
    """A ``dispatch`` hook for :class:`ShardedExactAnalyzer` fleet runs.

    Replaces the analyzer's process pool: each pending ``(class, shard,
    lane_bits)`` task becomes a leased work item, and ``merge`` fires in
    completion order as workers stream counts back (sorted-union merging
    commutes, so the final histograms -- and the report bytes -- match the
    serial sweep exactly).
    """

    def dispatch(pending, merge, stop) -> bool:
        payloads = [
            {
                "kind": "exact_shard",
                "class_index": int(ci),
                "shard_index": int(si),
                "lane_bits": int(lane_bits),
            }
            for ci, si, lane_bits in pending
        ]
        ids = coordinator.submit_items(job_id, payloads)

        def merge_result(item_id: str, result: Dict) -> None:
            arrays = result["arrays"]
            meta = result["meta"]
            merge(
                int(meta["class_index"]),
                int(meta["shard_index"]),
                arrays["keys"],
                arrays["rows"],
                arrays["counts"],
            )

        effective_stop = stop if stop is not None else should_stop
        try:
            coordinator.wait(
                ids, should_stop=effective_stop, on_result=merge_result
            )
        except FleetInterrupted:
            return True
        return False

    return dispatch
