"""Bounded in-memory job queue for the evaluation service.

The queue holds only job *ids* -- the durable queue image is the set of
``queued``/``running`` records in the :class:`~repro.service.store.JobStore`,
which is how jobs survive a crash.  Bounding the in-memory queue is the
service's admission control: a full queue rejects new submissions with HTTP
429 instead of accepting unbounded work it cannot schedule (cache hits
bypass the queue entirely, so rejects only ever apply to genuinely new
computations).

``get`` supports a timeout so runner threads can poll their shutdown flag,
and :meth:`close` wakes every waiter so shutdown never deadlocks on an
empty queue.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional

from repro.errors import ServiceError


class QueueFull(ServiceError):
    """The job queue is at capacity; the submission was rejected."""


class JobQueue:
    """A bounded FIFO of job ids with timed blocking gets."""

    def __init__(self, maxsize: int = 256, fault_plane=None):
        if maxsize < 1:
            raise ServiceError("queue maxsize must be at least 1")
        self.maxsize = maxsize
        #: chaos fault plane for the "queue.put" site (simulated
        #: queue-full storms); ``None`` in production.
        self.fault_plane = fault_plane
        self._items: Deque[str] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def put(self, job_id: str) -> None:
        """Enqueue ``job_id``; raises :class:`QueueFull` at capacity."""
        if self.fault_plane is not None and self.fault_plane.decide(
            "queue.put"
        ):
            # Chaos site "queue.put": an admission-control storm.  The
            # submission path must answer 429, mark the record failed, and
            # leave the store consistent -- exactly as if real load had
            # filled the queue.
            raise QueueFull(
                f"job queue is full ({self.maxsize} queued; injected "
                "chaos storm); retry later"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("queue is closed")
            if len(self._items) >= self.maxsize:
                raise QueueFull(
                    f"job queue is full ({self.maxsize} queued); retry later"
                )
            self._items.append(job_id)
            self._not_empty.notify()

    def get(self, timeout: float = 0.2) -> Optional[str]:
        """Dequeue one job id, or ``None`` on timeout / closed queue."""
        with self._lock:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def close(self) -> None:
        """Stop accepting work and wake every blocked :meth:`get`."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def snapshot(self) -> List[str]:
        """Queued job ids, front first (for diagnostics)."""
        with self._lock:
            return list(self._items)
