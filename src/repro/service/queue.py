"""Bounded in-memory job queue with priority lanes for the service.

The queue holds only job *ids* -- the durable queue image is the set of
``queued``/``running`` records in the :class:`~repro.service.store.JobStore`,
which is how jobs survive a crash.  Bounding the in-memory queue is the
service's admission control: a full queue rejects new submissions with HTTP
429 instead of accepting unbounded work it cannot schedule (cache hits
bypass the queue entirely, so rejects only ever apply to genuinely new
computations).

Admission is *elastic*, not a single cliff:

* three priority lanes (``high`` > ``normal`` > ``low``); ``get`` always
  drains the highest non-empty lane, FIFO within a lane;
* graduated backpressure: ``low``-priority work is shed once total depth
  crosses ``shed_low_at`` (half of capacity by default), so background
  submissions yield headroom to interactive ones *before* the hard bound;
* every rejection carries a ``retry_after`` hint, surfaced as the HTTP
  ``Retry-After`` header -- clients with the retry-enabled CLI back off
  instead of hammering.

``get`` supports a timeout so runner threads can poll their shutdown flag,
and :meth:`close` wakes every waiter so shutdown never deadlocks on an
empty queue.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import ServiceError

#: Priority lanes, highest first; the drain order and the validation set.
PRIORITIES = ("high", "normal", "low")

#: ``Retry-After`` hint (seconds) attached to capacity rejections.
DEFAULT_RETRY_AFTER = 5.0


class QueueFull(ServiceError):
    """The job queue rejected a submission (capacity or shedding).

    ``retry_after`` is the backoff hint in seconds the HTTP layer turns
    into a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = DEFAULT_RETRY_AFTER):
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceeded(QueueFull):
    """A tenant hit its active-job quota; the submission was rejected.

    Subclasses :class:`QueueFull` so every existing 429 mapping (HTTP
    layer, CLI, tests) applies unchanged.
    """


class JobQueue:
    """A bounded priority queue of job ids with timed blocking gets."""

    def __init__(
        self,
        maxsize: int = 256,
        fault_plane=None,
        shed_low_at: Optional[int] = None,
    ):
        if maxsize < 1:
            raise ServiceError("queue maxsize must be at least 1")
        self.maxsize = maxsize
        #: total depth at which ``low``-priority submissions start being
        #: shed; defaults to half of capacity (never below 1).
        self.shed_low_at = (
            shed_low_at if shed_low_at is not None else max(1, maxsize // 2)
        )
        if self.shed_low_at < 1 or self.shed_low_at > maxsize:
            raise ServiceError(
                "shed_low_at must be between 1 and the queue maxsize"
            )
        #: chaos fault plane for the "queue.put" site (simulated
        #: queue-full storms); ``None`` in production.
        self.fault_plane = fault_plane
        self._lanes: Dict[str, Deque[str]] = {
            priority: deque() for priority in PRIORITIES
        }
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def _depth_locked(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def put(self, job_id: str, priority: str = "normal") -> None:
        """Enqueue ``job_id``; raises :class:`QueueFull` when rejected.

        ``low`` submissions are shed at ``shed_low_at`` total depth; all
        lanes reject at ``maxsize``.
        """
        if priority not in PRIORITIES:
            raise ServiceError(
                f"unknown priority {priority!r}; choose from {PRIORITIES}"
            )
        if self.fault_plane is not None and self.fault_plane.decide(
            "queue.put"
        ):
            # Chaos site "queue.put": an admission-control storm.  The
            # submission path must answer 429, mark the record failed, and
            # leave the store consistent -- exactly as if real load had
            # filled the queue.
            raise QueueFull(
                f"job queue is full ({self.maxsize} queued; injected "
                "chaos storm); retry later"
            )
        with self._lock:
            if self._closed:
                raise ServiceError("queue is closed")
            depth = self._depth_locked()
            if depth >= self.maxsize:
                raise QueueFull(
                    f"job queue is full ({self.maxsize} queued); retry later"
                )
            if priority == "low" and depth >= self.shed_low_at:
                raise QueueFull(
                    f"queue depth {depth} is past the low-priority shed "
                    f"point ({self.shed_low_at}); retry later or raise "
                    "priority",
                )
            self._lanes[priority].append(job_id)
            self._not_empty.notify()

    def get(self, timeout: float = 0.2) -> Optional[str]:
        """Dequeue the highest-priority job id, or ``None`` on timeout."""
        with self._lock:
            if self._depth_locked() == 0 and not self._closed:
                self._not_empty.wait(timeout)
            for priority in PRIORITIES:
                lane = self._lanes[priority]
                if lane:
                    return lane.popleft()
            return None

    def close(self) -> None:
        """Stop accepting work and wake every blocked :meth:`get`."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return self._depth_locked()

    def depth_by_priority(self) -> Dict[str, int]:
        """Per-lane depth (for ``/v1/metrics``)."""
        with self._lock:
            return {
                priority: len(lane) for priority, lane in self._lanes.items()
            }

    def snapshot(self) -> List[str]:
        """Queued job ids in drain order (for diagnostics)."""
        with self._lock:
            return [
                job_id
                for priority in PRIORITIES
                for job_id in self._lanes[priority]
            ]
