"""Structured telemetry for the evaluation service.

Every operationally interesting moment -- job lifecycle transitions, cache
hits, campaign chunk completions, worker-pool events -- is appended to a
JSON-lines file as one self-describing event record::

    {"ts": 1754500000.123, "event": "job_started", "job_id": "...", ...}

and simultaneously folded into an in-memory counter table that the HTTP
layer serves verbatim at ``/metrics``.  The file is the durable,
grep/jq-able audit trail (CI uploads it as an artifact); the counters are
the cheap live view.  Writes are line-buffered and serialized under a lock,
so events from concurrent runner threads never interleave within a line --
a reader can always ``json.loads`` each line independently.

The logger doubles as the injectable ``hook(event, payload)`` expected by
:class:`~repro.leakage.campaign.EvaluationCampaign` and
:class:`~repro.leakage.parallel.ParallelExecutor` via :meth:`campaign_hook`,
which stamps every forwarded event with its job id.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter
from typing import Callable, Dict, Optional

#: Events counted under their own name in the ``/metrics`` counter table.
#: Everything else still lands in the JSON-lines file.
COUNTED_EVENTS = frozenset(
    {
        "job_submitted",
        "job_started",
        "job_completed",
        "job_failed",
        "job_cancelled",
        "job_interrupted",
        "job_recovered",
        "cache_hit",
        "cache_miss",
        "chunk_done",
        "checkpoint_saved",
        "pool_start",
        "serial_fallback",
        "shard_dispatch",
        "probe_decided",
        "adaptive_escalated",
        "adaptive_finished_early",
        "program_sliced",
        "job_restarted",
        "job_dead_letter",
        "watchdog_stalled",
        "lease_granted",
        "lease_expired",
        "lease_completed",
        "lease_duplicate",
        "fleet_bad_result",
        "fleet_item_failed",
        "quota_rejected",
        "degraded_serial",
        "degradation",
        "store_corruption",
        "checkpoint_corrupt",
        "checkpoint_fallback",
        "io_retry",
        "worker_stalled",
        "pool_restart",
        "chaos_fault",
    }
)


class Telemetry:
    """JSON-lines event log plus thread-safe metric counters."""

    def __init__(self, path: Optional[str] = None, fault_plane=None):
        self.path = path
        #: chaos fault plane for the "telemetry.write" site.
        self.fault_plane = fault_plane
        self._lock = threading.Lock()
        self._counters: Counter = Counter()
        #: cumulative seconds per evaluation stage (stimulus / simulate /
        #: extract / histogram), folded from ``chunk_done`` payloads so
        #: ``/metrics`` can attribute campaign wall-clock per stage.
        self._stage_seconds: Dict[str, float] = {}
        self._handle = open(path, "a", buffering=1) if path else None

    # ---------------------------------------------------------------- events

    def emit(self, event: str, **fields) -> None:
        """Append one event line and bump its counter.

        Telemetry is observability, never control flow: a failing event
        write (disk full, injected "telemetry.write" fault) must not fail
        the job it narrates, so write errors are swallowed into the
        ``telemetry_write_errors`` counter and the in-memory counters keep
        counting.
        """
        record = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        with self._lock:
            if event in COUNTED_EVENTS:
                self._counters[event] += 1
            if event == "chunk_done":
                stages = fields.get("stage_seconds")
                if isinstance(stages, dict):
                    for name, seconds in stages.items():
                        try:
                            self._stage_seconds[name] = (
                                self._stage_seconds.get(name, 0.0)
                                + float(seconds)
                            )
                        except (TypeError, ValueError):
                            continue
            if self._handle is None:
                return
            try:
                if self.fault_plane is not None:
                    self.fault_plane.maybe_fail("telemetry.write")
                self._handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
            except (OSError, ValueError):
                self._counters["telemetry_write_errors"] += 1

    def incr(self, name: str, by: int = 1) -> None:
        """Bump a bare counter without writing an event line."""
        with self._lock:
            self._counters[name] += by

    def counters(self) -> Dict[str, int]:
        """Snapshot of every counter (for ``/metrics``)."""
        with self._lock:
            return dict(self._counters)

    def stage_seconds(self) -> Dict[str, float]:
        """Cumulative per-stage campaign seconds (for ``/metrics``)."""
        with self._lock:
            return {
                name: round(seconds, 6)
                for name, seconds in self._stage_seconds.items()
            }

    # ----------------------------------------------------------------- hooks

    def emit_hook(self) -> Callable[[str, Dict], None]:
        """A bare ``hook(event, payload)`` adapter over :meth:`emit` (the
        shape :class:`~repro.service.store.JobStore` and
        :func:`repro.chaos.retry_io` expect)."""

        def hook(event: str, payload: Dict) -> None:
            self.emit(event, **payload)

        return hook

    def campaign_hook(self, job_id: str) -> Callable[[str, Dict], None]:
        """A campaign/executor hook that stamps events with ``job_id``."""

        def hook(event: str, payload: Dict) -> None:
            self.emit(event, job_id=job_id, **payload)

        return hook

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Flush and close the event file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
