"""JSON-over-HTTP front end for the evaluation service (stdlib only).

Endpoints (all JSON, under the versioned ``/v1/`` prefix):

* ``POST /v1/jobs`` -- submit a job spec.  Answers 200 with the existing
  record on a verdict-cache hit (``"cached": true`` -- no simulation runs),
  200 with the in-flight record when an identical job is already queued or
  running (``"deduplicated": true``), 201 with a fresh ``queued`` record
  otherwise, 400 on a bad spec, 429 when the queue is full.
* ``GET /v1/jobs`` -- all job records, oldest first.
* ``GET /v1/jobs/<id>`` -- one record; ``?wait=<seconds>`` long-polls until
  the job reaches a terminal state (or the wait times out -- the caller
  distinguishes by the returned ``state``).  ``wait`` must be a finite,
  non-negative number of seconds; honoured waits are bounded by
  ``MAX_LONG_POLL_SECONDS``, and absurd values (beyond
  ``MAX_ACCEPTED_WAIT_SECONDS``) are a 400.
* ``GET /v1/jobs/<id>/report`` -- the full serialized report,
  byte-identical to the run that populated the verdict cache and verified
  on read; 409 while not finished, 410 when the stored verdict failed
  verification and was quarantined (resubmit to recompute).
* ``POST /v1/jobs/<id>/cancel`` -- stop a queued/running job at its next
  chunk boundary.
* ``GET /v1/healthz`` -- liveness + uptime + ``api_version``.
* ``GET /v1/metrics`` -- telemetry counters, cache stats (with hit rate),
  queue depth per priority lane, job state counts, busy workers, and --
  when the fleet is enabled -- worker liveness and lease gauges.

With ``fleet=True`` the service is a *coordinator* and four more routes
implement the lease protocol workers speak (see
:mod:`repro.service.fleet`):

* ``POST /v1/fleet/lease`` -- pull one work item (``{"work": null}`` when
  idle); * ``POST /v1/fleet/leases/<id>/heartbeat`` -- renew a lease;
* ``POST /v1/fleet/leases/<id>/complete`` -- deliver a result;
* ``POST /v1/fleet/leases/<id>/fail`` -- report an execution error;
* ``GET /v1/fleet`` -- coordinator gauges.

Admission is elastic rather than a single 429 cliff: specs carry a
``priority`` lane (low-priority work sheds first under backpressure) and a
``tenant`` (a per-tenant cap on active jobs, when configured).  Every 429
carries a ``Retry-After`` header.

The pre-versioning paths (``/jobs``, ``/healthz``, ``/metrics``, ...)
completed their deprecation cycle and are retired: they answer ``404``
with a ``Link: rel="successor-version"`` header naming the ``/v1/`` route
to migrate to.  Clients must use ``/v1/`` paths.

The server is a ``ThreadingHTTPServer``: every request handler runs in its
own thread and only touches the lock-protected store/queue/telemetry, so
long-polls do not block submissions.  Binding port 0 picks an ephemeral
port (tests use this); the bound port is exposed as ``service.port``.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, ServiceError
from repro.leakage.report import SCHEMA_VERSION
from repro.service.queue import JobQueue, QueueFull, QuotaExceeded
from repro.service.runner import JobRunner, design_hash_for, verdict_summary
from repro.service.store import JobSpec, JobStore
from repro.service.telemetry import Telemetry
from repro.spec import API_VERSION

#: Longest ``?wait=`` a single request may hold a handler thread.
MAX_LONG_POLL_SECONDS = 60.0

#: ``?wait=`` values above this are rejected outright (400) rather than
#: clamped: an hour-scale wait is a client bug (lost unit conversion, ms
#: vs s), and silently clamping it would hide that bug.
MAX_ACCEPTED_WAIT_SECONDS = 3600.0


def _parse_wait(raw: str) -> float:
    """Validate and bound a ``?wait=`` long-poll parameter.

    Negative, NaN, infinite, and absurdly large values are client errors
    and answer 400 (via :class:`ServiceError`); values between the
    documented maximum and the absurdity threshold clamp to
    :data:`MAX_LONG_POLL_SECONDS` so a handler thread is never held
    longer than documented.
    """
    try:
        wait = float(raw)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"wait must be a number, got {raw!r}") from exc
    if math.isnan(wait) or math.isinf(wait):
        raise ServiceError(f"wait must be finite, got {raw!r}")
    if wait < 0:
        raise ServiceError(f"wait must be non-negative, got {raw!r}")
    if wait > MAX_ACCEPTED_WAIT_SECONDS:
        raise ServiceError(
            f"wait of {raw!r} seconds is out of range (maximum honoured "
            f"long-poll is {MAX_LONG_POLL_SECONDS:g}s)"
        )
    return min(wait, MAX_LONG_POLL_SECONDS)

#: First path segments of the retired pre-versioning aliases: they now
#: answer 404 with a ``Link: rel="successor-version"`` migration hint.
_RETIRED_ROOTS = ("healthz", "metrics", "jobs")


class EvaluationService:
    """Store + queue + runner + telemetry behind one HTTP server."""

    def __init__(
        self,
        state_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        runner_threads: int = 1,
        queue_limit: int = 256,
        telemetry_path: Optional[str] = None,
        stall_timeout: Optional[float] = None,
        max_restarts: int = 3,
        fault_plane=None,
        fleet: bool = False,
        local_workers: int = 1,
        lease_seconds: float = 30.0,
        tenant_quota: Optional[int] = None,
    ):
        # One fault plane (or None) threads through every layer, so a
        # single ChaosPolicy drives the whole service's fault schedule.
        self.fault_plane = fault_plane
        if tenant_quota is not None and tenant_quota < 1:
            raise ServiceError("tenant_quota must be a positive integer")
        #: per-tenant cap on active (queued+running) jobs; ``None`` = off.
        self.tenant_quota = tenant_quota
        # The default telemetry file lives inside the state dir, which may
        # not exist yet on a fresh service (JobStore creates it lazily).
        os.makedirs(os.path.abspath(state_dir), exist_ok=True)
        self.telemetry = Telemetry(
            telemetry_path
            if telemetry_path is not None
            else os.path.join(os.path.abspath(state_dir), "telemetry.jsonl"),
            fault_plane=fault_plane,
        )
        self.store = JobStore(
            state_dir, hook=self.telemetry.emit_hook(), fault_plane=fault_plane
        )
        self.queue = JobQueue(queue_limit, fault_plane=fault_plane)
        #: fleet coordinator; ``None`` when distributed execution is off.
        self.fleet = None
        if fleet:
            from repro.service.fleet import FleetCoordinator

            self.fleet = FleetCoordinator(
                telemetry=self.telemetry,
                lease_seconds=lease_seconds,
                fault_plane=fault_plane,
            )
        self.runner = JobRunner(
            self.store,
            self.queue,
            self.telemetry,
            threads=runner_threads,
            stall_timeout=stall_timeout,
            max_restarts=max_restarts,
            fault_plane=fault_plane,
            fleet=self.fleet,
        )
        #: embedded local fleet workers (the degenerate one-host case);
        #: only started when the fleet is on.
        self.local_workers = local_workers if fleet else 0
        self._worker_threads: list = []
        self._worker_stop = threading.Event()
        #: serializes dedupe + quota + enqueue in :meth:`submit`, so two
        #: concurrent identical submissions can never both miss the
        #: in-flight dedupe check and double-admit.
        self._admission_lock = threading.Lock()
        self.started_at = time.time()
        handler = _make_handler(self)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The actually-bound port (resolves port 0 to the ephemeral one)."""
        return self.httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def _start_local_workers(self) -> None:
        """Spawn the embedded fleet workers (idempotent, fleet only)."""
        if self.fleet is None or self._worker_threads:
            return
        from repro.service.worker import FleetWorker, LocalTransport

        for index in range(self.local_workers):
            worker = FleetWorker(
                LocalTransport(self.fleet),
                worker_id=f"local-{index}",
                poll_interval=0.05,
            )
            thread = threading.Thread(
                target=worker.run,
                args=(self._worker_stop,),
                name=f"repro-fleet-local-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)

    def start(self) -> int:
        """Recover interrupted jobs, start workers, serve in a thread."""
        recovered = self.runner.recover()
        self.runner.start()
        self._start_local_workers()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._serve_thread.start()
        self.telemetry.emit(
            "service_started",
            address=self.address,
            recovered_jobs=recovered,
            runner_threads=self.runner.n_threads,
        )
        return recovered

    def serve_forever(self) -> None:
        """Blocking variant of :meth:`start` for the CLI."""
        recovered = self.runner.recover()
        self.runner.start()
        self._start_local_workers()
        self.telemetry.emit(
            "service_started",
            address=self.address,
            recovered_jobs=recovered,
            runner_threads=self.runner.n_threads,
        )
        try:
            self.httpd.serve_forever()
        finally:
            self.stop()

    def stop(self) -> None:
        """Graceful shutdown: running jobs return to the durable queue."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.runner.shutdown(wait=True)
        self._worker_stop.set()
        for thread in self._worker_threads:
            thread.join(timeout=10)
        self._worker_threads = []
        self.telemetry.emit("service_stopped")
        self.telemetry.close()

    # ------------------------------------------------------------ operations

    def submit(self, spec_dict: Dict) -> Tuple[int, Dict]:
        """Submit a job; returns (HTTP status, response body)."""
        spec = JobSpec.from_dict(spec_dict)
        # Building the design validates design/scheme compatibility and
        # yields the netlist structure hash that leads the cache key.
        cache_key = spec.cache_key(design_hash_for(spec))
        cached = self.store.get_result(cache_key)
        if cached is not None:
            record = self._cached_record(spec, cache_key, cached)
            self.telemetry.emit(
                "cache_hit", job_id=record["job_id"], cache_key=cache_key
            )
            self.telemetry.emit(
                "job_submitted", job_id=record["job_id"], cached=True
            )
            return 200, record
        # Everything from the dedupe check to the enqueue happens under
        # one lock: without it, two concurrent identical submissions can
        # both miss ``_find_active`` and double-admit the same spec.  The
        # expensive work (design build, hashing) stayed outside.
        with self._admission_lock:
            active = self._find_active(cache_key)
            if active is not None:
                response = dict(active)
                response["deduplicated"] = True
                self.telemetry.emit(
                    "job_submitted",
                    job_id=active["job_id"],
                    deduplicated=True,
                )
                return 200, response
            if self.tenant_quota is not None:
                busy = self._tenant_active(spec.tenant)
                if busy >= self.tenant_quota:
                    self.telemetry.emit(
                        "quota_rejected",
                        tenant=spec.tenant,
                        active_jobs=busy,
                        quota=self.tenant_quota,
                    )
                    raise QuotaExceeded(
                        f"tenant {spec.tenant!r} has {busy} active jobs "
                        f"(quota {self.tenant_quota}); retry later"
                    )
            record = self.store.new_job(spec, cache_key)
            try:
                self.queue.put(record["job_id"], priority=spec.priority)
            except QueueFull:
                self.store.update_job(
                    record["job_id"], state="failed", error="queue full"
                )
                raise
        self.telemetry.emit("cache_miss", job_id=record["job_id"],
                            cache_key=cache_key)
        self.telemetry.emit("job_submitted", job_id=record["job_id"],
                            cached=False)
        return 201, record

    def _tenant_active(self, tenant: str) -> int:
        """Active (queued+running) jobs charged to ``tenant``."""
        return sum(
            1
            for record in self.store.list_jobs()
            if record["state"] in ("queued", "running")
            and (record.get("spec") or {}).get("tenant", "default") == tenant
        )

    def _cached_record(
        self, spec: JobSpec, cache_key: str, report_bytes: bytes
    ) -> Dict:
        """A terminal job record answered entirely from the verdict cache."""
        record = self.store.new_job(spec, cache_key)
        now = round(time.time(), 3)
        summary = verdict_summary(json.loads(report_bytes.decode("utf-8")))
        return self.store.update_job(
            record["job_id"],
            state="done",
            cached=True,
            started_at=now,
            finished_at=now,
            result=summary,
        )

    def _find_active(self, cache_key: str) -> Optional[Dict]:
        for record in self.store.list_jobs():
            if (
                record["cache_key"] == cache_key
                and record["state"] in ("queued", "running")
            ):
                return record
        return None

    def metrics(self) -> Dict:
        from repro.engines import engines_info
        from repro.netlist.compile import program_cache_info
        from repro.netlist.native import native_kernel_cache_info

        cache = self.store.stats.to_dict()
        body = {
            "schema_version": SCHEMA_VERSION,
            "api_version": API_VERSION,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "counters": self.telemetry.counters(),
            "stage_seconds": self.telemetry.stage_seconds(),
            "cache": cache,
            # The load harness reads the hit rate as a top-level gauge.
            "cache_hit_rate": cache.get("hit_rate"),
            "program_cache": program_cache_info()._asdict(),
            "engines": engines_info(),
            "native_kernel_cache": native_kernel_cache_info()._asdict(),
            "jobs": self.store.counts_by_state(),
            "queue_depth": len(self.queue),
            "queue": {
                "depth": len(self.queue),
                "by_priority": self.queue.depth_by_priority(),
                "capacity": self.queue.maxsize,
                "shed_low_at": self.queue.shed_low_at,
            },
            "admission": {
                "tenant_quota": self.tenant_quota,
            },
            "busy_workers": self.runner.busy_workers,
            "runner_threads": self.runner.n_threads,
            "watchdog": {
                "stall_timeout": self.runner.stall_timeout,
                "max_restarts": self.runner.max_restarts,
            },
        }
        if self.fleet is not None:
            body["fleet"] = self.fleet.stats()
        return body

    def health(self) -> Dict:
        return {
            "ok": True,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "schema_version": SCHEMA_VERSION,
            "api_version": API_VERSION,
        }


def _make_handler(service: EvaluationService):
    """Handler class closed over the service (no globals)."""

    class ServiceHandler(BaseHTTPRequestHandler):
        server_version = "repro-eval-service/1"
        protocol_version = "HTTP/1.1"

        # --------------------------------------------------------- plumbing

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # requests land in telemetry, not stderr

        def _send_json(
            self,
            status: int,
            body: Dict,
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            data = (json.dumps(body, indent=2) + "\n").encode("utf-8")
            self._send_bytes(status, data, headers=headers)

        def _send_bytes(
            self, status: int, data: bytes,
            content_type: str = "application/json",
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _route_parts(self, parsed) -> Optional[list]:
            """Path segments with the ``/v1`` prefix stripped.

            Requests on the retired pre-versioning paths answer 404 with
            a ``Link: rel="successor-version"`` header naming the ``/v1``
            route; this returns ``None`` so the caller stops routing.
            """
            parts = [p for p in parsed.path.split("/") if p]
            if parts and parts[0] == API_VERSION:
                return parts[1:]
            if parts and parts[0] in _RETIRED_ROOTS:
                successor = f"/{API_VERSION}{parsed.path}"
                self._send_json(
                    404,
                    {
                        "error": (
                            f"the unversioned path {parsed.path!r} was "
                            f"retired; use {successor!r}"
                        ),
                        "successor": successor,
                    },
                    headers={
                        "Link": f'<{successor}>; rel="successor-version"'
                    },
                )
                return None
            return parts

        def _read_body(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServiceError("request body must be a JSON object")
            try:
                return json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                raise ServiceError(f"invalid JSON body: {exc}") from exc

        # ----------------------------------------------------------- routes

        def do_GET(self) -> None:  # noqa: N802 - stdlib contract
            try:
                self._route_get()
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - never kill the server
                self._send_json(500, {"error": f"internal error: {exc!r}"})

        def do_POST(self) -> None:  # noqa: N802 - stdlib contract
            try:
                self._route_post()
            except QueueFull as exc:
                retry_after = getattr(exc, "retry_after", None)
                self._send_json(
                    429,
                    {"error": str(exc), "retry_after": retry_after},
                    headers=(
                        {"Retry-After": f"{retry_after:g}"}
                        if retry_after
                        else None
                    ),
                )
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001
                self._send_json(500, {"error": f"internal error: {exc!r}"})

        def _route_get(self) -> None:
            parsed = urlparse(self.path)
            parts = self._route_parts(parsed)
            if parts is None:
                return
            if parts == ["healthz"]:
                self._send_json(200, service.health())
                return
            if parts == ["metrics"]:
                self._send_json(200, service.metrics())
                return
            if parts == ["jobs"]:
                self._send_json(200, {"jobs": service.store.list_jobs()})
                return
            if len(parts) == 2 and parts[0] == "jobs":
                query = parse_qs(parsed.query)
                wait = _parse_wait(query.get("wait", ["0"])[0])
                if wait > 0:
                    record = service.store.wait_for_terminal(parts[1], wait)
                else:
                    record = service.store.get_job(parts[1])
                if record is None:
                    self._send_json(
                        404, {"error": f"unknown job {parts[1]!r}"}
                    )
                    return
                self._send_json(200, record)
                return
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "report":
                self._send_report(parts[1])
                return
            if parts == ["fleet"] and service.fleet is not None:
                self._send_json(200, service.fleet.stats())
                return
            self._send_json(404, {"error": f"no route {parsed.path!r}"})

        def _send_report(self, job_id: str) -> None:
            record = service.store.get_job(job_id)
            if record is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
                return
            if record["state"] != "done":
                self._send_json(
                    409,
                    {
                        "error": f"job {job_id!r} is {record['state']}, "
                        "report not available",
                        "state": record["state"],
                    },
                )
                return
            # Served verbatim from the content-addressed store (verified
            # on read): every job with this cache key gets byte-identical
            # bytes.  A record that rotted since the job finished has been
            # quarantined by the read -- answer 410 with a resubmit hint,
            # never a 500 and never unverified bytes.
            data = service.store.read_result(record["cache_key"])
            if data is None:
                self._send_json(
                    410,
                    {
                        "error": (
                            f"the stored verdict for job {job_id!r} failed "
                            "verification and was quarantined; resubmit the "
                            "job to recompute it"
                        ),
                        "state": record["state"],
                        "cache_key": record["cache_key"],
                    },
                )
                return
            self._send_bytes(200, data)

        def _route_post(self) -> None:
            parsed = urlparse(self.path)
            parts = self._route_parts(parsed)
            if parts is None:
                return
            if parts == ["jobs"]:
                status, body = service.submit(self._read_body())
                self._send_json(status, body)
                return
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                record = service.runner.cancel(parts[1])
                self._send_json(202, record)
                return
            if parts and parts[0] == "fleet":
                self._route_fleet_post(parts)
                return
            self._send_json(404, {"error": f"no route {parsed.path!r}"})

        def _route_fleet_post(self, parts: list) -> None:
            """Worker-facing lease protocol (coordinator mode only)."""
            if service.fleet is None:
                self._send_json(
                    404, {"error": "this service is not a fleet coordinator"}
                )
                return
            body = self._read_body()
            worker_id = str(body.get("worker_id") or "anonymous")
            if parts == ["fleet", "lease"]:
                work = service.fleet.lease(worker_id)
                self._send_json(200, {"work": work})
                return
            if len(parts) == 4 and parts[1] == "leases":
                lease_id, action = parts[2], parts[3]
                if action == "heartbeat":
                    ok = service.fleet.heartbeat(lease_id, worker_id)
                    self._send_json(200, {"ok": ok})
                    return
                if action == "complete":
                    self._send_json(
                        200, service.fleet.complete(lease_id, worker_id, body)
                    )
                    return
                if action == "fail":
                    self._send_json(
                        200,
                        service.fleet.fail(
                            lease_id, worker_id, str(body.get("error") or "")
                        ),
                    )
                    return
            self._send_json(404, {"error": f"no fleet route {parts!r}"})

    return ServiceHandler
