"""Background job execution for the evaluation service.

A :class:`JobRunner` owns a small pool of worker *threads*, each draining
the :class:`~repro.service.queue.JobQueue` and executing one job at a time
as a checkpointable :class:`~repro.leakage.campaign.EvaluationCampaign`.
Threads (not processes) are the right grain here: a campaign already
parallelizes its heavy lifting across a process pool when the job asks for
workers, and the runner thread spends its life inside numpy/multiprocessing
calls that release the GIL.

Execution contract:

* every job runs with a per-job checkpoint file inside the store, chunked
  by default, so progress is durable at chunk granularity;
* the campaign's ``should_stop`` is wired to two events -- per-job
  cancellation and service shutdown.  Both stop the campaign cleanly at the
  next chunk boundary; cancellation marks the job ``cancelled``, shutdown
  returns it to ``queued`` so the next boot resumes it from its checkpoint
  (the same path a SIGKILL takes, just without the lost in-flight chunk);
* on success the serialized report is memoized in the content-addressed
  verdict store, making every future identical submission an O(1) lookup;
* the telemetry hook threads through campaign *and* executor, so the event
  log shows chunk throughput and pool behaviour per job.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from typing import Dict, Optional

from repro.core.optimizations import (
    FIRST_ORDER_SCHEMES,
    RandomnessScheme,
    SecondOrderScheme,
)
from repro.errors import FleetInterrupted, ReproError, ServiceError
from repro.leakage.campaign import EvaluationCampaign
from repro.leakage.evaluator import LeakageEvaluator
from repro.leakage.model import ProbingModel
from repro.service.queue import JobQueue
from repro.service.store import JobSpec, JobStore
from repro.service.telemetry import Telemetry

# Server-side default chunking now lives on the spec itself; re-exported
# because earlier service versions defined it here.
from repro.spec import DEFAULT_CHUNK_SIZE  # noqa: F401

_SCHEMES = {scheme.value: scheme for scheme in FIRST_ORDER_SCHEMES}
_SCHEMES.update({scheme.value: scheme for scheme in SecondOrderScheme})
_SHORTCUTS = {
    "full": RandomnessScheme.FULL,
    "eq6": RandomnessScheme.DEMEYER_EQ6,
    "eq9": RandomnessScheme.PROPOSED_EQ9,
}

DESIGNS = ("kronecker", "sbox", "sbox2", "sbox-nokronecker")


def resolve_scheme(name: str):
    """Scheme enum for a CLI/API name (shortcuts included)."""
    if name in _SHORTCUTS:
        return _SHORTCUTS[name]
    if name in _SCHEMES:
        return _SCHEMES[name]
    raise ServiceError(
        f"unknown scheme {name!r}; choose from "
        f"{sorted(_SHORTCUTS) + sorted(_SCHEMES)}"
    )


def build_design(design: str, scheme_name: str):
    """Build a named design; returns an object with ``.dut``/``.netlist``."""
    scheme = resolve_scheme(scheme_name)
    if design == "kronecker":
        from repro.core.kronecker import build_kronecker_delta

        order = 2 if isinstance(scheme, SecondOrderScheme) else 1
        return build_kronecker_delta(scheme, order=order)
    if design == "sbox":
        from repro.core.sbox import build_masked_sbox

        if not isinstance(scheme, RandomnessScheme):
            raise ServiceError("the S-box needs a first-order scheme")
        return build_masked_sbox(scheme)
    if design == "sbox2":
        from repro.core.sbox2 import build_masked_sbox_second_order

        if not isinstance(scheme, SecondOrderScheme):
            scheme = SecondOrderScheme.FULL_21
        return build_masked_sbox_second_order(scheme)
    if design == "sbox-nokronecker":
        from repro.core.sbox import build_masked_sbox

        return build_masked_sbox(include_kronecker=False)
    raise ServiceError(
        f"unknown design {design!r}; choose from {list(DESIGNS)}"
    )


def design_hash_for(spec: JobSpec) -> str:
    """Netlist structure hash leading a spec's verdict-cache key.

    Equals ``evaluator_for(spec).design_hash()`` but skips evaluator
    construction (probe extraction, engine setup) -- the submit path and
    ``mode="exact"`` jobs only need the hash.
    """
    from repro.netlist.core import netlist_content_hash

    built = build_design(spec.design, spec.scheme)
    return netlist_content_hash(built.dut.netlist)


def evaluator_for(spec: JobSpec) -> LeakageEvaluator:
    """Construct the evaluator a job spec describes."""
    built = build_design(spec.design, spec.scheme)
    model = (
        ProbingModel.GLITCH_TRANSITION
        if spec.model == "glitch-transition"
        else ProbingModel.GLITCH
    )
    return LeakageEvaluator(
        built.dut, model, seed=spec.seed, engine=spec.engine,
        slice_cones=spec.slice,
    )


def verdict_summary(report_dict: Dict) -> Dict:
    """Compact result summary stored on the job record.

    ``exit_code`` mirrors the CLI contract: 0 clean+complete, 1 leakage,
    3 truncated without a leak (inconclusive).
    """
    truncated = report_dict.get("status", "complete") != "complete"
    passed = bool(report_dict.get("passed"))
    if not passed:
        exit_code = 1
    elif truncated:
        exit_code = 3
    else:
        exit_code = 0
    return {
        "passed": passed,
        "status": report_dict.get("status"),
        "max_mlog10p": report_dict.get("max_mlog10p"),
        "n_probe_classes": report_dict.get("n_probe_classes"),
        "exit_code": exit_code,
    }


class JobRunner:
    """Worker threads executing queued jobs against the store.

    ``stall_timeout`` arms the per-job watchdog: a running job making no
    progress (no campaign event) for that many seconds is stopped at its
    next chunk boundary and restarted from its checkpoint.  A job
    interrupted or stalled more than ``max_restarts`` times is a poison
    job and parks in state ``dead_letter`` (visible in ``/v1/metrics``)
    instead of being restarted forever.
    """

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        telemetry: Telemetry,
        threads: int = 1,
        stall_timeout: Optional[float] = None,
        max_restarts: int = 3,
        fault_plane=None,
        fleet=None,
    ):
        if threads < 1:
            raise ServiceError("runner threads must be at least 1")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ServiceError("stall_timeout must be positive")
        if max_restarts < 0:
            raise ServiceError("max_restarts must be non-negative")
        self.store = store
        self.queue = queue
        self.telemetry = telemetry
        self.n_threads = threads
        self.stall_timeout = stall_timeout
        self.max_restarts = max_restarts
        #: chaos fault plane threaded into every campaign this runner
        #: builds ("checkpoint.*", "runner.chunk", "engine.compile",
        #: "worker.block" sites); ``None`` in production.
        self.fault_plane = fault_plane
        #: fleet coordinator for distributed execution; when set, jobs
        #: farm their chunk blocks / exact shards out to leased workers
        #: instead of running them on this thread (bit-identical either
        #: way).  ``None`` keeps the classic local execution path.
        self.fleet = fleet
        self._threads: list = []
        self._watchdog_thread: Optional[threading.Thread] = None
        self._shutdown = threading.Event()
        self._cancels: Dict[str, threading.Event] = {}
        self._cancels_lock = threading.Lock()
        self._stalls: Dict[str, threading.Event] = {}
        self._progress: Dict[str, float] = {}
        self._progress_lock = threading.Lock()
        self._busy = 0
        self._busy_lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.n_threads):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-runner-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.stall_timeout is not None and self._watchdog_thread is None:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                name="repro-runner-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()

    # -------------------------------------------------------------- watchdog

    def _touch(self, job_id: str) -> None:
        with self._progress_lock:
            if job_id in self._progress:
                self._progress[job_id] = time.monotonic()

    def _watchdog_loop(self) -> None:
        """Reap running jobs that stopped making progress.

        Stalls are detected by silence: every campaign event refreshes the
        job's progress timestamp, so a wedged chunk (hung worker, livelock,
        injected "runner.chunk" hang) shows up as a stale one.  Firing sets
        the job's stall event -- polled by the campaign's ``should_stop``
        at chunk boundaries and enforced inside the chunk by the
        executor's shard timeout -- after which :meth:`_execute` restarts
        the job from its checkpoint or dead-letters it.
        """
        assert self.stall_timeout is not None
        interval = max(0.02, min(0.5, self.stall_timeout / 4))
        while not self._shutdown.is_set():
            now = time.monotonic()
            with self._progress_lock:
                stalled = [
                    job_id
                    for job_id, last in self._progress.items()
                    if now - last > self.stall_timeout
                ]
                for job_id in stalled:
                    # Fire once per run; _execute re-registers on restart.
                    self._progress.pop(job_id, None)
            for job_id in stalled:
                with self._progress_lock:
                    event = self._stalls.get(job_id)
                if event is not None and not event.is_set():
                    event.set()
                    self.telemetry.emit(
                        "watchdog_stalled",
                        job_id=job_id,
                        stall_timeout=self.stall_timeout,
                    )
            self._shutdown.wait(interval)

    def shutdown(self, wait: bool = True) -> None:
        """Stop draining the queue and stop running campaigns cleanly.

        Running jobs stop at their next chunk boundary and return to state
        ``queued`` with their checkpoint on disk -- the durable image a
        restarted service recovers from.
        """
        self._shutdown.set()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join(timeout=60)
        self._threads = []

    def recover(self) -> int:
        """Re-enqueue jobs a previous process left ``queued``/``running``.

        A job found ``running`` was interrupted mid-execution (crash or
        SIGKILL) and counts one restart; a job that has crashed its way
        past ``max_restarts`` is poison and dead-letters instead of
        crashing the service a further time.  Jobs found ``queued`` never
        got to run and re-enqueue without penalty.
        """
        recovered = 0
        for record in self.store.recoverable_jobs():
            job_id = record["job_id"]
            if record["state"] == "running":
                restarts = int(record.get("restarts") or 0) + 1
                if restarts > self.max_restarts:
                    self._dead_letter(
                        job_id,
                        restarts,
                        "interrupted mid-run more often than max_restarts",
                    )
                    continue
                self.store.update_job(
                    job_id, state="queued", restarts=restarts
                )
            else:
                self.store.update_job(job_id, state="queued")
            self.telemetry.emit(
                "job_recovered",
                job_id=job_id,
                had_checkpoint=os.path.exists(
                    self.store.checkpoint_path(job_id)
                ),
            )
            self.queue.put(job_id)
            recovered += 1
        return recovered

    def _dead_letter(self, job_id: str, restarts: int, reason: str) -> None:
        self.store.update_job(
            job_id,
            state="dead_letter",
            restarts=restarts,
            finished_at=round(time.time(), 3),
            error=f"dead-lettered after {restarts} restarts: {reason}",
        )
        self.telemetry.emit(
            "job_dead_letter", job_id=job_id, restarts=restarts, reason=reason
        )

    def _restart_or_dead_letter(self, job_id: str, reason: str) -> None:
        """Requeue a stalled job from its checkpoint, or park poison."""
        record = self.store.get_job(job_id) or {}
        restarts = int(record.get("restarts") or 0) + 1
        if restarts > self.max_restarts:
            self._dead_letter(job_id, restarts, reason)
            return
        self.store.update_job(job_id, state="queued", restarts=restarts)
        self.telemetry.emit(
            "job_restarted", job_id=job_id, restarts=restarts, reason=reason
        )
        try:
            self.queue.put(job_id)
        except ServiceError:
            # Queue full or closing: the durable record stays ``queued``,
            # so the next recover() pass re-enqueues it.
            pass

    def cancel(self, job_id: str) -> Dict:
        """Cancel a queued or running job; terminal jobs are an error."""
        record = self.store.get_job(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if record["state"] == "running":
            with self._cancels_lock:
                event = self._cancels.get(job_id)
            if event is not None:
                event.set()
            return record
        if record["state"] == "queued":
            record = self.store.update_job(job_id, state="cancelled")
            self.telemetry.emit("job_cancelled", job_id=job_id, while_queued=True)
            return record
        raise ServiceError(
            f"job {job_id!r} is already {record['state']}; cannot cancel"
        )

    @property
    def busy_workers(self) -> int:
        """Threads currently executing a job (for ``/metrics``)."""
        with self._busy_lock:
            return self._busy

    # ------------------------------------------------------------- execution

    def _worker_loop(self) -> None:
        while not self._shutdown.is_set():
            job_id = self.queue.get(timeout=0.2)
            if job_id is None:
                continue
            record = self.store.get_job(job_id)
            if record is None or record["state"] != "queued":
                continue  # cancelled while queued, or stale id
            with self._busy_lock:
                self._busy += 1
            try:
                self._execute(record)
            finally:
                with self._busy_lock:
                    self._busy -= 1

    def _execute(self, record: Dict) -> None:
        job_id = record["job_id"]
        cache_key = record["cache_key"]
        spec = JobSpec.from_dict(record["spec"])
        cancel_event = threading.Event()
        stall_event = threading.Event()
        with self._cancels_lock:
            self._cancels[job_id] = cancel_event
        with self._progress_lock:
            self._stalls[job_id] = stall_event
            self._progress[job_id] = time.monotonic()
        checkpoint = self.store.checkpoint_path(job_id)
        self.store.update_job(
            job_id, state="running", started_at=round(time.time(), 3)
        )
        self.telemetry.emit("job_started", job_id=job_id)
        tele_hook = self.telemetry.campaign_hook(job_id)

        def hook(event: str, payload: Dict) -> None:
            self._touch(job_id)
            tele_hook(event, payload)
            if event == "chunk_done":
                self.store.update_job(
                    job_id,
                    progress={
                        "blocks_done": payload.get("blocks_done"),
                        "blocks_total": payload.get("blocks_total"),
                        "chunks_done": payload.get("chunks_done"),
                        "elapsed": round(payload.get("elapsed", 0.0), 3),
                    },
                )
            elif event == "shard_done":
                self.store.update_job(
                    job_id,
                    progress={
                        "probe_class": payload.get("probe_class"),
                        "shards_done": payload.get("done"),
                        "shards_total": payload.get("total"),
                    },
                )

        def should_stop() -> bool:
            return (
                cancel_event.is_set()
                or stall_event.is_set()
                or self._shutdown.is_set()
            )

        try:
            # An identical job may have completed while this one sat in the
            # queue; answer from the (verified) verdict cache instead of
            # re-simulating.  A record failing verification self-heals to a
            # miss, so this falls through to an honest recomputation.
            if self.store.has_result(cache_key):
                data = self.store.get_result(cache_key)
                if data is not None:
                    summary = verdict_summary(_json_loads(data))
                    self.store.update_job(
                        job_id,
                        state="done",
                        cached=True,
                        finished_at=round(time.time(), 3),
                        result=summary,
                    )
                    self.telemetry.emit(
                        "cache_hit", job_id=job_id, cache_key=cache_key,
                        late=True,
                    )
                    self.telemetry.emit(
                        "job_completed", job_id=job_id, cached=True
                    )
                    return
            if spec.mode == "exact":
                self._execute_exact(
                    job_id,
                    spec,
                    cache_key,
                    checkpoint,
                    hook,
                    should_stop,
                    cancel_event,
                    stall_event,
                )
                return
            evaluator = evaluator_for(spec)
            config = spec.campaign_config(
                checkpoint=checkpoint,
                default_chunking=True,
                stall_timeout=self.stall_timeout,
            )
            executor = None
            if self.fleet is not None:
                from repro.service.fleet import FleetExecutor

                executor = FleetExecutor(
                    self.fleet,
                    job_id,
                    spec.to_dict(),
                    should_stop=should_stop,
                )
            campaign = EvaluationCampaign(
                evaluator,
                config,
                hook=hook,
                should_stop=should_stop,
                fault_plane=self.fault_plane,
                executor=executor,
            )
            report = campaign.run(resume=True)
            if report.status == "truncated:cancelled":
                if cancel_event.is_set():
                    self.store.update_job(
                        job_id,
                        state="cancelled",
                        finished_at=round(time.time(), 3),
                    )
                    self.telemetry.emit("job_cancelled", job_id=job_id)
                    if os.path.exists(checkpoint):
                        os.unlink(checkpoint)
                elif stall_event.is_set():
                    # The watchdog reaped this run; its checkpoint is the
                    # durable image the restart resumes from.
                    self._restart_or_dead_letter(
                        job_id,
                        "no chunk progress within "
                        f"{self.stall_timeout:g}s (watchdog)",
                    )
                else:  # service shutdown: back to the durable queue image
                    self.store.update_job(job_id, state="queued")
                    self.telemetry.emit(
                        "job_interrupted",
                        job_id=job_id,
                        blocks_done=campaign.progress.blocks_done,
                        blocks_total=campaign.progress.blocks_total,
                    )
                return
            report_json = report.to_json(top=None)
            self.store.put_result(cache_key, report_json)
            summary = verdict_summary(report.to_dict(top=0))
            if report.degradations:
                # Execution provenance lives on the job record, not in the
                # cached verdict bytes (which stay environment-invariant).
                summary["degradations"] = list(report.degradations)
            self.store.update_job(
                job_id,
                state="done",
                finished_at=round(time.time(), 3),
                result=summary,
                progress={
                    "blocks_done": campaign.progress.blocks_done,
                    "blocks_total": campaign.progress.blocks_total,
                    "chunks_done": campaign.progress.chunks_done,
                    "resumed_from_block": campaign.progress.resumed_from_block,
                },
            )
            self.telemetry.emit(
                "job_completed",
                job_id=job_id,
                cached=False,
                passed=summary["passed"],
                status=summary["status"],
                resumed_from_block=campaign.progress.resumed_from_block,
            )
            if os.path.exists(checkpoint):
                os.unlink(checkpoint)
        except FleetInterrupted:
            # A distributed wait aborted mid-chunk/shard.  Completed chunks
            # are in the checkpoint; the in-flight one is lost -- the same
            # durability contract as a SIGKILL -- so the job takes the same
            # ladder as a ``truncated:cancelled`` report.
            if cancel_event.is_set():
                self.store.update_job(
                    job_id,
                    state="cancelled",
                    finished_at=round(time.time(), 3),
                )
                self.telemetry.emit("job_cancelled", job_id=job_id)
                if os.path.exists(checkpoint):
                    os.unlink(checkpoint)
            elif stall_event.is_set():
                self._restart_or_dead_letter(
                    job_id, "fleet execution interrupted by the watchdog"
                )
            else:  # service shutdown: resume from the chunk checkpoint
                self.store.update_job(job_id, state="queued")
                self.telemetry.emit("job_interrupted", job_id=job_id)
        except ReproError as exc:
            self.store.update_job(
                job_id,
                state="failed",
                finished_at=round(time.time(), 3),
                error=str(exc),
            )
            self.telemetry.emit("job_failed", job_id=job_id, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - runner must not die
            self.store.update_job(
                job_id,
                state="failed",
                finished_at=round(time.time(), 3),
                error=f"internal error: {exc!r}",
            )
            self.telemetry.emit(
                "job_failed",
                job_id=job_id,
                error=repr(exc),
                traceback=traceback.format_exc(limit=5),
            )
        finally:
            if self.fleet is not None:
                self.fleet.release_job(job_id)
            with self._cancels_lock:
                self._cancels.pop(job_id, None)
            with self._progress_lock:
                self._stalls.pop(job_id, None)
                self._progress.pop(job_id, None)

    def _execute_exact(
        self,
        job_id: str,
        spec: JobSpec,
        cache_key: str,
        checkpoint: str,
        hook,
        should_stop,
        cancel_event: threading.Event,
        stall_event: threading.Event,
    ) -> None:
        """Run a ``mode="exact"`` job through the sharded enumeration engine.

        Same execution contract as campaign jobs: durable checkpoint at
        shard granularity, cancellation/stall/shutdown stop at the next
        shard boundary, and the finished report lands in the same verdict
        cache (its key carries the ``"exact"`` parameter block, so exact
        and sampled verdicts never collide).
        """
        from repro.leakage.certify import run_exact_analysis

        built = build_design(spec.design, spec.scheme)
        model = (
            ProbingModel.GLITCH_TRANSITION
            if spec.model == "glitch-transition"
            else ProbingModel.GLITCH
        )
        dispatch = None
        if self.fleet is not None:
            from repro.service.fleet import fleet_exact_dispatch

            self.fleet.register_job(job_id, spec.to_dict())
            dispatch = fleet_exact_dispatch(self.fleet, job_id, should_stop)
        report = run_exact_analysis(
            built.dut,
            model,
            max_enum_bits=spec.max_enum_bits,
            shard_lane_bits=spec.shard_lane_bits,
            workers=spec.workers,
            fixed_secret=spec.fixed_secret,
            checkpoint=checkpoint,
            resume=True,
            hook=hook,
            should_stop=should_stop,
            dispatch=dispatch,
            engine=spec.engine,
        )
        if report.status == "truncated:cancelled":
            if cancel_event.is_set():
                self.store.update_job(
                    job_id,
                    state="cancelled",
                    finished_at=round(time.time(), 3),
                )
                self.telemetry.emit("job_cancelled", job_id=job_id)
                if os.path.exists(checkpoint):
                    os.unlink(checkpoint)
            elif stall_event.is_set():
                self._restart_or_dead_letter(
                    job_id,
                    "no shard progress within "
                    f"{self.stall_timeout:g}s (watchdog)",
                )
            else:  # service shutdown: resume from the shard checkpoint
                self.store.update_job(job_id, state="queued")
                self.telemetry.emit("job_interrupted", job_id=job_id)
            return
        report_json = report.to_json(top=None)
        self.store.put_result(cache_key, report_json)
        summary = verdict_summary(report.to_dict(top=0))
        summary["n_infeasible"] = len(report.infeasible)
        self.store.update_job(
            job_id,
            state="done",
            finished_at=round(time.time(), 3),
            result=summary,
        )
        self.telemetry.emit(
            "job_completed",
            job_id=job_id,
            cached=False,
            passed=summary["passed"],
            status=summary["status"],
        )
        if os.path.exists(checkpoint):
            os.unlink(checkpoint)


def _json_loads(data: Optional[bytes]) -> Dict:
    return json.loads(data.decode("utf-8")) if data else {}
